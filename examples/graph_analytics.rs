//! Graph analytics on a multi-GPU system: bfs and mst (the LoneStar
//! road-network workloads of Table III), with the coherence-activity
//! profile the paper analyzes in §VII-A — including why `mst` is the
//! one workload where HMG's block-granular invalidations can cost more
//! than software coherence.
//!
//! ```text
//! cargo run --release --example graph_analytics [tiny|small|full]
//! ```

use hmg::prelude::*;
use hmg::report::{f2, pct, Table};
use hmg::workloads::suite::by_abbrev;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    let mut runner = Runner::new(scale);

    for name in ["bfs", "mst"] {
        let spec = by_abbrev(name).expect("graph workload");
        let trace = spec.generate(scale, 2020);
        let factor = spec.capacity_factor(scale);
        println!(
            "== {} — {} iterations over {:.0} MB ==",
            spec.name,
            trace.num_kernels(),
            trace.footprint_bytes() as f64 / 1e6
        );

        // Fig. 3-style redundancy on the baseline.
        let m = runner.run_with(&trace, ProtocolKind::NoPeerCaching, |c| {
            hmg::runner::scale_capacities(c, factor);
            c.track_peer_redundancy = true;
        });
        if let Some(r) = m.peer_redundancy() {
            println!(
                "inter-GPU load redundancy within a GPU (Fig. 3): {}",
                pct(r)
            );
        }
        let base_cycles = m.total_cycles.as_u64();

        let mut t = Table::new(vec![
            "protocol".into(),
            "speedup".into(),
            "invs".into(),
            "lines/store-inv".into(),
            "inv GB/s".into(),
        ]);
        for p in ProtocolKind::ALL {
            let m = runner.run_with(&trace, p, |c| hmg::runner::scale_capacities(c, factor));
            t.row(vec![
                p.name().into(),
                f2(base_cycles as f64 / m.total_cycles.as_u64() as f64),
                (m.invs_from_stores + m.invs_from_evictions).to_string(),
                m.lines_per_store_inv()
                    .map(f2)
                    .unwrap_or_else(|| "-".into()),
                f2(m.inv_bandwidth_gbps(1.3)),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "mst's conflicting fine-grained updates cause false sharing at the\n\
         4-line directory granularity, which is why the paper reports HMG\n\
         can trail hierarchical software coherence on it (§VII-A)."
    );
}
