//! Quickstart: simulate one workload under every coherence configuration
//! and print the performance and coherence-activity breakdown.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [tiny|small|full]
//! ```

use hmg::prelude::*;
use hmg::report::{f2, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbrev = args.first().map(String::as_str).unwrap_or("bfs");
    let scale = match args.get(1).map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };

    let spec = hmg::workloads::suite::by_abbrev(abbrev).unwrap_or_else(|| {
        eprintln!("unknown workload `{abbrev}`; known:");
        for s in hmg::workloads::suite::table3() {
            eprintln!("  {}", s.abbrev);
        }
        std::process::exit(1);
    });

    println!("workload: {} ({})", spec.name, spec.abbrev);
    let trace = spec.generate(scale, 2020);
    println!(
        "trace: {} kernels, {} CTAs, {} accesses, {:.1} MB footprint\n",
        trace.num_kernels(),
        trace.num_ctas(),
        trace.num_accesses(),
        trace.footprint_bytes() as f64 / (1024.0 * 1024.0)
    );

    let mut runner = Runner::new(scale);
    let factor = spec.capacity_factor(scale);
    println!("capacity scale factor: {factor:.1}x (see DESIGN.md)\n");
    let mut t = Table::new(
        [
            "protocol", "cycles", "speedup", "l1-hit", "l2-hit", "gpuhome", "syshome", "dram",
            "inter-GB", "invs", "u-dram", "u-inter", "u-intra", "lat", "mlp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    // Diagnostic overrides: HMG_INTER_X / HMG_INTRA_X multiply link
    // bandwidths; HMG_LAUNCH overrides kernel launch overhead cycles.
    let inter_x: f64 = std::env::var("HMG_INTER_X")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let intra_x: f64 = std::env::var("HMG_INTRA_X")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let launch: Option<u64> = std::env::var("HMG_LAUNCH")
        .ok()
        .and_then(|v| v.parse().ok());
    let interleaved = std::env::var_os("HMG_INTERLEAVED").is_some();
    let scaled = |r: &mut Runner, p: ProtocolKind| {
        r.run_with(&trace, p, |cfg| {
            hmg::runner::scale_capacities(cfg, factor);
            cfg.fabric.inter_gpu_gbps *= inter_x;
            cfg.fabric.intra_gpu_gbps *= intra_x;
            if interleaved {
                cfg.placement = hmg::mem::PagePlacement::Interleaved;
            }
            if let Some(l) = launch {
                cfg.kernel_launch_overhead = hmg::sim::Cycle(l);
            }
        })
    };
    let base = scaled(&mut runner, ProtocolKind::NoPeerCaching);
    for p in ProtocolKind::ALL {
        let m = scaled(&mut runner, p);
        let inter_gb: u64 = hmg::interconnect::MsgClass::ALL
            .iter()
            .map(|&c| m.fabric.inter_bytes(c))
            .sum();
        t.row(vec![
            p.name().to_string(),
            m.total_cycles.as_u64().to_string(),
            f2(base.total_cycles.as_u64() as f64 / m.total_cycles.as_u64() as f64),
            format!("{:.0}%", m.l1_hit_rate() * 100.0),
            m.local_l2_hits.to_string(),
            m.gpu_home_hits.to_string(),
            m.sys_home_hits.to_string(),
            m.dram_accesses.to_string(),
            format!("{:.2}", inter_gb as f64 / 1e9),
            (m.invs_from_stores + m.invs_from_evictions).to_string(),
            format!("{:.0}%", m.max_dram_util * 100.0),
            format!("{:.0}%", m.max_inter_util * 100.0),
            format!("{:.0}%", m.max_intra_util * 100.0),
            format!("{:.0}", m.avg_miss_latency()),
            m.max_loads_inflight.to_string(),
        ]);
    }
    println!("{}", t.render());
}
