//! A recurrent-network training step across 4 GPUs: the forward pass,
//! the data-gradient pass, and the weight-gradient pass of an RNN layer
//! (the paper's RNN_FW / RNN_DGRAD / RNN_WGRAD traces), run back to
//! back under each coherence configuration.
//!
//! This is the workload family the paper's introduction motivates:
//! persistent RNNs broadcast the timestep state between every pair of
//! consecutive kernels, so protocols that cache remote-GPU data — and
//! especially ones that coalesce the broadcast inside each GPU — pull
//! far ahead (Fig. 8, right side).
//!
//! ```text
//! cargo run --release --example rnn_training [tiny|small|full]
//! ```

use hmg::prelude::*;
use hmg::report::{f2, Table};
use hmg::workloads::suite::by_abbrev;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    let passes = ["RNN_FW", "RNN_DGRAD", "RNN_WGRAD"];
    println!(
        "RNN training step: {} (scale {scale:?})\n",
        passes.join(" -> ")
    );

    let mut runner = Runner::new(scale);
    let mut total: Vec<(ProtocolKind, u64)> = ProtocolKind::ALL.iter().map(|&p| (p, 0)).collect();

    for pass in passes {
        let spec = by_abbrev(pass).expect("RNN pass in suite");
        let trace = spec.generate(scale, 2020);
        let factor = spec.capacity_factor(scale);
        let mut t = Table::new(vec![
            "protocol".into(),
            "cycles".into(),
            "speedup".into(),
            "inter-GPU MB".into(),
        ]);
        let base = runner.run_with(&trace, ProtocolKind::NoPeerCaching, |c| {
            hmg::runner::scale_capacities(c, factor)
        });
        for slot in total.iter_mut() {
            let p = slot.0;
            let m = runner.run_with(&trace, p, |c| hmg::runner::scale_capacities(c, factor));
            slot.1 += m.total_cycles.as_u64();
            let inter_mb = hmg::interconnect::MsgClass::ALL
                .iter()
                .map(|&c| m.fabric.inter_bytes(c))
                .sum::<u64>() as f64
                / 1e6;
            t.row(vec![
                p.name().into(),
                m.total_cycles.as_u64().to_string(),
                f2(base.total_cycles.as_u64() as f64 / m.total_cycles.as_u64() as f64),
                format!("{inter_mb:.1}"),
            ]);
        }
        println!("== {pass}: {} ==", spec.name);
        println!("{}", t.render());
    }

    println!("== whole training step ==");
    let mut t = Table::new(vec![
        "protocol".into(),
        "total cycles".into(),
        "speedup".into(),
    ]);
    let base = total[0].1; // NoPeerCaching is first in ProtocolKind::ALL
    for (p, cyc) in &total {
        t.row(vec![
            p.name().into(),
            cyc.to_string(),
            f2(base as f64 / *cyc as f64),
        ]);
    }
    println!("{}", t.render());
}
