//! Interactive sensitivity sweep over one machine parameter for one
//! workload — the per-workload version of the paper's Figs. 12–14.
//!
//! ```text
//! cargo run --release --example sensitivity_sweep [workload] [bw|l2|dir] [tiny|small]
//! ```

use hmg::prelude::*;
use hmg::report::{f2, Table};
use hmg::workloads::suite::by_abbrev;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("RNN_FW");
    let axis = args.get(1).map(String::as_str).unwrap_or("bw");
    let scale = match args.get(2).map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Small,
    };

    let spec = by_abbrev(workload).unwrap_or_else(|| {
        eprintln!("unknown workload `{workload}`");
        std::process::exit(1);
    });
    let trace = spec.generate(scale, 2020);
    let factor = spec.capacity_factor(scale);
    let mut runner = Runner::new(scale);

    let protocols = [
        ProtocolKind::Nhcc,
        ProtocolKind::SwHier,
        ProtocolKind::Hmg,
        ProtocolKind::Ideal,
    ];
    type Point = (String, Box<dyn Fn(&mut EngineConfig)>);
    let points: Vec<Point> = match axis {
        "l2" => [6u32, 12, 24]
            .iter()
            .map(|&mb| {
                let label = format!("{mb}MB/GPU");
                let f: Box<dyn Fn(&mut EngineConfig)> = Box::new(move |c: &mut EngineConfig| {
                    let lines = mb * 1024 * 1024 / 4 / 128;
                    c.l2 = hmg::mem::CacheConfig::new(lines, 16);
                });
                (label, f)
            })
            .collect(),
        "dir" => [3u32, 6, 12]
            .iter()
            .map(|&k| {
                let label = format!("{k}K entries/GPM");
                let f: Box<dyn Fn(&mut EngineConfig)> = Box::new(move |c: &mut EngineConfig| {
                    c.dir = hmg::mem::DirectoryConfig::new(k * 1024, 16);
                });
                (label, f)
            })
            .collect(),
        _ => [100.0f64, 200.0, 300.0, 400.0]
            .iter()
            .map(|&bw| {
                let label = format!("{bw:.0}GB/s");
                let f: Box<dyn Fn(&mut EngineConfig)> = Box::new(move |c: &mut EngineConfig| {
                    c.fabric.inter_gpu_gbps = bw;
                });
                (label, f)
            })
            .collect(),
    };

    println!("sweep: {} over {axis} (scale {scale:?})\n", spec.name);
    let mut t = Table::new({
        let mut h = vec!["point".to_string()];
        h.extend(protocols.iter().map(|p| p.name().to_string()));
        h
    });
    for (label, tweak) in &points {
        let base = runner.run_with(&trace, ProtocolKind::NoPeerCaching, |c| {
            tweak(c);
            hmg::runner::scale_capacities(c, factor);
        });
        let mut row = vec![label.clone()];
        for &p in &protocols {
            let m = runner.run_with(&trace, p, |c| {
                tweak(c);
                hmg::runner::scale_capacities(c, factor);
            });
            row.push(f2(
                base.total_cycles.as_u64() as f64 / m.total_cycles.as_u64() as f64
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
}
