//! Metrics collected by a simulation run — the raw material for every
//! figure in the evaluation.

use hmg_interconnect::FabricStats;
use hmg_protocol::TableConformance;
use hmg_sim::{Cycle, IntegrityStats, ReconfigStats};

/// Everything one run reports.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Simulated execution time of the whole trace.
    pub total_cycles: Cycle,
    /// Events the DES processed (simulation-size metric, Fig. 7 runtime).
    pub events: u64,

    // Access counts.
    /// Loads/atomics issued by SMs.
    pub loads: u64,
    /// Stores issued by SMs.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Hits in the requester's own L2 slice.
    pub local_l2_hits: u64,
    /// Hits at a GPU home node (hierarchical protocols only).
    pub gpu_home_hits: u64,
    /// Hits at the system home node.
    pub sys_home_hits: u64,
    /// Requests served by DRAM.
    pub dram_accesses: u64,
    /// Loads that crossed the inter-GPU network.
    pub inter_gpu_loads: u64,
    /// Of those, loads to lines previously accessed by *another GPM of
    /// the same GPU* (the Fig. 3 numerator).
    pub inter_gpu_loads_peer_redundant: u64,

    // Coherence activity.
    /// Invalidation messages caused by stores/atomics.
    pub invs_from_stores: u64,
    /// Invalidation messages caused by directory evictions.
    pub invs_from_evictions: u64,
    /// Stores that triggered at least one invalidation (Fig. 9 denominator).
    pub stores_triggering_invs: u64,
    /// Directory evictions that triggered invalidations (Fig. 10 denominator).
    pub evictions_triggering_invs: u64,
    /// L2 cache lines actually removed by store-caused invalidations.
    pub lines_invalidated_by_stores: u64,
    /// L2 cache lines actually removed by eviction-caused invalidations.
    pub lines_invalidated_by_evictions: u64,
    /// Cache lines dropped by software bulk invalidations at acquires.
    pub lines_bulk_invalidated: u64,
    /// L2 fills refused because they carried a version older than an
    /// already-processed invalidation (or the resident copy) — the
    /// inv-versus-in-flight-fill race the per-block fill floor closes.
    pub stale_fills_dropped: u64,
    /// Release fences executed.
    pub fences: u64,
    /// Dirty-line writebacks (write-back policy only).
    pub writebacks: u64,
    /// Sharer-downgrade messages sent (optional §IV-B mechanism).
    pub downgrades: u64,

    // Recovery and degradation.
    /// Requests rejected by a busy directory home and re-issued by the
    /// requester after an exponential backoff (NACK flow control).
    pub nacks: u64,
    /// Requests a busy directory home held and replayed after a fixed
    /// quantum instead of NACKing (phase-priority arbitration).
    pub deferred_reqs: u64,
    /// Directory entries that overflowed the sharer cap and degraded
    /// from precise tracking to conservative broadcast mode.
    pub dir_broadcast_fallbacks: u64,
    /// Invalidation rounds that used the conservative broadcast target
    /// list because the directory entry had degraded.
    pub broadcast_invs: u64,
    /// Fail-in-place reconfiguration accounting (permanent faults:
    /// link-down, gpm-offline, gpu-offline). All-zero on fault-free
    /// runs.
    pub reconfig: ReconfigStats,
    /// Soft-error accounting (flip-msg/flip-line/flip-dir injection,
    /// checksum/ECC detection and recovery). All-zero on fault-free
    /// runs; `silent_corruptions` must stay zero whenever checksums and
    /// ECC are enabled — every injected flip is either recovered or
    /// contained (poison + CTA abort), never consumed silently.
    pub integrity: IntegrityStats,
    /// Runtime conformance of executed directory transitions against
    /// the static Table I (`hmg_protocol::table`): per-row coverage,
    /// transitions checked, and mismatches. A nonzero mismatch count
    /// means the engine drifted from the table; debug builds assert
    /// instead.
    pub table: TableConformance,
    /// FNV-1a digest of the final committed memory state, over
    /// `(line, version)` pairs in ascending line order. Two runs that
    /// converge to the same per-line memory state report the same
    /// digest, regardless of the faults recovered along the way.
    pub state_digest: u64,

    /// Fabric traffic, by tier and class.
    pub fabric: FabricStats,
    /// Bytes written to / read from DRAM across all partitions.
    pub dram_bytes: u64,
    /// Coherence-checker observations for the configured probe line:
    /// `(flat SM index, observed version)` per load, in completion order.
    pub probe: Vec<(u32, u64)>,
    /// Highest per-GPM DRAM-port utilization (bottleneck diagnosis).
    pub max_dram_util: f64,
    /// Highest per-GPU inter-GPU egress utilization.
    pub max_inter_util: f64,
    /// Highest per-GPM intra-GPU port utilization (egress or ingress).
    pub max_intra_util: f64,
    /// Sum of load/atomic miss latencies (issue to completion), cycles.
    pub miss_latency_sum: u64,
    /// Number of completed misses.
    pub miss_count: u64,
    /// Peak concurrent in-flight loads (MLP actually achieved).
    pub max_loads_inflight: u64,
    /// Cycle at which each kernel completed (monotone; last entry equals
    /// `total_cycles` up to the final drain).
    pub kernel_end_cycles: Vec<u64>,
    /// Log2-bucketed histogram of load/atomic miss latencies: bucket `i`
    /// counts misses with latency in `[2^i, 2^(i+1))`.
    pub miss_latency_hist: [u64; 24],
}

impl RunMetrics {
    /// Fraction of inter-GPU loads whose line another GPM of the same GPU
    /// had already touched (Fig. 3). `None` if no inter-GPU loads occurred
    /// or tracking was disabled.
    pub fn peer_redundancy(&self) -> Option<f64> {
        if self.inter_gpu_loads == 0 {
            None
        } else {
            Some(self.inter_gpu_loads_peer_redundant as f64 / self.inter_gpu_loads as f64)
        }
    }

    /// Average L2 lines invalidated per invalidation-triggering store
    /// (Fig. 9). `None` if no store triggered invalidations.
    pub fn lines_per_store_inv(&self) -> Option<f64> {
        if self.stores_triggering_invs == 0 {
            None
        } else {
            Some(self.lines_invalidated_by_stores as f64 / self.stores_triggering_invs as f64)
        }
    }

    /// Average L2 lines invalidated per invalidation-triggering directory
    /// eviction (Fig. 10). `None` if none occurred.
    pub fn lines_per_eviction_inv(&self) -> Option<f64> {
        if self.evictions_triggering_invs == 0 {
            None
        } else {
            Some(self.lines_invalidated_by_evictions as f64 / self.evictions_triggering_invs as f64)
        }
    }

    /// Total invalidation-message bandwidth in GB/s at `freq_ghz`
    /// (Fig. 11), counting both network tiers.
    pub fn inv_bandwidth_gbps(&self, freq_ghz: f64) -> f64 {
        let bytes = self.fabric.total_bytes(hmg_interconnect::MsgClass::Inv);
        FabricStats::gbps(bytes, self.total_cycles, freq_ghz)
    }

    /// Average load/atomic miss latency in cycles. 0 if no misses.
    pub fn avg_miss_latency(&self) -> f64 {
        if self.miss_count == 0 {
            0.0
        } else {
            self.miss_latency_sum as f64 / self.miss_count as f64
        }
    }

    /// Approximate latency percentile (0.0–1.0) from the log2 histogram;
    /// returns the upper bound of the bucket containing the quantile.
    /// 0 if no misses recorded.
    pub fn miss_latency_percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let total: u64 = self.miss_latency_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.miss_latency_hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << self.miss_latency_hist.len()
    }

    /// Average cycles per kernel (excluding an empty trace).
    pub fn avg_kernel_cycles(&self) -> f64 {
        if self.kernel_end_cycles.is_empty() {
            return 0.0;
        }
        let mut prev = 0;
        let mut sum = 0u64;
        for &e in &self.kernel_end_cycles {
            sum += e - prev;
            prev = e;
        }
        sum as f64 / self.kernel_end_cycles.len() as f64
    }

    /// L1 hit rate over all loads. 0 if no loads.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.loads as f64
        }
    }
}

// Serialized in declaration order; every field participates so a
// resumed run's final RunMetrics is bit-identical to an uninterrupted
// run's.
impl hmg_sim::SnapshotWrite for RunMetrics {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.total_cycles.write_snap(w);
        w.put_u64(self.events);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.l1_hits);
        w.put_u64(self.local_l2_hits);
        w.put_u64(self.gpu_home_hits);
        w.put_u64(self.sys_home_hits);
        w.put_u64(self.dram_accesses);
        w.put_u64(self.inter_gpu_loads);
        w.put_u64(self.inter_gpu_loads_peer_redundant);
        w.put_u64(self.invs_from_stores);
        w.put_u64(self.invs_from_evictions);
        w.put_u64(self.stores_triggering_invs);
        w.put_u64(self.evictions_triggering_invs);
        w.put_u64(self.lines_invalidated_by_stores);
        w.put_u64(self.lines_invalidated_by_evictions);
        w.put_u64(self.lines_bulk_invalidated);
        w.put_u64(self.stale_fills_dropped);
        w.put_u64(self.fences);
        w.put_u64(self.writebacks);
        w.put_u64(self.downgrades);
        w.put_u64(self.nacks);
        w.put_u64(self.deferred_reqs);
        w.put_u64(self.dir_broadcast_fallbacks);
        w.put_u64(self.broadcast_invs);
        self.reconfig.write_snap(w);
        self.integrity.write_snap(w);
        self.table.write_snap(w);
        w.put_u64(self.state_digest);
        self.fabric.write_snap(w);
        w.put_u64(self.dram_bytes);
        self.probe.write_snap(w);
        w.put_f64(self.max_dram_util);
        w.put_f64(self.max_inter_util);
        w.put_f64(self.max_intra_util);
        w.put_u64(self.miss_latency_sum);
        w.put_u64(self.miss_count);
        w.put_u64(self.max_loads_inflight);
        self.kernel_end_cycles.write_snap(w);
        self.miss_latency_hist.write_snap(w);
    }
}

impl hmg_sim::SnapshotRead for RunMetrics {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(RunMetrics {
            total_cycles: Cycle::read_snap(r)?,
            events: r.get_u64()?,
            loads: r.get_u64()?,
            stores: r.get_u64()?,
            l1_hits: r.get_u64()?,
            local_l2_hits: r.get_u64()?,
            gpu_home_hits: r.get_u64()?,
            sys_home_hits: r.get_u64()?,
            dram_accesses: r.get_u64()?,
            inter_gpu_loads: r.get_u64()?,
            inter_gpu_loads_peer_redundant: r.get_u64()?,
            invs_from_stores: r.get_u64()?,
            invs_from_evictions: r.get_u64()?,
            stores_triggering_invs: r.get_u64()?,
            evictions_triggering_invs: r.get_u64()?,
            lines_invalidated_by_stores: r.get_u64()?,
            lines_invalidated_by_evictions: r.get_u64()?,
            lines_bulk_invalidated: r.get_u64()?,
            stale_fills_dropped: r.get_u64()?,
            fences: r.get_u64()?,
            writebacks: r.get_u64()?,
            downgrades: r.get_u64()?,
            nacks: r.get_u64()?,
            deferred_reqs: r.get_u64()?,
            dir_broadcast_fallbacks: r.get_u64()?,
            broadcast_invs: r.get_u64()?,
            reconfig: ReconfigStats::read_snap(r)?,
            integrity: IntegrityStats::read_snap(r)?,
            table: TableConformance::read_snap(r)?,
            state_digest: r.get_u64()?,
            fabric: FabricStats::read_snap(r)?,
            dram_bytes: r.get_u64()?,
            probe: Vec::read_snap(r)?,
            max_dram_util: r.get_f64()?,
            max_inter_util: r.get_f64()?,
            max_intra_util: r.get_f64()?,
            miss_latency_sum: r.get_u64()?,
            miss_count: r.get_u64()?,
            max_loads_inflight: r.get_u64()?,
            kernel_end_cycles: Vec::read_snap(r)?,
            miss_latency_hist: <[u64; 24]>::read_snap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_runs() {
        let m = RunMetrics::default();
        assert_eq!(m.peer_redundancy(), None);
        assert_eq!(m.lines_per_store_inv(), None);
        assert_eq!(m.lines_per_eviction_inv(), None);
        assert_eq!(m.l1_hit_rate(), 0.0);
        assert_eq!(m.inv_bandwidth_gbps(1.3), 0.0);
    }

    #[test]
    fn latency_percentiles_from_histogram() {
        let mut m = RunMetrics::default();
        // 8 misses in [256,512), 2 in [4096,8192).
        m.miss_latency_hist[8] = 8;
        m.miss_latency_hist[12] = 2;
        assert_eq!(m.miss_latency_percentile(0.5), 512);
        assert_eq!(m.miss_latency_percentile(0.95), 8192);
        assert_eq!(RunMetrics::default().miss_latency_percentile(0.5), 0);
    }

    #[test]
    fn kernel_cycle_averages() {
        let m = RunMetrics {
            kernel_end_cycles: vec![100, 250, 400],
            ..RunMetrics::default()
        };
        assert!((m.avg_kernel_cycles() - 133.33).abs() < 0.34);
        assert_eq!(RunMetrics::default().avg_kernel_cycles(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = RunMetrics {
            loads: 100,
            l1_hits: 40,
            inter_gpu_loads: 10,
            inter_gpu_loads_peer_redundant: 7,
            stores_triggering_invs: 4,
            lines_invalidated_by_stores: 10,
            evictions_triggering_invs: 2,
            lines_invalidated_by_evictions: 8,
            ..RunMetrics::default()
        };
        assert_eq!(m.l1_hit_rate(), 0.4);
        assert_eq!(m.peer_redundancy(), Some(0.7));
        assert_eq!(m.lines_per_store_inv(), Some(2.5));
        assert_eq!(m.lines_per_eviction_inv(), Some(4.0));
    }
}
