#![warn(missing_docs)]

//! Trace-driven timing model of a hierarchical multi-GPU system.
//!
//! This crate assembles the substrates (`hmg-sim`, `hmg-interconnect`,
//! `hmg-mem`) and the protocol rules (`hmg-protocol`) into an executable
//! system: SM issue streams with software-managed write-through L1s,
//! GPM L2 slices with coherence directories, per-GPM DRAM partitions, a
//! contiguous CTA scheduler, and an event-driven engine that replays
//! workload traces under any of the six evaluated coherence
//! configurations.
//!
//! # Example
//!
//! ```
//! use hmg_gpu::{Engine, EngineConfig};
//! use hmg_protocol::{Access, Cta, Kernel, ProtocolKind, TraceOp, WorkloadTrace};
//! use hmg_mem::Addr;
//!
//! let trace = WorkloadTrace::new(
//!     "tiny",
//!     vec![Kernel::new(vec![Cta::new(vec![
//!         TraceOp::Access(Access::store(Addr(0))),
//!         TraceOp::Access(Access::load(Addr(0))),
//!     ])])],
//! );
//! let config = EngineConfig::small_test(ProtocolKind::Hmg);
//! let metrics = Engine::new(config).run(&trace);
//! assert!(metrics.total_cycles.as_u64() > 0);
//! ```

pub mod config;
pub mod engine;
pub mod metrics;

pub use config::{EccMode, EngineConfig, WritePolicy};
pub use engine::{Engine, SnapshotPolicy, SnapshotReport};
pub use metrics::RunMetrics;
