//! The event-driven engine: replays a workload trace through the modeled
//! cache/directory/interconnect system under one coherence configuration.
//!
//! # Model summary
//!
//! * Each SM issues its CTA's trace ops in order, with up to
//!   `max_outstanding_per_sm` load/atomic misses in flight (warp-level
//!   memory parallelism). Stores are fire-and-forget write-throughs,
//!   drained by release fences.
//! * Loads walk the hierarchy: local L2 → GPU home (hierarchical
//!   protocols) → system home → DRAM, obeying the scope hit rules of
//!   [`ProtocolKind::load_may_hit`]. Responses fill caches on the way
//!   back where [`ProtocolKind::may_fill`] allows.
//! * Stores write through along the same path, updating copies they pass
//!   and triggering Table I directory transitions (and thus background
//!   invalidations) at home nodes.
//! * Release fences broadcast to the protocol's fence domain and
//!   additionally wait for this GPM's outstanding write-throughs and
//!   store-caused invalidations to drain — the paper's requirement that
//!   releases "ensure completion of any write-through operations and
//!   invalidation messages that are still in flight".
//! * Kernel boundaries carry the implicit `.sys` acquire (bulk cache
//!   invalidation under software coherence) and release (fence per GPM).

use std::collections::VecDeque;

use hmg_interconnect::{Fabric, GpmId, GpuId, MsgClass};
use hmg_mem::{BlockAddr, Cache, Directory, Dram, LineAddr, PageMap, Sharer, VersionStore};
use hmg_protocol::{
    AccessKind, AcquireAction, Action, CacheLevel, DirEvent, DirState, FenceDomain, GuardCtx,
    Observed, ProtocolKind, ProtocolSpec, Scope, TraceOp, WorkloadTrace,
};
use hmg_sim::collect::{FlatMap, VecPool};
use hmg_sim::{
    Cycle, EventQueue, ProgressWatchdog, Rng, SimError, SnapError, SnapReader, SnapWriter,
    Snapshot, SnapshotRead, SnapshotStore, SnapshotWrite,
};

use crate::config::{EccMode, EngineConfig};
use crate::metrics::RunMetrics;

/// Salt for the engine's dedicated soft-error stream, so line/directory
/// flip draws never perturb the message-fault stream (`faults.seed`)
/// or the fabric's drop/flip streams.
const SCRUB_STREAM_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// Severity of a latent soft error planted on a resident L2 line, as
/// the configured [`EccMode`] will classify it when the line is next
/// read (by an access or by the scrubber).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlipSeverity {
    /// Single-bit under SEC-DED: corrected in place when detected.
    Correctable,
    /// Double-bit under SEC-DED, or any flip under parity: detected
    /// but not correctable. Clean lines are dropped and refetched;
    /// dirty lines poison their consumer.
    Uncorrectable,
}

/// One L2 line's metadata: the data version it holds and, under the
/// write-back policy, whether it is dirty (newer than its home).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct L2Line {
    version: u64,
    dirty: bool,
}

impl L2Line {
    fn clean(version: u64) -> Self {
        L2Line {
            version,
            dirty: false,
        }
    }
}

/// Identifies one SM: its GPM and its index within the GPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SmRef {
    gpm: GpmId,
    sm: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmState {
    /// Has a pending `SmResume` event or is mid-issue.
    Runnable,
    /// Out of outstanding-miss capacity; woken by a response.
    StalledMem,
    /// Waiting on a release fence.
    FenceWait,
    /// Waiting on a counting flag.
    FlagWait(u32),
    /// No CTA to run.
    Idle,
}

#[derive(Debug)]
struct Sm {
    l1: Cache<u64>,
    cta: Option<usize>,
    pc: usize,
    outstanding: u32,
    state: SmState,
}

#[derive(Debug)]
struct Gpm {
    l2: Cache<L2Line>,
    dir: Directory,
    dram: Dram,
    /// Stores issued by this GPM not yet past their GPU-level ordering point.
    st_pending_gpu: u64,
    /// Stores issued by this GPM not yet committed at the system home.
    st_pending_sys: u64,
    /// Store-caused invalidations headed to targets within this GPM's GPU.
    inv_pending_gpu: u64,
    /// All store-caused invalidations attributed to this GPM.
    inv_pending_sys: u64,
    /// CTA work queue for the current kernel.
    cta_queue: VecDeque<usize>,
    /// CARVE-like sharing classification for blocks homed here.
    carve: FlatMap<BlockAddr, CarveClass>,
    /// Per-block invalidation floor: the newest store version whose
    /// invalidation this GPM has already processed. A fill carrying an
    /// older version raced past that invalidation in the fabric and
    /// must not install stale data — the simulator's stand-in for the
    /// transient (inv-while-fill-pending) states of a real directory
    /// protocol.
    inv_floor: FlatMap<BlockAddr, u64>,
}

/// A load or atomic request in flight.
#[derive(Debug, Clone, Copy)]
struct MemMsg {
    sm: SmRef,
    line: LineAddr,
    kind: AccessKind,
    scope: Scope,
    /// For atomics: the version the RMW will publish.
    version: u64,
    /// Issue time, for latency accounting.
    issued_at: Cycle,
    /// Consecutive NACKs this request has absorbed; scales the
    /// retry backoff exponentially.
    attempts: u8,
    /// The response carries poisoned data: an uncorrectable ECC error
    /// hit the only copy (a dirty line). The consumer must not use the
    /// value — `complete_load` aborts the consuming CTA instead of
    /// filling caches (detected-and-contained, never silent).
    poisoned: bool,
}

/// A store (or atomic write-through continuation) in flight.
#[derive(Debug, Clone, Copy)]
struct StoreMsg {
    origin: GpmId,
    line: LineAddr,
    version: u64,
    /// Whether the store has passed its GPU-level ordering point.
    gpu_ordered: bool,
    /// Fault-injected duplicate delivery: re-applies idempotent state
    /// (version-max commit, cache update) but skips all pending-counter
    /// bookkeeping, which the original delivery owns.
    duplicate: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InvCause {
    Store,
    Eviction,
}

/// CARVE-like per-block sharing classification, kept at the block's
/// system home. (CARVE stores this metadata in spare DRAM; the map is
/// the idealization of that storage.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CarveClass {
    /// Accessed by exactly one GPM so far.
    Private(GpmId),
    /// Read by multiple GPMs, never written by a non-owner.
    ReadOnly,
    /// Read-write shared: stores broadcast invalidations.
    ReadWrite,
}

#[derive(Debug, Clone, Copy)]
struct InvMsg {
    block: BlockAddr,
    cause: InvCause,
    /// GPM whose store caused this invalidation (counter attribution).
    causer: GpmId,
    /// Counted against the causer's pending counters (store-caused only).
    counted: bool,
    /// Arriving at a GPU home from the system home (HMG forwards these).
    from_sys: bool,
    target: GpmId,
    /// Version of the store that caused this invalidation (0 for
    /// eviction-caused invs). Raises the target's per-block fill floor
    /// so an in-flight stale fill cannot land after the invalidation.
    version: u64,
}

#[derive(Debug)]
struct Fence {
    gpm: GpmId,
    scope: Scope,
    /// `Some` for an SM-issued release, `None` for a kernel-end fence.
    sm: Option<SmRef>,
    acks_done: bool,
    completed: bool,
}

#[derive(Debug)]
enum Ev {
    SmResume(SmRef),
    Req {
        msg: MemMsg,
        node: GpmId,
    },
    Store {
        msg: StoreMsg,
        node: GpmId,
    },
    RespGpuHome {
        msg: MemMsg,
        node: GpmId,
    },
    Resp {
        msg: MemMsg,
    },
    Inv(InvMsg),
    Downgrade {
        block: BlockAddr,
        target: GpmId,
        evictor: GpmId,
    },
    FenceAcks(usize),
    KernelStart(usize),
    /// Periodic background scrubber tick: retires latent line flips
    /// (detect-and-recover) and plants this tick's injected soft
    /// errors. Scheduled only when the plan injects
    /// `flip-line`/`flip-dir`.
    Scrub,
}

/// A permanent fault scheduled for activation at a fixed cycle. Built
/// from the [`hmg_sim::FaultPlan`] at construction; the main loop
/// activates each entry at the first event boundary at or past its
/// cycle, which keeps reconfiguration deterministic.
#[derive(Debug, Clone)]
enum PermFault {
    /// First-tier link failure. The fabric reroutes affected traffic
    /// over the second tier by itself (see
    /// [`hmg_interconnect::Liveness`]); the engine only accounts for
    /// the detection epoch.
    LinkDown,
    /// These GPMs go permanently offline together (a single module, or
    /// every module of a GPU).
    Offline(Vec<GpmId>),
}

/// The simulation engine. Construct with a validated [`EngineConfig`],
/// then call [`Engine::run`] on a trace.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent
    /// (see [`EngineConfig::validate`]).
    pub fn new(cfg: EngineConfig) -> Self {
        // audit:allow(panic-path): documented panicking wrapper over try_new.
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Engine::new`]: returns the typed
    /// [`SimError`] for an inconsistent configuration.
    pub fn try_new(cfg: EngineConfig) -> Result<Self, SimError> {
        cfg.try_validate()?;
        Ok(Engine { cfg })
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Replays `trace` to completion and returns the collected metrics.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (a `WaitFlag` whose count is never reached)
    /// or livelock; the panic message carries the full [`SimError`]
    /// diagnostic. Use [`Engine::try_run`] to capture the error
    /// instead.
    pub fn run(&self, trace: &WorkloadTrace) -> RunMetrics {
        // audit:allow(panic-path): documented panicking wrapper over try_run.
        self.try_run(trace).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replays `trace` to completion, returning a typed [`SimError`]
    /// instead of panicking when the run deadlocks, livelocks, or
    /// violates a protocol invariant. The error carries cycle, agent
    /// and address context plus a machine-state dump: per-SM
    /// outstanding ops, pending counters, the directory entry and link
    /// backlogs for the stuck address.
    pub fn try_run(&self, trace: &WorkloadTrace) -> Result<RunMetrics, SimError> {
        let mut sim = Sim::new(&self.cfg, trace);
        sim.run()
    }
}

/// Maximum ops an SM issues per `SmResume` event before yielding.
const ISSUE_BATCH: usize = 256;

struct Sim<'t> {
    cfg: &'t EngineConfig,
    trace: &'t WorkloadTrace,
    q: EventQueue<Ev>,
    fabric: Fabric,
    pages: PageMap,
    versions: VersionStore,
    gpms: Vec<Gpm>,
    sms: Vec<Sm>,
    fences: Vec<Fence>,
    /// Indices of fences not yet completed (scanned on every counter
    /// change; completed entries are swap-removed so the scan stays
    /// proportional to fences actually in flight).
    active_fences: Vec<usize>,
    flags: FlatMap<u32, u32>,
    flag_waiters: FlatMap<u32, Vec<SmRef>>,
    /// MSHR-style miss coalescing: requests merged behind an outstanding
    /// fill of the same line at the same node. Keyed by (node, line).
    mshr: FlatMap<(u16, LineAddr), Vec<MemMsg>>,
    /// Line -> bitmask of GPMs that have loaded it (Fig. 3 tracking).
    touch_map: FlatMap<LineAddr, u64>,
    /// Line -> latest version committed at its system home.
    committed: FlatMap<LineAddr, u64>,
    /// Freelists recycling MSHR-waiter and flag-waiter vectors, so the
    /// merge/wake hot paths reuse allocations instead of hitting the
    /// allocator once per transaction.
    msg_pool: VecPool<MemMsg>,
    waiter_pool: VecPool<SmRef>,
    kernel: usize,
    ctas_unfinished: u64,
    loads_inflight: u64,
    kernel_fences_left: u32,
    draining: bool,
    finished: bool,
    /// Fault-injection RNG stream, seeded from the plan. Event
    /// processing order is deterministic, so draws are too.
    rng: Rng,
    /// Dedicated stream for soft-error injection (line/directory
    /// flips). Armed only when the plan injects them, so flip-free
    /// runs draw nothing and timing is untouched.
    flip_rng: Option<Rng>,
    /// Latent soft errors planted on resident L2 lines, keyed by
    /// `(GPM index, line)`. An entry is retired exactly once — by an
    /// access (ECC check before serving), a fill overwrite (refetch),
    /// or a scrubber sweep — so the [`hmg_sim::IntegrityStats`]
    /// conservation equation balances.
    line_faults: FlatMap<(u16, LineAddr), FlipSeverity>,
    /// Store messages sent over the fabric (drop-store fault index).
    store_seq: u64,
    /// Store-caused invalidations sent (reorder-inv fault index).
    inv_seq: u64,
    /// Permanent faults not yet activated, ascending by cycle.
    perm_faults: Vec<(u64, PermFault)>,
    /// Index of the next entry of `perm_faults` to activate.
    perm_next: usize,
    /// Bitmask of permanently offline GPMs.
    dead_gpms: u64,
    /// Whether any offline reconfiguration has run (gates the
    /// per-address degraded-mode checks off the fault-free fast path).
    reconfigured: bool,
    /// Livelock detection (armed by `cfg.livelock_budget`).
    watchdog: ProgressWatchdog,
    /// First fatal protocol violation observed inside a handler; the
    /// main loop aborts with it at the next event boundary.
    fatal: Option<SimError>,
    /// Whether this run continues from a restored snapshot (skips the
    /// initial event seeding — the restored queue already carries it).
    resumed: bool,
    /// Next cycle at which the snapshot machinery has work to do
    /// (`u64::MAX` when disarmed). The run loop pays exactly one u64
    /// compare per event for it; everything else lives behind
    /// [`Sim::snapshot_tick`].
    snap_next: u64,
    /// Snapshot policy state, boxed off the hot path.
    snap: Option<Box<SnapCtl>>,
    m: RunMetrics,
}

impl<'t> Sim<'t> {
    fn new(cfg: &'t EngineConfig, trace: &'t WorkloadTrace) -> Self {
        let topo = cfg.topo;
        let gpms = topo
            .all_gpms()
            .map(|_| Gpm {
                l2: Cache::new(cfg.l2),
                dir: Directory::new(cfg.dir, topo),
                dram: Dram::new(cfg.dram_bytes_per_cycle, cfg.dram_latency),
                st_pending_gpu: 0,
                st_pending_sys: 0,
                inv_pending_gpu: 0,
                inv_pending_sys: 0,
                cta_queue: VecDeque::new(),
                carve: FlatMap::new(),
                inv_floor: FlatMap::new(),
            })
            .collect();
        let sms = (0..cfg.total_sms())
            .map(|_| Sm {
                l1: Cache::new(cfg.l1),
                cta: None,
                pc: 0,
                outstanding: 0,
                state: SmState::Idle,
            })
            .collect();
        let mut fabric = Fabric::new(topo, cfg.fabric);
        fabric.apply_faults(&cfg.faults);
        fabric.set_checksums(cfg.checksums);
        let mut perm_faults: Vec<(u64, PermFault)> = Vec::new();
        if let Some(l) = &cfg.faults.link_down {
            perm_faults.push((l.at_cycle, PermFault::LinkDown));
        }
        if let Some(g) = &cfg.faults.gpm_offline {
            let gpm = GpmId(g.gpu * topo.gpms_per_gpu() + g.gpm);
            perm_faults.push((g.at_cycle, PermFault::Offline(vec![gpm])));
        }
        if let Some(g) = &cfg.faults.gpu_offline {
            let dead: Vec<GpmId> = topo.gpms_of(GpuId(g.gpu)).collect();
            perm_faults.push((g.at_cycle, PermFault::Offline(dead)));
        }
        perm_faults.sort_by_key(|&(at, _)| at);
        Sim {
            cfg,
            trace,
            q: EventQueue::new(),
            fabric,
            pages: PageMap::new(topo, cfg.placement),
            versions: VersionStore::new(),
            gpms,
            sms,
            fences: Vec::new(),
            active_fences: Vec::new(),
            flags: FlatMap::new(),
            flag_waiters: FlatMap::new(),
            mshr: FlatMap::new(),
            touch_map: FlatMap::new(),
            committed: FlatMap::new(),
            msg_pool: VecPool::new(),
            waiter_pool: VecPool::new(),
            kernel: 0,
            ctas_unfinished: 0,
            loads_inflight: 0,
            kernel_fences_left: 0,
            draining: false,
            finished: false,
            rng: Rng::new(cfg.faults.seed),
            flip_rng: (cfg.faults.flip_line.is_some() || cfg.faults.flip_dir.is_some())
                .then(|| Rng::new(cfg.faults.seed ^ SCRUB_STREAM_SALT)),
            line_faults: FlatMap::new(),
            store_seq: 0,
            inv_seq: 0,
            perm_faults,
            perm_next: 0,
            dead_gpms: 0,
            reconfigured: false,
            watchdog: ProgressWatchdog::new(cfg.livelock_budget),
            fatal: None,
            resumed: false,
            snap_next: u64::MAX,
            snap: None,
            m: RunMetrics::default(),
        }
    }

    // ---------- identity helpers ----------

    fn sm_index(&self, r: SmRef) -> usize {
        r.gpm.index() * self.cfg.sms_per_gpm as usize + r.sm as usize
    }

    fn sm(&mut self, r: SmRef) -> &mut Sm {
        let i = self.sm_index(r);
        &mut self.sms[i]
    }

    fn line_of(&self, addr: hmg_mem::Addr) -> LineAddr {
        self.cfg.geometry.line_of(addr)
    }

    /// System home GPM of `line` (first-touch assigned by `toucher`).
    fn sys_home(&mut self, line: LineAddr, toucher: GpmId) -> GpmId {
        let page = self.cfg.geometry.page_of_line(line);
        self.pages.home_of(page, toucher)
    }

    /// GPU home of `line` within `gpu`, given its system home.
    fn gpu_home(&self, gpu: GpuId, line: LineAddr, sys_home: GpmId) -> GpmId {
        let block = self.cfg.geometry.block_of(line);
        self.pages.gpu_home(gpu, block, sys_home)
    }

    fn gpm_is_dead(&self, g: GpmId) -> bool {
        self.dead_gpms & (1u64 << g.index()) != 0
    }

    /// Whether `line` lives on a page whose DRAM partition failed. Such
    /// lines were re-homed onto a survivor and follow the degraded
    /// no-peer-caching coherence rules from the reconfiguration on.
    fn line_degraded(&self, line: LineAddr) -> bool {
        self.reconfigured && self.pages.is_rehomed(self.cfg.geometry.page_of_line(line))
    }

    /// The cache level `node` represents for `line` requested by `req_gpm`.
    fn level_of(
        &self,
        node: GpmId,
        req_gpm: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) -> CacheLevel {
        if node == sys_home {
            CacheLevel::SysHomeL2
        } else if self.cfg.protocol.hierarchical_routing() && node == gpu_home {
            let _ = req_gpm;
            CacheLevel::GpuHomeL2
        } else {
            CacheLevel::LocalL2NonHome
        }
    }

    /// The next node a request at `node` forwards to, or `None` when
    /// `node` is the system home (next stop is DRAM).
    fn next_node(
        &self,
        node: GpmId,
        req_gpm: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) -> Option<GpmId> {
        if node == sys_home {
            return None;
        }
        if self.cfg.protocol.hierarchical_routing() && node != gpu_home && node == req_gpm {
            Some(gpu_home)
        } else {
            Some(sys_home)
        }
    }

    // ---------- main loop ----------

    fn run(&mut self) -> Result<RunMetrics, SimError> {
        if self.trace.kernels.is_empty() {
            self.m.total_cycles = Cycle::ZERO;
            return Ok(std::mem::take(&mut self.m));
        }
        if !self.resumed {
            self.q.push(Cycle::ZERO, Ev::KernelStart(0));
            if self.flip_rng.is_some() {
                self.q.push(self.cfg.scrub_interval, Ev::Scrub);
            }
        }
        while let Some((now, ev)) = self.q.pop() {
            // Activate pending permanent faults at the event boundary —
            // before the watchdog check, so the reconfiguration can
            // grant itself the detection-window grace.
            while self.perm_next < self.perm_faults.len()
                && self.perm_faults[self.perm_next].0 <= now.0
            {
                let fault = self.perm_faults[self.perm_next].1.clone();
                self.perm_next += 1;
                self.reconfigure(now, fault);
            }
            if let Some(gap) = self.watchdog.stalled(now.0) {
                return Err(self.livelock_error(now, gap));
            }
            match ev {
                Ev::SmResume(r) => self.sm_issue(now, r),
                Ev::Req { msg, node } => self.handle_req(now, msg, node),
                Ev::Store { msg, node } => self.handle_store(now, msg, node),
                Ev::RespGpuHome { msg, node } => self.handle_resp_gpu_home(now, msg, node),
                Ev::Resp { msg } => self.handle_resp(now, msg),
                Ev::Inv(inv) => self.handle_inv(now, inv),
                Ev::Downgrade {
                    block,
                    target,
                    evictor,
                } => {
                    let topo = self.cfg.topo;
                    if let Some(sharers) = self.gpms[target.index()].dir.lookup_mut(block) {
                        sharers.remove(&topo, Sharer::Gpm(evictor));
                    }
                }
                Ev::FenceAcks(id) => self.handle_fence_acks(now, id),
                Ev::KernelStart(k) => self.kernel_start(now, k),
                Ev::Scrub => self.handle_scrub(now),
            }
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            if self.finished {
                break;
            }
            // Snapshot machinery: one u64 compare on the hot path; the
            // cold tick handles periodic/one-shot captures and the
            // test-only kill hook. Placed after the fatal/finished
            // checks so terminal states are never captured.
            if now.0 >= self.snap_next {
                self.snapshot_tick(now);
            }
        }
        if !self.finished {
            return Err(self.deadlock_error());
        }
        #[cfg(debug_assertions)]
        if !self.cfg.zero_cost_fences {
            // Every kernel-end fence waits for write-throughs and
            // invalidations; nothing may be left in flight at the end.
            self.assert_drained();
        }
        // Retire any latent flips the scrubber had not reached, then
        // fold in the fabric's checksum layer, so the IntegrityStats
        // conservation equation balances exactly: every injected flip
        // lands in exactly one recovery/containment bucket.
        self.scrub_sweep();
        let transport = self.fabric.stats().transport();
        self.m.integrity.flips_msg = transport.flips_injected;
        self.m.integrity.checksum_retransmits = transport.checksum_retransmits;
        self.m.integrity.silent_corruptions += transport.silent_flips;
        self.m.total_cycles = self.q.now();
        self.m.events = self.q.events_processed();
        self.m.fabric = *self.fabric.stats();
        self.m.dram_bytes = self.gpms.iter().map(|g| g.dram.bytes_transferred()).sum();
        let elapsed = self.m.total_cycles;
        self.m.max_dram_util = self
            .gpms
            .iter()
            .map(|g| g.dram.utilization(elapsed))
            .fold(0.0, f64::max);
        self.m.max_inter_util = self
            .cfg
            .topo
            .all_gpus()
            .map(|g| self.fabric.inter_egress_utilization(g, elapsed))
            .fold(0.0, f64::max);
        self.m.max_intra_util = self
            .cfg
            .topo
            .all_gpms()
            .map(|g| {
                self.fabric
                    .intra_egress_utilization(g, elapsed)
                    .max(self.fabric.intra_ingress_utilization(g, elapsed))
            })
            .fold(0.0, f64::max);
        self.m.state_digest = self.state_digest();
        Ok(std::mem::take(&mut self.m))
    }

    /// FNV-1a digest of the final committed memory state, over
    /// `(line, version)` pairs in ascending line order. Recovery paths
    /// (retransmission, NACK/retry, broadcast fallback) must converge to
    /// the fault-free digest for the same seed and trace.
    fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut lines: Vec<(u64, u64)> = self.committed.iter().map(|(l, v)| (l.0, *v)).collect();
        lines.sort_unstable();
        let mut h = FNV_OFFSET;
        for (l, v) in lines {
            for b in l.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    // ---------- watchdog diagnostics ----------

    /// Human-readable name for an SM, used as error agent context.
    fn agent_name(&self, r: SmRef) -> String {
        format!(
            "gpu{}/gpm{}/sm{}",
            self.cfg.topo.gpu_of(r.gpm).0,
            r.gpm.index(),
            r.sm
        )
    }

    /// A multi-line snapshot of everything relevant to a stuck run:
    /// non-idle SMs with their outstanding ops, per-GPM pending
    /// counters, flag state, MSHR entries, and — for the stuck address,
    /// when one is identifiable — the home directory entry and the link
    /// backlogs along its path.
    fn machine_dump(&mut self) -> (String, Option<SmRef>, Option<LineAddr>) {
        use std::fmt::Write;
        let now = self.q.now();
        let topo = self.cfg.topo;
        let mut dump = String::new();
        let mut first_stuck: Option<SmRef> = None;
        for gpm in topo.all_gpms() {
            for sm in 0..self.cfg.sms_per_gpm {
                let r = SmRef { gpm, sm };
                let s = &self.sms[self.sm_index(r)];
                if s.state == SmState::Idle {
                    continue;
                }
                if first_stuck.is_none() {
                    first_stuck = Some(r);
                }
                let _ = writeln!(
                    dump,
                    "  {}: {:?} cta={:?} pc={} outstanding={}",
                    self.agent_name(r),
                    s.state,
                    s.cta,
                    s.pc,
                    s.outstanding
                );
            }
        }
        for (i, g) in self.gpms.iter().enumerate() {
            if g.st_pending_gpu + g.st_pending_sys + g.inv_pending_gpu + g.inv_pending_sys > 0 {
                let _ = writeln!(
                    dump,
                    "  gpm{i}: st_pending_gpu={} st_pending_sys={} \
                     inv_pending_gpu={} inv_pending_sys={}",
                    g.st_pending_gpu, g.st_pending_sys, g.inv_pending_gpu, g.inv_pending_sys
                );
            }
        }
        if !self.flags.is_empty() || !self.flag_waiters.is_empty() {
            let mut flags: Vec<_> = self.flags.iter().collect();
            flags.sort();
            let _ = writeln!(dump, "  flags: {flags:?}");
            let mut waits: Vec<_> = self
                .flag_waiters
                .iter()
                .map(|(f, ws)| {
                    (
                        *f,
                        ws.iter().map(|w| self.agent_name(*w)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            waits.sort();
            for (f, ws) in waits {
                let _ = writeln!(dump, "  flag {f} awaited by {ws:?}");
            }
        }
        // Pick the stuck address: an un-filled miss if any, else the
        // probe line.
        let stuck_line = self
            .mshr
            .keys()
            .min()
            .map(|&(_, line)| line)
            .or(self.cfg.probe_line.map(LineAddr));
        if !self.mshr.is_empty() {
            let mut entries: Vec<_> = self
                .mshr
                .iter()
                .map(|(&(node, line), v)| (node, line, v.len()))
                .collect();
            entries.sort();
            for (node, line, waiters) in entries.into_iter().take(8) {
                let _ = writeln!(
                    dump,
                    "  mshr gpm{node} line {:#x}: {waiters} merged",
                    line.0
                );
            }
        }
        if let Some(line) = stuck_line {
            let home = self.sys_home(line, GpmId(0));
            let block = self.cfg.geometry.block_of(line);
            let committed = self.committed.get(&line).copied().unwrap_or(0);
            let sharers = self.gpms[home.index()]
                .dir
                .lookup(block)
                .map(|s| s.iter(&topo))
                .unwrap_or_default();
            let _ = writeln!(
                dump,
                "  stuck line {:#x}: sys_home=gpm{} committed_version={committed} \
                 dir[{:#x}]={sharers:?}",
                line.0,
                home.index(),
                block.0
            );
            let (eg, ing) = self.fabric.intra_backlog(home, now);
            let (ieg, iing) = self.fabric.inter_backlog(topo.gpu_of(home), now);
            let _ = writeln!(
                dump,
                "  links at home: intra egress/ingress backlog {eg}/{ing} cycles, \
                 inter {ieg}/{iing} cycles"
            );
        }
        (dump, first_stuck, stuck_line)
    }

    /// Builds the structural-deadlock error: the event queue drained
    /// with CTAs unfinished, loads in flight, or fences un-drained.
    fn deadlock_error(&mut self) -> SimError {
        let now = self.q.now();
        let message = format!(
            "kernel {}/{} unfinished_ctas={} loads_inflight={} mshr_entries={} \
             (a WaitFlag count was never reached, or an in-flight message was lost)",
            self.kernel,
            self.trace.num_kernels(),
            self.ctas_unfinished,
            self.loads_inflight,
            self.mshr.len()
        );
        let (dump, stuck_sm, stuck_line) = self.machine_dump();
        let mut e = SimError::new(hmg_sim::SimErrorKind::Deadlock, message)
            .at_cycle(now.0)
            .with_dump(dump);
        if let Some(r) = stuck_sm {
            e = e.with_agent(self.agent_name(r));
        }
        if let Some(line) = stuck_line {
            e = e.with_addr(line.0 * self.cfg.geometry.line_bytes() as u64);
        }
        e
    }

    /// Builds the livelock error: `gap` cycles elapsed with events
    /// still flowing but no access retiring.
    fn livelock_error(&mut self, now: Cycle, gap: u64) -> SimError {
        let message = format!(
            "no access retired for {gap} cycles (budget {:?}); kernel {}/{} \
             unfinished_ctas={} loads_inflight={}",
            self.cfg.livelock_budget,
            self.kernel,
            self.trace.num_kernels(),
            self.ctas_unfinished,
            self.loads_inflight,
        );
        let (dump, stuck_sm, stuck_line) = self.machine_dump();
        let mut e = SimError::new(hmg_sim::SimErrorKind::Livelock, message)
            .at_cycle(now.0)
            .with_dump(dump);
        if let Some(r) = stuck_sm {
            e = e.with_agent(self.agent_name(r));
        }
        if let Some(line) = stuck_line {
            e = e.with_addr(line.0 * self.cfg.geometry.line_bytes() as u64);
        }
        e
    }

    // ---------- kernel lifecycle ----------

    fn kernel_start(&mut self, now: Cycle, k: usize) {
        self.kernel = k;
        let kernel = &self.trace.kernels[k];
        let n_ctas = kernel.num_ctas();
        self.ctas_unfinished = n_ctas as u64;
        if n_ctas == 0 {
            self.kernel_end(now);
            return;
        }
        self.draining = false;

        // Implicit .sys acquire at kernel launch: bulk-invalidate caches
        // according to the protocol (software coherence pays here).
        self.apply_acquire_everywhere(now);

        // Contiguous CTA scheduling: adjacent CTAs share a GPM [5, 13].
        // Fail-in-place: dead modules get no work; survivors absorb it.
        let alive: Vec<GpmId> = self
            .cfg
            .topo
            .all_gpms()
            .filter(|g| !self.gpm_is_dead(*g))
            .collect();
        let chunk = n_ctas.div_ceil(alive.len());
        for g in self.cfg.topo.all_gpms() {
            self.gpms[g.index()].cta_queue.clear();
        }
        for (i, &g) in alive.iter().enumerate() {
            let lo = (i * chunk).min(n_ctas);
            let hi = ((i + 1) * chunk).min(n_ctas);
            self.gpms[g.index()].cta_queue.extend(lo..hi);
        }

        let start = now + self.cfg.kernel_launch_overhead;
        for gpm in alive {
            for sm in 0..self.cfg.sms_per_gpm {
                let r = SmRef { gpm, sm };
                let cta = self.gpms[gpm.index()].cta_queue.pop_front();
                let s = self.sm(r);
                s.cta = cta;
                s.pc = 0;
                if cta.is_some() {
                    s.state = SmState::Runnable;
                    self.q.push(start, Ev::SmResume(r));
                } else {
                    s.state = SmState::Idle;
                }
            }
        }
    }

    fn apply_acquire_everywhere(&mut self, now: Cycle) {
        let action = self.cfg.protocol.acquire_action(Scope::Sys);
        match action {
            AcquireAction::None => {}
            AcquireAction::L1 => {
                for sm in &mut self.sms {
                    self.m.lines_bulk_invalidated += sm.l1.invalidate_all();
                }
            }
            AcquireAction::L1AndLocalL2 | AcquireAction::L1AndAllGpuL2 => {
                for sm in &mut self.sms {
                    self.m.lines_bulk_invalidated += sm.l1.invalidate_all();
                }
                for gpm in self.cfg.topo.all_gpms() {
                    self.m.lines_bulk_invalidated += self.wipe_l2(now, gpm);
                }
            }
        }
    }

    fn maybe_kernel_end(&mut self, now: Cycle) {
        if self.ctas_unfinished == 0 && self.loads_inflight == 0 && !self.draining {
            self.kernel_end(now);
        }
    }

    fn kernel_end(&mut self, now: Cycle) {
        // Implicit .sys release: flush dirty data (write-back policy),
        // then one fence per GPM drains write-throughs and in-flight
        // invalidations before the next dependent kernel.
        if self.cfg.l2_write_policy == crate::config::WritePolicy::WriteBack {
            for gpm in self.cfg.topo.all_gpms() {
                if !self.gpm_is_dead(gpm) {
                    self.flush_dirty(now, gpm);
                }
            }
        }
        self.draining = true;
        self.kernel_fences_left = 0;
        let domain = self.cfg.protocol.release_domain(Scope::Sys);
        if domain == FenceDomain::None {
            self.advance_kernel(now);
            return;
        }
        for gpm in self.cfg.topo.all_gpms() {
            if self.gpm_is_dead(gpm) {
                continue;
            }
            self.kernel_fences_left += 1;
            self.start_fence(now, gpm, Scope::Sys, None);
        }
    }

    fn advance_kernel(&mut self, now: Cycle) {
        self.m.kernel_end_cycles.push(now.as_u64());
        if self.kernel + 1 < self.trace.num_kernels() {
            self.q.push(now, Ev::KernelStart(self.kernel + 1));
        } else {
            self.finished = true;
        }
    }

    // ---------- SM issue ----------

    fn sm_issue(&mut self, now: Cycle, r: SmRef) {
        let mut t = now;
        let idx = self.sm_index(r);
        if self.sms[idx].state != SmState::Runnable {
            return;
        }
        // The trace outlives `self`'s borrow, so the current CTA's op
        // slice can be cached across batch iterations instead of
        // re-walking kernel -> CTA -> ops for every issued op.
        let trace: &'t WorkloadTrace = self.trace;
        let mut cached_key = (usize::MAX, usize::MAX);
        let mut ops: &'t [TraceOp] = &[];
        for _ in 0..ISSUE_BATCH {
            let (kernel, cta, pc) = {
                let s = &self.sms[idx];
                match s.cta {
                    Some(c) => (self.kernel, c, s.pc),
                    None => {
                        self.sms[idx].state = SmState::Idle;
                        self.maybe_kernel_end(t);
                        return;
                    }
                }
            };
            if cached_key != (kernel, cta) {
                ops = &trace.kernels[kernel].ctas[cta].ops;
                cached_key = (kernel, cta);
            }
            if pc >= ops.len() {
                // CTA complete; grab the next one from the GPM queue.
                self.ctas_unfinished -= 1;
                let next = self.gpms[r.gpm.index()].cta_queue.pop_front();
                let s = &mut self.sms[idx];
                s.cta = next;
                s.pc = 0;
                if next.is_none() {
                    s.state = SmState::Idle;
                    self.maybe_kernel_end(t);
                    return;
                }
                continue;
            }
            let op = ops[pc];
            match op {
                TraceOp::Access(a) => {
                    let line = self.line_of(a.addr);
                    match a.kind {
                        AccessKind::Load => {
                            if !self.issue_load(t, r, line, a.scope) {
                                // Stalled for capacity: retry this op later.
                                self.sms[idx].state = SmState::StalledMem;
                                return;
                            }
                        }
                        AccessKind::Store => self.issue_store(t, r, line, a.scope),
                        AccessKind::Atomic => {
                            if !self.issue_atomic(t, r, line, a.scope) {
                                self.sms[idx].state = SmState::StalledMem;
                                return;
                            }
                        }
                    }
                    self.sms[idx].pc += 1;
                    t += Cycle(self.cfg.issue_cycles as u64);
                }
                TraceOp::Delay(d) => {
                    self.sms[idx].pc += 1;
                    self.q.push(t + Cycle(d as u64), Ev::SmResume(r));
                    return;
                }
                TraceOp::Acquire(scope) => {
                    t += self.apply_acquire(t, r, scope);
                    self.sms[idx].pc += 1;
                }
                TraceOp::Release(scope) => {
                    self.sms[idx].pc += 1;
                    if self.cfg.protocol.release_domain(scope) == FenceDomain::None {
                        continue;
                    }
                    if self.cfg.l2_write_policy == crate::config::WritePolicy::WriteBack {
                        self.flush_dirty(t, r.gpm);
                    }
                    self.sms[idx].state = SmState::FenceWait;
                    self.start_fence(t, r.gpm, scope, Some(r));
                    return;
                }
                TraceOp::SetFlag(f) => {
                    self.sms[idx].pc += 1;
                    *self.flags.or_insert(f, 0) += 1;
                    if let Some(mut waiters) = self.flag_waiters.remove(&f) {
                        // Fault: delayed flag propagation. Waiters wake
                        // later but the ordering guarantees are intact,
                        // so outcomes are unchanged (tolerated).
                        let extra = Cycle(self.cfg.faults.flag_delay.unwrap_or(0));
                        let wake = t + self.cfg.flag_latency + extra;
                        for w in waiters.drain(..) {
                            let wi = self.sm_index(w);
                            if self.sms[wi].state == SmState::FlagWait(f) {
                                self.sms[wi].state = SmState::Runnable;
                                self.q.push(wake, Ev::SmResume(w));
                            }
                        }
                        self.waiter_pool.give(waiters);
                    }
                    t += Cycle(self.cfg.issue_cycles as u64);
                }
                TraceOp::WaitFlag { flag, count } => {
                    if self.flags.get(&flag).copied().unwrap_or(0) >= count {
                        self.sms[idx].pc += 1;
                        t += Cycle(self.cfg.issue_cycles as u64);
                    } else {
                        self.sms[idx].state = SmState::FlagWait(flag);
                        let pool = &mut self.waiter_pool;
                        self.flag_waiters
                            .or_insert_with(flag, || pool.take())
                            .push(r);
                        return;
                    }
                }
            }
        }
        // Yield after a long batch so other events interleave.
        self.q.push(t, Ev::SmResume(r));
    }

    /// Issues a load. Returns `false` if the SM is out of miss capacity.
    fn issue_load(&mut self, t: Cycle, r: SmRef, line: LineAddr, scope: Scope) -> bool {
        let proto = self.cfg.protocol;
        let idx = self.sm_index(r);
        if proto.load_may_hit(CacheLevel::L1, scope) {
            if let Some(&v) = self.sms[idx].l1.get(line) {
                self.m.loads += 1;
                self.m.l1_hits += 1;
                self.record_touch(r, line);
                self.record_probe(r, line, v);
                return true;
            }
        }
        if self.sms[idx].outstanding >= self.cfg.max_outstanding_per_sm {
            return false;
        }
        self.m.loads += 1;
        self.record_touch(r, line);
        self.sms[idx].outstanding += 1;
        self.loads_inflight += 1;
        if self.loads_inflight > self.m.max_loads_inflight {
            self.m.max_loads_inflight = self.loads_inflight;
        }
        let msg = MemMsg {
            sm: r,
            line,
            kind: AccessKind::Load,
            scope,
            version: 0,
            issued_at: t,
            attempts: 0,
            poisoned: false,
        };
        self.q
            .push(t + self.cfg.l1_latency, Ev::Req { msg, node: r.gpm });
        true
    }

    /// Fig. 3 bookkeeping: remember which GPMs touched each line.
    fn record_touch(&mut self, r: SmRef, line: LineAddr) {
        if self.cfg.track_peer_redundancy {
            let mask = self.touch_map.or_insert(line, 0);
            *mask |= 1u64 << r.gpm.index();
        }
    }

    /// Coherence-checker hook: records the version each load of the probe
    /// line observes.
    fn record_probe(&mut self, r: SmRef, line: LineAddr, version: u64) {
        if self.cfg.probe_line == Some(line.0) {
            let sm = self.sm_index(r) as u32;
            self.m.probe.push((sm, version));
        }
    }

    fn issue_store(&mut self, t: Cycle, r: SmRef, line: LineAddr, scope: Scope) {
        self.m.stores += 1;
        let v = self.versions.bump(line);
        let idx = self.sm_index(r);
        // The L1 is always write-through with write-update, no-allocate.
        if let Some(meta) = self.sms[idx].l1.get_mut(line) {
            *meta = v;
        }
        // §IV-B write-back option: plain stores coalesce as dirty lines
        // in the local L2; evictions and releases flush them. Scoped
        // stores always write through to their scope home.
        if self.cfg.l2_write_policy == crate::config::WritePolicy::WriteBack && scope == Scope::Cta
        {
            self.fill_l2(
                t + self.cfg.l1_latency,
                r.gpm,
                line,
                L2Line {
                    version: v,
                    dirty: true,
                },
            );
            return;
        }
        let g = &mut self.gpms[r.gpm.index()];
        g.st_pending_gpu += 1;
        g.st_pending_sys += 1;
        let msg = StoreMsg {
            origin: r.gpm,
            line,
            version: v,
            gpu_ordered: false,
            duplicate: false,
        };
        self.q
            .push(t + self.cfg.l1_latency, Ev::Store { msg, node: r.gpm });
    }

    /// Issues an atomic. Returns `false` if out of miss capacity.
    fn issue_atomic(&mut self, t: Cycle, r: SmRef, line: LineAddr, scope: Scope) -> bool {
        let idx = self.sm_index(r);
        if self.sms[idx].outstanding >= self.cfg.max_outstanding_per_sm {
            return false;
        }
        self.m.loads += 1; // response-bearing
        self.m.stores += 1; // write-committing
        let v = self.versions.bump(line);
        let g = &mut self.gpms[r.gpm.index()];
        g.st_pending_gpu += 1;
        g.st_pending_sys += 1;
        self.sms[idx].outstanding += 1;
        self.loads_inflight += 1;
        let msg = MemMsg {
            sm: r,
            line,
            kind: AccessKind::Atomic,
            scope,
            version: v,
            issued_at: t,
            attempts: 0,
            poisoned: false,
        };
        self.q
            .push(t + self.cfg.l1_latency, Ev::Req { msg, node: r.gpm });
        true
    }

    fn apply_acquire(&mut self, t: Cycle, r: SmRef, scope: Scope) -> Cycle {
        let idx = self.sm_index(r);
        match self.cfg.protocol.acquire_action(scope) {
            AcquireAction::None => Cycle::ZERO,
            AcquireAction::L1 => {
                self.m.lines_bulk_invalidated += self.sms[idx].l1.invalidate_all();
                Cycle(self.cfg.acquire_l1_cost as u64)
            }
            AcquireAction::L1AndLocalL2 => {
                self.m.lines_bulk_invalidated += self.sms[idx].l1.invalidate_all();
                self.m.lines_bulk_invalidated += self.wipe_l2(t, r.gpm);
                Cycle((self.cfg.acquire_l1_cost + self.cfg.acquire_l2_cost) as u64)
            }
            AcquireAction::L1AndAllGpuL2 => {
                self.m.lines_bulk_invalidated += self.sms[idx].l1.invalidate_all();
                let gpu = self.cfg.topo.gpu_of(r.gpm);
                let gpms: Vec<GpmId> = self.cfg.topo.gpms_of(gpu).collect();
                for g in gpms {
                    self.m.lines_bulk_invalidated += self.wipe_l2(t, g);
                }
                Cycle((self.cfg.acquire_l1_cost + 2 * self.cfg.acquire_l2_cost) as u64)
            }
        }
    }

    // ---------- request path ----------

    fn handle_req(&mut self, now: Cycle, msg: MemMsg, node: GpmId) {
        if self.gpm_is_dead(node) {
            self.reroute_req(now, msg);
            return;
        }
        let proto = self.cfg.protocol;
        let degraded = self.line_degraded(msg.line);
        let req_gpm = msg.sm.gpm;
        let req_gpu = self.cfg.topo.gpu_of(req_gpm);
        let sys_home = self.sys_home(msg.line, req_gpm);
        let gpu_home = self.gpu_home(req_gpu, msg.line, sys_home);
        let level = self.level_of(node, req_gpm, sys_home, gpu_home);
        // A lookup that forwards costs only a tag probe; serving data
        // (hits, DRAM fetches, atomics) costs the full data-array access.
        let t = now + self.cfg.l2_tag_latency;
        let t_data = now + self.cfg.l2_latency;
        let block = self.cfg.geometry.block_of(msg.line);

        // Flow control: a busy directory home throttles remote requests
        // rather than queueing them unboundedly. This runs before any
        // state is touched, so a throttled delivery has no side effects
        // and the replay is a clean re-issue (redelivery is idempotent
        // by construction). *What* the home does comes from the spec's
        // guarded `HomeBusy` rows: NACK/retry rejects the request back
        // to the requester with exponential backoff; phase-priority
        // holds it at the home and replays it after a fixed quantum, in
        // arrival order (the event queue's FIFO tie order).
        if let Some(thr) = self.cfg.home_nack_threshold {
            if node != req_gpm
                && self.node_is_dir_home(node, sys_home, gpu_home)
                && self.fabric.intra_backlog(node, now).1 > thr
            {
                let state = self.gpms[node.index()].dir.state_of(block);
                let event = if msg.kind == AccessKind::Load {
                    DirEvent::RemoteLoad
                } else {
                    DirEvent::RemoteStore
                };
                // Every remote-request cell carries a busy-home row; if
                // a spec edit ever dropped one, falling through to the
                // NACK discipline keeps the engine total.
                let defer = self
                    .spec()
                    .row(state, event, GuardCtx::BUSY)
                    .is_some_and(|row| row.has(Action::Defer));
                if defer {
                    self.m.deferred_reqs += 1;
                    self.q
                        .push(now + self.cfg.nack_backoff, Ev::Req { msg, node });
                    return;
                }
                self.m.nacks += 1;
                // Attempt cap: a request the home keeps refusing must
                // surface as a typed error, not retry into a livelock.
                if let Some(cap) = self.cfg.nack_attempt_cap {
                    if msg.attempts >= cap {
                        self.fatal = Some(
                            SimError::protocol(format!(
                                "request NACKed {} times by busy directory home gpm{}: \
                                 attempt cap {cap} exhausted",
                                u32::from(msg.attempts) + 1,
                                node.index(),
                            ))
                            .at_cycle(now.0)
                            .with_agent(format!("gpm{}/sm{}", req_gpm.index(), msg.sm.sm))
                            .with_addr(msg.line.0 * self.cfg.geometry.line_bytes() as u64),
                        );
                        return;
                    }
                }
                let back = self
                    .fabric
                    .send(now, node, req_gpm, self.cfg.msg.nack, MsgClass::Ctrl);
                let shift = u32::from(msg.attempts.min(6));
                let backoff = Cycle(self.cfg.nack_backoff.0 << shift);
                let retry = MemMsg {
                    attempts: msg.attempts.saturating_add(1),
                    ..msg
                };
                self.q.push(
                    back + backoff,
                    Ev::Req {
                        msg: retry,
                        node: req_gpm,
                    },
                );
                return;
            }
        }

        // Fig. 3: the request is about to leave the requester's GPU.
        // Retries already counted themselves on their first pass.
        if self.cfg.track_peer_redundancy
            && msg.kind == AccessKind::Load
            && msg.attempts == 0
            && node == req_gpm
            && self.cfg.topo.gpu_of(sys_home) != req_gpu
        {
            self.m.inter_gpu_loads += 1;
            let mask = self.touch_map.get(&msg.line).copied().unwrap_or(0);
            let gpu_mask: u64 = self
                .cfg
                .topo
                .gpms_of(req_gpu)
                .filter(|g| *g != req_gpm)
                .map(|g| 1u64 << g.index())
                .sum();
            if mask & gpu_mask != 0 {
                self.m.inter_gpu_loads_peer_redundant += 1;
            }
        }

        // Atomics are performed at the home node of their scope; on the
        // way there they act like stores on every directory they pass.
        if msg.kind == AccessKind::Atomic {
            let perform_here = match msg.scope {
                Scope::Cta => node == req_gpm,
                Scope::Gpu => {
                    // Degraded lines perform at the (re-homed) system
                    // home: the GPU home no longer caches them.
                    if proto.hierarchical_routing() && !degraded {
                        node == gpu_home
                    } else {
                        node == sys_home
                    }
                }
                Scope::Sys => node == sys_home,
            };
            if perform_here {
                self.perform_atomic(t_data, msg, node, sys_home, gpu_home);
            } else {
                if proto.has_hw_directory()
                    && !degraded
                    && self.node_is_dir_home(node, sys_home, gpu_home)
                {
                    let sharer = self.dir_sharer_for(node, req_gpm, sys_home);
                    let local = req_gpm == node;
                    self.dir_store(t, node, block, sharer, local, req_gpm, msg.version);
                }
                self.forward_req(t, msg, node, req_gpm, sys_home, gpu_home);
            }
            return;
        }

        // Hardware directory participation for loads (Table I).
        // Degraded lines never enter a directory: no copy to protect.
        if proto.has_hw_directory() && !degraded && self.node_is_dir_home(node, sys_home, gpu_home)
        {
            if req_gpm != node {
                let sharer = self.dir_sharer_for(node, req_gpm, sys_home);
                self.dir_remote_load(t, node, block, sharer);
            } else {
                // Table I: a local load leaves the entry untouched in
                // either state.
                let state = self.gpms[node.index()].dir.state_of(block);
                self.conform(state, DirEvent::LocalLoad, Observed::quiet(state));
            }
        }

        // CARVE-like classifier: loads widen Private -> ReadOnly.
        if proto.has_broadcast_classifier() && !degraded && node == sys_home {
            let entry = self.gpms[node.index()]
                .carve
                .or_insert(block, CarveClass::Private(req_gpm));
            if let CarveClass::Private(owner) = *entry {
                if owner != req_gpm {
                    *entry = CarveClass::ReadOnly;
                }
            }
        }

        // Load hit check (degraded lines obey no-peer-caching rules).
        let may_hit = if degraded {
            ProtocolKind::degraded_load_may_hit(level, msg.scope)
        } else {
            proto.load_may_hit(level, msg.scope)
        };
        if may_hit {
            if let Some(&L2Line { version: v, dirty }) = self.gpms[node.index()].l2.get(msg.line) {
                // ECC check: a latent flip on the resident copy is
                // detected (and handled) before the data is served.
                match self.take_line_fault(node, msg.line) {
                    Some(FlipSeverity::Uncorrectable) => {
                        // The copy is unusable and dropped. Clean: fall
                        // through to the miss path, which refetches the
                        // line from its home. Dirty: the only copy of
                        // the data is gone — serve a poisoned response
                        // that aborts the consuming CTA instead of
                        // handing out a corrupt value.
                        self.gpms[node.index()].l2.invalidate(msg.line);
                        if dirty {
                            self.m.integrity.poisoned += 1;
                            let mut served = msg;
                            served.version = v;
                            served.poisoned = true;
                            self.send_response(t_data, served, node, sys_home, gpu_home);
                            return;
                        }
                        self.m.integrity.refetched_lines += 1;
                    }
                    fault => {
                        if fault.is_some() {
                            // Single-bit flip: corrected in place.
                            self.m.integrity.corrected += 1;
                        }
                        match level {
                            CacheLevel::SysHomeL2 => self.m.sys_home_hits += 1,
                            CacheLevel::GpuHomeL2 => self.m.gpu_home_hits += 1,
                            _ => self.m.local_l2_hits += 1,
                        }
                        let mut served = msg;
                        served.version = v;
                        self.send_response(t_data, served, node, sys_home, gpu_home);
                        return;
                    }
                }
            }
        }

        if node == sys_home {
            // Miss at the system home: fetch from DRAM and fill.
            self.m.dram_accesses += 1;
            let line_bytes = self.cfg.geometry.line_bytes();
            let done = self.gpms[node.index()].dram.access(t_data, line_bytes);
            let v = self.home_version(msg.line);
            if proto.may_fill(CacheLevel::SysHomeL2, true) {
                self.fill_l2(done, node, msg.line, L2Line::clean(v));
            }
            let mut served = msg;
            served.version = v;
            self.send_response(done, served, node, sys_home, gpu_home);
            return;
        }

        // MSHR merge: a load that misses behind an identical outstanding
        // fill at this node rides that fill instead of re-crossing the
        // network. Merging is only legal when this node's cache would be
        // a valid serving point for the load's scope. A NACKed retry
        // must not merge: the entry it would ride may be its own first
        // attempt, whose fill the home just refused to produce.
        let mergeable = msg.kind == AccessKind::Load && may_hit && msg.attempts == 0;
        if mergeable {
            let key = (node.0, msg.line);
            if let Some(waiters) = self.mshr.get_mut(&key) {
                waiters.push(msg);
                return;
            }
            let buf = self.msg_pool.take();
            self.mshr.insert(key, buf);
        }
        self.forward_req(t, msg, node, req_gpm, sys_home, gpu_home);
    }

    /// Completes any loads merged behind a fill of `line` at `node`.
    /// Waiters from this GPM complete in place (recursively draining
    /// their own merge chains); waiters forwarded from other GPMs (merged
    /// at a GPU home) are sent their own responses.
    fn drain_mshr(
        &mut self,
        now: Cycle,
        node: GpmId,
        line: LineAddr,
        version: u64,
        poisoned: bool,
    ) {
        let Some(mut waiters) = self.mshr.remove(&(node.0, line)) else {
            return;
        };
        for mut w in waiters.drain(..) {
            w.version = version;
            // Poison propagates to every consumer merged behind the
            // fill: each aborts rather than using the corrupt value.
            w.poisoned = poisoned;
            if w.sm.gpm == node {
                self.complete_load(now, w);
                self.drain_mshr(now, node, line, version, poisoned);
            } else {
                let arrive =
                    self.fabric
                        .send(now, node, w.sm.gpm, self.cfg.msg.load_resp, MsgClass::Data);
                self.q.push(arrive, Ev::Resp { msg: w });
            }
        }
        self.msg_pool.give(waiters);
    }

    fn forward_req(
        &mut self,
        t: Cycle,
        msg: MemMsg,
        node: GpmId,
        req_gpm: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) {
        let Some(next) = self.next_node(node, req_gpm, sys_home, gpu_home) else {
            // Structurally unreachable; typed error instead of a panic.
            self.fatal = Some(
                SimError::protocol(format!(
                    "request at non-home gpm{} has no forwarding target (sys_home=gpm{})",
                    node.index(),
                    sys_home.index()
                ))
                .at_cycle(t.0)
                .with_agent(self.agent_name(msg.sm))
                .with_addr(msg.line.0 * self.cfg.geometry.line_bytes() as u64),
            );
            return;
        };
        let bytes = match msg.kind {
            AccessKind::Atomic => self.cfg.msg.atomic_req,
            _ => self.cfg.msg.load_req,
        };
        let arrive = self.fabric.send(t, node, next, bytes, MsgClass::Request);
        self.q.push(arrive, Ev::Req { msg, node: next });
    }

    /// The latest version committed at the system home for `line`.
    fn home_version(&self, line: LineAddr) -> u64 {
        self.committed.get(&line).copied().unwrap_or(0)
    }

    /// Inserts into a GPM's L2, handling the victim: dirty victims are
    /// written back toward their home (§IV-B's data-update message);
    /// clean victims optionally send a sharer downgrade.
    fn fill_l2(&mut self, t: Cycle, node: GpmId, line: LineAddr, meta: L2Line) {
        // Stale-fill filter: a response that was served before a newer
        // store's invalidation but delivered after it must not
        // (re)install the old data. Versions are monotone per line, so
        // refusing anything below the invalidation floor — or below a
        // version already resident — is exactly the transient-state
        // protection a real directory protocol provides.
        let block = self.cfg.geometry.block_of(line);
        let floor = self.gpms[node.index()]
            .inv_floor
            .get(&block)
            .copied()
            .unwrap_or(0);
        let resident = self.gpms[node.index()].l2.get(line).map(|m| m.version);
        if meta.version < floor || resident.is_some_and(|v| v > meta.version) {
            self.m.stale_fills_dropped += 1;
            return;
        }
        // A fill overwrites the whole line: any latent flip on the old
        // copy is gone — the data was effectively refetched.
        if !self.line_faults.is_empty() && self.line_faults.remove(&(node.0, line)).is_some() {
            self.m.integrity.refetched_lines += 1;
        }
        if let Some((victim_line, victim)) = self.gpms[node.index()].l2.insert(line, meta) {
            self.evicted_l2_line(t, node, victim_line, victim);
        }
    }

    /// Handles an L2 line leaving a cache (capacity eviction or bulk
    /// invalidation): flush it if dirty, else maybe downgrade.
    fn evicted_l2_line(&mut self, t: Cycle, node: GpmId, line: LineAddr, meta: L2Line) {
        if meta.dirty {
            self.m.writebacks += 1;
            let g = &mut self.gpms[node.index()];
            g.st_pending_gpu += 1;
            g.st_pending_sys += 1;
            let msg = StoreMsg {
                origin: node,
                line,
                version: meta.version,
                gpu_ordered: false,
                duplicate: false,
            };
            self.q.push(t + Cycle(1), Ev::Store { msg, node });
            return;
        }
        if !self.cfg.sharer_downgrades || !self.cfg.protocol.has_hw_directory() {
            return;
        }
        // Downgrade only once the evictor holds no other line of the
        // block — the directory entry covers the whole block, so sending
        // earlier would lose coverage of the remaining sibling lines.
        let block = self.cfg.geometry.block_of(line);
        let siblings_resident = self
            .cfg
            .geometry
            .lines_of_block(block)
            .any(|l| l != line && self.gpms[node.index()].l2.contains(l));
        if siblings_resident {
            return;
        }
        let sys_home = match self.pages.peek_home(self.cfg.geometry.page_of_line(line)) {
            Some(h) => h,
            None => return,
        };
        if sys_home == node {
            return;
        }
        // The directory tracking this GPM: its GPU home under HMG when
        // the system home is on another GPU, the system home otherwise.
        let topo = self.cfg.topo;
        let tracker = if self.cfg.protocol == ProtocolKind::Hmg
            && topo.gpu_of(sys_home) != topo.gpu_of(node)
        {
            self.pages.gpu_home(topo.gpu_of(node), block, sys_home)
        } else {
            sys_home
        };
        if tracker == node {
            return;
        }
        self.m.downgrades += 1;
        let arrive = self
            .fabric
            .send(t, node, tracker, self.cfg.msg.fence, MsgClass::Ctrl);
        self.q.push(
            arrive,
            Ev::Downgrade {
                block,
                target: tracker,
                evictor: node,
            },
        );
    }

    /// Flushes every dirty line of a GPM's L2 (release semantics under
    /// the write-back policy), marking them clean in place.
    fn flush_dirty(&mut self, t: Cycle, node: GpmId) {
        let mut dirty: Vec<(LineAddr, u64)> = Vec::new();
        for (line, meta) in self.gpms[node.index()].l2.iter() {
            if meta.dirty {
                dirty.push((line, meta.version));
            }
        }
        for &(line, version) in &dirty {
            if let Some(meta) = self.gpms[node.index()].l2.get_mut(line) {
                meta.dirty = false;
            }
            self.m.writebacks += 1;
            let g = &mut self.gpms[node.index()];
            g.st_pending_gpu += 1;
            g.st_pending_sys += 1;
            let msg = StoreMsg {
                origin: node,
                line,
                version,
                gpu_ordered: false,
                duplicate: false,
            };
            self.q.push(t + Cycle(1), Ev::Store { msg, node });
        }
    }

    /// Bulk-invalidates a GPM's L2 (software acquire), flushing dirty
    /// lines first so no write is lost. Returns lines dropped.
    fn wipe_l2(&mut self, t: Cycle, node: GpmId) -> u64 {
        if self.cfg.l2_write_policy == crate::config::WritePolicy::WriteBack {
            self.flush_dirty(t, node);
        }
        self.gpms[node.index()].l2.invalidate_all()
    }

    fn perform_atomic(
        &mut self,
        t: Cycle,
        msg: MemMsg,
        node: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) {
        let proto = self.cfg.protocol;
        let block = self.cfg.geometry.block_of(msg.line);
        let degraded = self.line_degraded(msg.line);
        // Directory: atomics are stores (Table I).
        if proto.has_hw_directory() && !degraded && self.node_is_dir_home(node, sys_home, gpu_home)
        {
            let sharer = self.dir_sharer_for(node, msg.sm.gpm, sys_home);
            let local = msg.sm.gpm == node;
            self.dir_store(t, node, block, sharer, local, msg.sm.gpm, msg.version);
        }
        // CARVE-like classifier treats atomics as stores too.
        if proto.has_broadcast_classifier() && !degraded && node == sys_home {
            self.carve_store(t, node, block, msg.sm.gpm, msg.version);
        }
        // Atomics are performed (and cached) at their scope home; a
        // degraded line is only ever cached at its system home.
        if !degraded || node == sys_home {
            self.fill_l2(t, node, msg.line, L2Line::clean(msg.version));
        }
        // Respond to the requester.
        self.send_response(t, msg, node, sys_home, gpu_home);
        // Continue the write-through towards the system home.
        let st = StoreMsg {
            origin: msg.sm.gpm,
            line: msg.line,
            version: msg.version,
            gpu_ordered: false,
            duplicate: false,
        };
        self.continue_store(t, st, node, sys_home, gpu_home);
    }

    fn send_response(
        &mut self,
        t: Cycle,
        msg: MemMsg,
        server: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) {
        let req_gpm = msg.sm.gpm;
        let proto = self.cfg.protocol;
        let bytes = match msg.kind {
            AccessKind::Atomic => self.cfg.msg.atomic_resp,
            _ => self.cfg.msg.load_resp,
        };
        if server == req_gpm {
            self.q.push(t + Cycle(1), Ev::Resp { msg });
            return;
        }
        // Hierarchical responses pass (and fill) the GPU home.
        if proto.hierarchical_routing()
            && server == sys_home
            && gpu_home != sys_home
            && gpu_home != req_gpm
            && msg.kind == AccessKind::Load
        {
            let arrive = self.fabric.send(t, server, gpu_home, bytes, MsgClass::Data);
            self.q.push(
                arrive,
                Ev::RespGpuHome {
                    msg,
                    node: gpu_home,
                },
            );
            return;
        }
        let arrive = self.fabric.send(t, server, req_gpm, bytes, MsgClass::Data);
        self.q.push(arrive, Ev::Resp { msg });
    }

    fn handle_resp_gpu_home(&mut self, now: Cycle, msg: MemMsg, node: GpmId) {
        if self.gpm_is_dead(node) {
            // The GPU home died with the response in flight: forward
            // straight to the requester (or abort with it).
            self.m.reconfig.drained_txns += 1;
            if self.gpm_is_dead(msg.sm.gpm) {
                self.loads_inflight -= 1;
                self.maybe_kernel_end(now);
            } else {
                self.q.push(now + Cycle(1), Ev::Resp { msg });
            }
            return;
        }
        // Fill the GPU home L2 on the response path (Fig. 6(b)).
        let req_gpm = msg.sm.gpm;
        let req_gpu = self.cfg.topo.gpu_of(req_gpm);
        let sys_home = self.sys_home(msg.line, req_gpm);
        let same_gpu = self.cfg.topo.gpu_of(sys_home) == req_gpu;
        let fill = if self.line_degraded(msg.line) {
            ProtocolKind::degraded_may_fill(CacheLevel::GpuHomeL2, same_gpu)
        } else {
            self.cfg.protocol.may_fill(CacheLevel::GpuHomeL2, same_gpu)
        };
        if fill && !msg.poisoned {
            self.fill_l2(now, node, msg.line, L2Line::clean(msg.version));
        }
        let arrive = self
            .fabric
            .send(now, node, req_gpm, self.cfg.msg.load_resp, MsgClass::Data);
        self.q.push(arrive, Ev::Resp { msg });
        // Serve the other GPMs merged behind this fill at the GPU home.
        if msg.kind == AccessKind::Load {
            self.drain_mshr(now, node, msg.line, msg.version, msg.poisoned);
        }
    }

    fn handle_resp(&mut self, now: Cycle, msg: MemMsg) {
        self.complete_load(now, msg);
        if msg.kind == AccessKind::Load {
            self.drain_mshr(now, msg.sm.gpm, msg.line, msg.version, msg.poisoned);
        }
    }

    /// Fills requester-side caches and wakes the issuing SM.
    fn complete_load(&mut self, now: Cycle, msg: MemMsg) {
        if self.gpm_is_dead(msg.sm.gpm) {
            // The requesting SM died while its miss was in flight; the
            // in-flight slot drains without waking anyone.
            self.loads_inflight -= 1;
            self.maybe_kernel_end(now);
            return;
        }
        if msg.poisoned {
            // The served data was uncorrectably corrupt: no caches fill,
            // no latency is credited — the consuming CTA aborts instead
            // of running on poison.
            self.watchdog.note_progress(now.0);
            let idx = self.sm_index(msg.sm);
            self.sms[idx].outstanding -= 1;
            self.loads_inflight -= 1;
            self.abort_poisoned_cta(now, msg.sm);
            return;
        }
        let req_gpm = msg.sm.gpm;
        let req_gpu = self.cfg.topo.gpu_of(req_gpm);
        let sys_home = self.sys_home(msg.line, req_gpm);
        let same_gpu = self.cfg.topo.gpu_of(sys_home) == req_gpu;
        let proto = self.cfg.protocol;
        let degraded = self.line_degraded(msg.line);
        // Fill requester-side caches with the version served.
        if msg.kind == AccessKind::Load {
            let fill_l2 = if degraded {
                ProtocolKind::degraded_may_fill(CacheLevel::LocalL2NonHome, same_gpu)
            } else {
                proto.may_fill(CacheLevel::LocalL2NonHome, same_gpu)
            };
            if req_gpm != sys_home && fill_l2 {
                self.fill_l2(now, req_gpm, msg.line, L2Line::clean(msg.version));
            }
            let fill_l1 = if degraded {
                ProtocolKind::degraded_may_fill(CacheLevel::L1, same_gpu)
            } else {
                proto.may_fill(CacheLevel::L1, same_gpu)
            };
            if fill_l1 {
                let idx = self.sm_index(msg.sm);
                self.sms[idx].l1.insert(msg.line, msg.version);
            }
        }
        self.record_probe(msg.sm, msg.line, msg.version);
        self.watchdog.note_progress(now.0);
        let lat = now.saturating_sub(msg.issued_at).as_u64();
        self.m.miss_latency_sum += lat;
        self.m.miss_count += 1;
        let bucket =
            (64 - lat.max(1).leading_zeros() as usize - 1).min(self.m.miss_latency_hist.len() - 1);
        self.m.miss_latency_hist[bucket] += 1;
        // Wake the SM.
        let idx = self.sm_index(msg.sm);
        self.sms[idx].outstanding -= 1;
        self.loads_inflight -= 1;
        if self.sms[idx].state == SmState::StalledMem {
            self.sms[idx].state = SmState::Runnable;
            self.q.push(now, Ev::SmResume(msg.sm));
        }
        self.maybe_kernel_end(now);
    }

    // ---------- store path ----------

    fn handle_store(&mut self, now: Cycle, msg: StoreMsg, node: GpmId) {
        if self.gpm_is_dead(node) {
            // The write-through was heading to a node that died. Hand
            // it straight to the (re-homed, alive) system home so no
            // committed data is lost.
            self.m.reconfig.drained_txns += 1;
            let toucher = if self.gpm_is_dead(msg.origin) {
                self.cfg
                    .topo
                    .all_gpms()
                    .find(|g| !self.gpm_is_dead(*g))
                    // audit:allow(panic-path): infallible — epoch
                    // reconfiguration refuses plans that kill every GPM,
                    // so at least one survivor always exists.
                    .expect("reconfiguration keeps at least one survivor")
            } else {
                msg.origin
            };
            let sys_home = self.sys_home(msg.line, toucher);
            self.q.push(
                now + Cycle(1),
                Ev::Store {
                    msg,
                    node: sys_home,
                },
            );
            return;
        }
        let req_gpm = msg.origin;
        let req_gpu = self.cfg.topo.gpu_of(req_gpm);
        let sys_home = self.sys_home(msg.line, req_gpm);
        let gpu_home = self.gpu_home(req_gpu, msg.line, sys_home);
        let block = self.cfg.geometry.block_of(msg.line);
        let proto = self.cfg.protocol;
        let degraded = self.line_degraded(msg.line);

        // §IV-B "Remote Stores": stores that arrive at a home L2 are
        // *cached* (write-allocate) and written through; elsewhere they
        // only update an existing copy. A degraded line is only cached
        // at its system home.
        let is_home =
            node == sys_home || (proto.hierarchical_routing() && node == gpu_home && !degraded);
        let t = if is_home {
            now + self.cfg.l2_latency
        } else {
            now + self.cfg.l2_tag_latency
        };
        if is_home {
            self.fill_l2(t, node, msg.line, L2Line::clean(msg.version));
        } else if let Some(meta) = self.gpms[node.index()].l2.get_mut(msg.line) {
            // Version-max: a delayed or duplicated older write-through
            // must not roll a copy back.
            if msg.version >= meta.version {
                meta.version = msg.version;
                // An in-flight write-through supersedes local dirtiness.
                if msg.origin == node {
                    meta.dirty = false;
                }
            }
        }

        // Directory transitions at home nodes (degraded lines have no
        // cached peers to invalidate).
        if proto.has_hw_directory() && !degraded && self.node_is_dir_home(node, sys_home, gpu_home)
        {
            let sharer = self.dir_sharer_for(node, req_gpm, sys_home);
            let local = req_gpm == node;
            self.dir_store(t, node, block, sharer, local, req_gpm, msg.version);
        }

        // CARVE-like classifier: a store to data any other GPM has
        // touched makes the block read-write shared and broadcasts
        // invalidations to every cache — no sharer list exists.
        if proto.has_broadcast_classifier() && !degraded && node == sys_home {
            self.carve_store(t, node, block, req_gpm, msg.version);
        }

        self.continue_store(t, msg, node, sys_home, gpu_home);
    }

    /// CARVE-like store handling at the system home: classify, and
    /// broadcast invalidations for shared blocks.
    fn carve_store(
        &mut self,
        t: Cycle,
        node: GpmId,
        block: BlockAddr,
        writer: GpmId,
        version: u64,
    ) {
        let class = self.gpms[node.index()]
            .carve
            .or_insert(block, CarveClass::Private(writer));
        let shared = match *class {
            CarveClass::Private(owner) if owner == writer => false,
            CarveClass::Private(_) | CarveClass::ReadOnly | CarveClass::ReadWrite => {
                *class = CarveClass::ReadWrite;
                true
            }
        };
        if !shared {
            return;
        }
        let targets: Vec<Sharer> = self
            .cfg
            .topo
            .all_gpms()
            .filter(|&g| g != node && g != writer)
            .map(Sharer::Gpm)
            .collect();
        self.m.stores_triggering_invs += 1;
        self.send_invs(t, node, block, &targets, InvCause::Store, writer, version);
    }

    /// Routes a store onward from `node`, maintaining the pending
    /// counters.
    fn continue_store(
        &mut self,
        t: Cycle,
        mut msg: StoreMsg,
        node: GpmId,
        sys_home: GpmId,
        gpu_home: GpmId,
    ) {
        let proto = self.cfg.protocol;
        // GPU-level ordering point: the GPU home under hierarchical
        // routing, the system home otherwise.
        let gpu_order_point = if proto.hierarchical_routing() {
            gpu_home
        } else {
            sys_home
        };
        if !msg.gpu_ordered && node == gpu_order_point {
            msg.gpu_ordered = true;
            // Duplicates re-apply idempotent state only; the original
            // delivery owns every counter decrement. A dead origin's
            // counters were voided at reconfiguration — never touched
            // again.
            if !msg.duplicate {
                if !self.gpm_is_dead(msg.origin) {
                    let g = &mut self.gpms[msg.origin.index()];
                    g.st_pending_gpu -= 1;
                }
                self.check_fences(t);
            }
        }
        if node == sys_home {
            // Commit: update the authoritative home version, write DRAM.
            // The version-max rule makes duplicate commits no-ops.
            let cur = self.committed.or_insert(msg.line, 0);
            if msg.version > *cur {
                *cur = msg.version;
            }
            let bytes = self.cfg.geometry.line_bytes();
            self.gpms[node.index()].dram.write(t, bytes);
            if !msg.duplicate {
                if !self.gpm_is_dead(msg.origin) {
                    if !msg.gpu_ordered {
                        msg.gpu_ordered = true;
                        self.gpms[msg.origin.index()].st_pending_gpu -= 1;
                    }
                    self.gpms[msg.origin.index()].st_pending_sys -= 1;
                }
                self.check_fences(t);
                self.watchdog.note_progress(t.0);
            }
            return;
        }
        let Some(next) = self.next_node(node, msg.origin, sys_home, gpu_home) else {
            // Structurally unreachable (non-home nodes always have a
            // next hop); surface as a typed protocol violation rather
            // than panicking mid-handler.
            self.fatal = Some(
                SimError::protocol(format!(
                    "store at non-home gpm{} has no forwarding target (sys_home=gpm{})",
                    node.index(),
                    sys_home.index()
                ))
                .at_cycle(t.0)
                .with_addr(msg.line.0 * self.cfg.geometry.line_bytes() as u64),
            );
            return;
        };
        // Fault: silently lose the nth store message. The origin's
        // st_pending counters never drain, so the next release fence
        // hangs and the run ends in a *detected* structural deadlock.
        if !msg.duplicate {
            self.store_seq += 1;
            if self.cfg.faults.drop_store == Some(self.store_seq) {
                return;
            }
        }
        let mut arrive = self
            .fabric
            .send(t, node, next, self.cfg.msg.store, MsgClass::StoreData);
        // Fault: random extra delivery delay. Counters are decremented
        // at delivery, so fences wait it out (tolerated).
        if let Some(d) = self.cfg.faults.delay {
            if self.rng.gen_bool(d.prob) {
                arrive += Cycle(d.extra);
            }
        }
        // Fault: duplicated delivery, flagged so the copy skips
        // counter bookkeeping (tolerated: state updates are idempotent).
        if let Some(dup) = self.cfg.faults.duplicate {
            if !msg.duplicate && self.rng.gen_bool(dup.prob) {
                let copy = StoreMsg {
                    duplicate: true,
                    ..msg
                };
                self.q.push(
                    arrive + Cycle(1),
                    Ev::Store {
                        msg: copy,
                        node: next,
                    },
                );
            }
        }
        self.q.push(arrive, Ev::Store { msg, node: next });
    }

    // ---------- directory ----------

    /// The guarded-action spec variant this run executes: the base
    /// protocol (HMG's hierarchical `Invalidation` column or flat NHCC)
    /// crossed with the configured arbitration discipline. Every
    /// directory decision below is read from this spec's rows — the
    /// same rows the audit model checker proves safe.
    fn spec(&self) -> ProtocolSpec {
        ProtocolSpec::of(self.cfg.protocol == ProtocolKind::Hmg, self.cfg.arbitration)
    }

    /// The unconditional spec row for `(state, event)`.
    ///
    /// # Panics
    ///
    /// Panics when the spec leaves the cell undefined — the engine
    /// reached a transition the protocol does not have, which is a
    /// simulator bug (same contract as `hmg_protocol::transition`).
    fn dir_row(&self, state: DirState, event: DirEvent) -> &'static hmg_protocol::SpecRow {
        self.spec()
            .row(state, event, GuardCtx::FREE)
            .unwrap_or_else(|| {
                // audit:allow(panic-path): undefined-cell contract, mirrors transition().
                panic!("spec leaves ({state:?}, {event:?}) undefined")
            })
    }

    fn node_is_dir_home(&self, node: GpmId, sys_home: GpmId, gpu_home: GpmId) -> bool {
        match self.cfg.protocol {
            ProtocolKind::Nhcc => node == sys_home,
            ProtocolKind::Hmg => node == sys_home || node == gpu_home,
            _ => false,
        }
    }

    /// How the sender is identified in `node`'s directory.
    fn dir_sharer_for(&self, node: GpmId, req_gpm: GpmId, sys_home: GpmId) -> Sharer {
        let topo = self.cfg.topo;
        if self.cfg.protocol == ProtocolKind::Hmg
            && node == sys_home
            && topo.gpu_of(req_gpm) != topo.gpu_of(node)
        {
            Sharer::Gpu(topo.gpu_of(req_gpm))
        } else {
            Sharer::Gpm(req_gpm)
        }
    }

    fn dir_remote_load(&mut self, t: Cycle, node: GpmId, block: BlockAddr, sharer: Sharer) {
        let topo = self.cfg.topo;
        let cap = self.cfg.dir.max_sharers;
        let prev = self.gpms[node.index()].dir.state_of(block);
        // Spec: (I|V, RemoteLoad) -> [AddSharer] -> V. Allocation is the
        // I-row's implicit V entry creation; no invalidation action.
        let row = self.dir_row(prev, DirEvent::RemoteLoad);
        let (obs, newly_broadcast, evicted) = {
            let (set, evicted) = self.gpms[node.index()].dir.allocate(block);
            let prior = (!set.is_broadcast()).then(|| set.len());
            let sender_was = set.contains(&topo, sharer);
            let newly_broadcast = if row.has(Action::AddSharer) {
                set.insert_capped(&topo, sharer, cap).1
            } else {
                false
            };
            let obs = Observed {
                next: row.next,
                added_sharer: row.has(Action::AddSharer),
                prior_sharers: prior,
                sender_was_sharer: sender_was,
                invalidated: Some(0),
            };
            (obs, newly_broadcast, evicted)
        };
        self.conform(prev, DirEvent::RemoteLoad, obs);
        if newly_broadcast {
            self.note_broadcast_fallback(node);
        }
        if let Some((vblock, sharers)) = evicted {
            self.send_evict_invs(t, node, vblock, sharers);
        }
    }

    /// Records one directory entry degrading from precise sharer
    /// tracking to conservative broadcast mode.
    fn note_broadcast_fallback(&mut self, node: GpmId) {
        self.gpms[node.index()].dir.note_broadcast_fallback();
        self.m.dir_broadcast_fallbacks += 1;
    }

    /// The conservative target list a broadcast-mode directory entry
    /// stands for: every sharer `node`'s directory could possibly be
    /// tracking for `block`. Mirrors [`Engine::dir_sharer_for`]: a
    /// hierarchical system home tracks its own GPU's modules plus whole
    /// remote GPUs; a GPU home tracks only its own modules; a flat
    /// directory tracks every GPM directly.
    fn broadcast_targets(&self, node: GpmId, block: BlockAddr) -> Vec<Sharer> {
        let topo = self.cfg.topo;
        let node_gpu = topo.gpu_of(node);
        if !self.cfg.protocol.hierarchical_routing() {
            return topo
                .all_gpms()
                .filter(|g| *g != node)
                .map(Sharer::Gpm)
                .collect();
        }
        let mut targets: Vec<Sharer> = topo
            .gpms_of(node_gpu)
            .filter(|g| *g != node)
            .map(Sharer::Gpm)
            .collect();
        // Only the block's system home tracks remote GPUs; a page with a
        // directory entry has necessarily been homed already.
        let line = self.cfg.geometry.first_line_of_block(block);
        let at_sys_home = self.pages.peek_home(self.cfg.geometry.page_of_line(line)) == Some(node);
        if at_sys_home {
            targets.extend(topo.all_gpus().filter(|g| *g != node_gpu).map(Sharer::Gpu));
        }
        targets
    }

    /// Expands a sharer set into invalidation targets, substituting the
    /// conservative broadcast list when the entry has degraded.
    fn inv_targets(
        &mut self,
        node: GpmId,
        block: BlockAddr,
        sharers: &hmg_mem::SharerSet,
    ) -> Vec<Sharer> {
        if sharers.is_broadcast() {
            self.m.broadcast_invs += 1;
            self.broadcast_targets(node, block)
        } else {
            sharers.iter(&self.cfg.topo)
        }
    }

    #[allow(clippy::too_many_arguments)] // a directory transition, not a config
    fn dir_store(
        &mut self,
        t: Cycle,
        node: GpmId,
        block: BlockAddr,
        sharer: Sharer,
        local: bool,
        origin: GpmId,
        version: u64,
    ) {
        let topo = self.cfg.topo;
        if local {
            // Spec: (V, LocalStore) -> [InvAllSharers, RemoveAllSharers]
            // -> I; (I, LocalStore) -> [] -> I. The `remove` call is the
            // RemoveAllSharers action and doubles as the state probe.
            match self.gpms[node.index()].dir.remove(block) {
                Some(sharers) => {
                    let row = self.dir_row(DirState::Valid, DirEvent::LocalStore);
                    debug_assert!(row.has(Action::RemoveAllSharers));
                    let prior = (!sharers.is_broadcast()).then(|| sharers.len());
                    let targets = if row.has(Action::InvAllSharers) {
                        self.inv_targets(node, block, &sharers)
                    } else {
                        Vec::new()
                    };
                    let invalidated = prior.map(|_| targets.len() as u32);
                    self.conform(
                        DirState::Valid,
                        DirEvent::LocalStore,
                        Observed {
                            next: row.next,
                            added_sharer: row.has(Action::AddSharer),
                            prior_sharers: prior,
                            sender_was_sharer: false,
                            invalidated,
                        },
                    );
                    if !targets.is_empty() {
                        self.m.stores_triggering_invs += 1;
                        self.send_invs(t, node, block, &targets, InvCause::Store, origin, version);
                    }
                }
                None => {
                    let row = self.dir_row(DirState::Invalid, DirEvent::LocalStore);
                    self.conform(
                        DirState::Invalid,
                        DirEvent::LocalStore,
                        Observed::quiet(row.next),
                    );
                }
            }
            return;
        }
        // Spec: (I|V, RemoteStore) -> [AddSharer, InvOtherSharers] -> V.
        // A precise entry names the others exactly — even when this very
        // insert overflows the cap, because the pre-insert set was still
        // precise. An already-degraded entry falls back to the
        // conservative broadcast list.
        let cap = self.cfg.dir.max_sharers;
        let prev = self.gpms[node.index()].dir.state_of(block);
        let row = self.dir_row(prev, DirEvent::RemoteStore);
        let (others, prior, sender_was, newly_broadcast, evicted) = {
            let (set, evicted) = self.gpms[node.index()].dir.allocate(block);
            let prior = (!set.is_broadcast()).then(|| set.len());
            let sender_was = set.contains(&topo, sharer);
            let others: Option<Vec<Sharer>> = if !row.has(Action::InvOtherSharers) {
                Some(Vec::new())
            } else if set.is_broadcast() {
                None
            } else {
                Some(
                    set.iter(&topo)
                        .into_iter()
                        .filter(|s| *s != sharer)
                        .collect(),
                )
            };
            let newly_broadcast = if row.has(Action::AddSharer) {
                set.insert_capped(&topo, sharer, cap).1
            } else {
                false
            };
            (others, prior, sender_was, newly_broadcast, evicted)
        };
        self.conform(
            prev,
            DirEvent::RemoteStore,
            Observed {
                next: row.next,
                added_sharer: row.has(Action::AddSharer),
                prior_sharers: prior,
                sender_was_sharer: sender_was,
                invalidated: others.as_ref().map(|o| o.len() as u32),
            },
        );
        if newly_broadcast {
            self.note_broadcast_fallback(node);
        }
        let targets: Vec<Sharer> = match others {
            Some(t) => t,
            None => {
                self.m.broadcast_invs += 1;
                self.broadcast_targets(node, block)
                    .into_iter()
                    .filter(|s| *s != sharer)
                    .collect()
            }
        };
        if !targets.is_empty() {
            self.m.stores_triggering_invs += 1;
            self.send_invs(t, node, block, &targets, InvCause::Store, origin, version);
        }
        if let Some((vblock, sharers)) = evicted {
            self.send_evict_invs(t, node, vblock, sharers);
        }
    }

    fn send_evict_invs(
        &mut self,
        t: Cycle,
        node: GpmId,
        block: BlockAddr,
        sharers: hmg_mem::SharerSet,
    ) {
        // Spec: (V, Replace) -> [InvAllSharers, RemoveAllSharers,
        // Writeback] -> I. The removal already happened at the caller
        // (the directory's `allocate` evicted the victim entry); the
        // Writeback action is a no-op under the evaluated write-through
        // policy — dirty copies flush at the invalidated caches.
        let row = self.dir_row(DirState::Valid, DirEvent::Replace);
        let prior = (!sharers.is_broadcast()).then(|| sharers.len());
        let targets = if row.has(Action::InvAllSharers) {
            self.inv_targets(node, block, &sharers)
        } else {
            Vec::new()
        };
        self.conform(
            DirState::Valid,
            DirEvent::Replace,
            Observed {
                next: row.next,
                added_sharer: row.has(Action::AddSharer),
                prior_sharers: prior,
                sender_was_sharer: false,
                invalidated: prior.map(|_| targets.len() as u32),
            },
        );
        if !targets.is_empty() {
            self.m.evictions_triggering_invs += 1;
            self.send_invs(t, node, block, &targets, InvCause::Eviction, node, 0);
        }
    }

    /// Records one executed directory transition into the run's
    /// conformance tracker ([`RunMetrics::table`]) and debug-asserts
    /// that its observed effect matches the static Table I. Release
    /// builds count the mismatch instead of aborting.
    fn conform(&mut self, state: DirState, event: DirEvent, obs: Observed) {
        let hmg = self.spec().variant.hmg();
        if let Err(why) = self.m.table.observe(state, event, hmg, obs) {
            debug_assert!(false, "directory conformance violation: {why}");
            let _ = why;
        }
    }

    #[allow(clippy::too_many_arguments)] // a directory transition, not a config
    fn send_invs(
        &mut self,
        t: Cycle,
        node: GpmId,
        block: BlockAddr,
        targets: &[Sharer],
        cause: InvCause,
        causer: GpmId,
        version: u64,
    ) {
        let topo = self.cfg.topo;
        for &s in targets {
            let (target, from_sys) = match s {
                Sharer::Gpm(g) => (g, false),
                Sharer::Gpu(g) => {
                    // Invalidate via that GPU's home node, which forwards.
                    let gh = self.pages.gpu_home(g, block, node);
                    (gh, true)
                }
            };
            if target == node || self.gpm_is_dead(target) {
                continue;
            }
            // A dead causer's pending counters were voided; its
            // still-in-flight stores send uncounted invalidations.
            let mut counted = cause == InvCause::Store && !self.gpm_is_dead(causer);
            let mut reorder_extra = Cycle::ZERO;
            if counted {
                self.inv_seq += 1;
                // Fault: FIFO violation. The nth store-caused
                // invalidation is delivered late *without* holding its
                // pending counter, so the causer's release fence
                // completes before the stale copy is removed — the
                // exact reordering HMG's FIFO-link assumption forbids.
                // The version oracle (probe) must detect the stale
                // read; the run must never hang.
                if let Some(r) = self.cfg.faults.reorder_inv {
                    if self.inv_seq == r.nth {
                        counted = false;
                        reorder_extra = Cycle(r.extra);
                    }
                }
            }
            if counted {
                let same_gpu = topo.gpu_of(target) == topo.gpu_of(causer);
                let gc = &mut self.gpms[causer.index()];
                gc.inv_pending_sys += 1;
                if same_gpu {
                    gc.inv_pending_gpu += 1;
                }
            }
            match cause {
                InvCause::Store => self.m.invs_from_stores += 1,
                InvCause::Eviction => self.m.invs_from_evictions += 1,
            }
            let mut arrive = self
                .fabric
                .send(t, node, target, self.cfg.msg.inv, MsgClass::Inv)
                + reorder_extra;
            // Fault: random delivery delay — counted invalidations keep
            // their counter until delivery, so fences wait (tolerated).
            if let Some(d) = self.cfg.faults.delay {
                if self.rng.gen_bool(d.prob) {
                    arrive += Cycle(d.extra);
                }
            }
            let inv = InvMsg {
                block,
                cause,
                causer,
                counted,
                from_sys,
                target,
                version,
            };
            // Fault: duplicated delivery — the copy is uncounted and
            // re-invalidation is a no-op (tolerated).
            if let Some(dup) = self.cfg.faults.duplicate {
                if self.rng.gen_bool(dup.prob) {
                    self.q.push(
                        arrive + Cycle(1),
                        Ev::Inv(InvMsg {
                            counted: false,
                            ..inv
                        }),
                    );
                }
            }
            self.q.push(arrive, Ev::Inv(inv));
        }
    }

    fn handle_inv(&mut self, now: Cycle, inv: InvMsg) {
        let topo = self.cfg.topo;
        if self.gpm_is_dead(inv.target) {
            // The target died with the invalidation in flight: nothing
            // to invalidate, but a counted message must still release
            // its (surviving) causer's pending counters or the
            // causer's release fence wedges.
            if inv.counted && !self.gpm_is_dead(inv.causer) {
                let same_gpu = topo.gpu_of(inv.target) == topo.gpu_of(inv.causer);
                let gc = &mut self.gpms[inv.causer.index()];
                gc.inv_pending_sys -= 1;
                if same_gpu {
                    gc.inv_pending_gpu -= 1;
                }
                self.check_fences(now);
            }
            return;
        }
        // Raise the fill floor first: any fill still in flight that was
        // served before the store this invalidation announces must not
        // land after it (see `fill_l2`).
        if inv.version > 0 {
            let floor = self.gpms[inv.target.index()]
                .inv_floor
                .or_insert(inv.block, 0);
            *floor = (*floor).max(inv.version);
        }
        // Drop the L2 copies of every line in the block; racy dirty
        // copies are flushed rather than lost.
        let mut removed = 0u64;
        for line in self.cfg.geometry.lines_of_block(inv.block) {
            if let Some(meta) = self.gpms[inv.target.index()].l2.invalidate(line) {
                removed += 1;
                if meta.dirty {
                    self.evicted_l2_line(now, inv.target, line, meta);
                }
            }
        }
        match inv.cause {
            InvCause::Store => self.m.lines_invalidated_by_stores += removed,
            InvCause::Eviction => self.m.lines_invalidated_by_evictions += removed,
        }
        // Hierarchical forward: a GPU home node receiving a system-home
        // invalidation executes the spec's `Invalidation` column —
        // (V, Invalidation) -> [ForwardInv, RemoveAllSharers] -> I.
        // The column only exists in HMG variants, so its legality *is*
        // the protocol test. The `skip-hier-fwd` fault plan deliberately
        // omits the forward — the injected protocol bug the coherence
        // checker must catch.
        if inv.from_sys
            && self.spec().legal(DirState::Valid, DirEvent::Invalidation)
            && !self.cfg.faults.skip_hier_inv_forward
        {
            match self.gpms[inv.target.index()].dir.remove(inv.block) {
                Some(sharers) => {
                    let row = self.dir_row(DirState::Valid, DirEvent::Invalidation);
                    debug_assert!(row.has(Action::RemoveAllSharers));
                    let prior = (!sharers.is_broadcast()).then(|| sharers.len());
                    let targets = if row.has(Action::ForwardInv) {
                        self.inv_targets(inv.target, inv.block, &sharers)
                    } else {
                        Vec::new()
                    };
                    self.conform(
                        DirState::Valid,
                        DirEvent::Invalidation,
                        Observed {
                            next: row.next,
                            added_sharer: row.has(Action::AddSharer),
                            prior_sharers: prior,
                            sender_was_sharer: false,
                            invalidated: prior.map(|_| targets.len() as u32),
                        },
                    );
                    if !targets.is_empty() {
                        self.send_invs(
                            now,
                            inv.target,
                            inv.block,
                            &targets,
                            inv.cause,
                            inv.causer,
                            inv.version,
                        );
                    }
                }
                None => {
                    // (I, Invalidation): nothing tracked below, -> I.
                    let row = self.dir_row(DirState::Invalid, DirEvent::Invalidation);
                    self.conform(
                        DirState::Invalid,
                        DirEvent::Invalidation,
                        Observed::quiet(row.next),
                    );
                }
            }
        }
        if inv.counted && !self.gpm_is_dead(inv.causer) {
            let same_gpu = topo.gpu_of(inv.target) == topo.gpu_of(inv.causer);
            let gc = &mut self.gpms[inv.causer.index()];
            gc.inv_pending_sys -= 1;
            if same_gpu {
                gc.inv_pending_gpu -= 1;
            }
            self.check_fences(now);
        }
    }

    // ---------- fences ----------

    fn start_fence(&mut self, t: Cycle, gpm: GpmId, scope: Scope, sm: Option<SmRef>) {
        self.m.fences += 1;
        if self.cfg.zero_cost_fences {
            // Fence-cost ablation: complete immediately, without traffic
            // or drain waiting.
            match sm {
                Some(r) => {
                    let idx = self.sm_index(r);
                    self.sms[idx].state = SmState::Runnable;
                    self.q.push(t, Ev::SmResume(r));
                }
                None => {
                    self.kernel_fences_left -= 1;
                    if self.kernel_fences_left == 0 {
                        self.advance_kernel(t);
                    }
                }
            }
            return;
        }
        let domain = self.cfg.protocol.release_domain(scope);
        // Dead modules neither hold copies nor ack: fence around them.
        let dead = self.dead_gpms;
        let alive_peer = |g: &GpmId| *g != gpm && dead & (1u64 << g.index()) == 0;
        let targets: Vec<GpmId> = match domain {
            FenceDomain::None => Vec::new(),
            FenceDomain::LocalGpu => self
                .cfg
                .topo
                .gpms_of(self.cfg.topo.gpu_of(gpm))
                .filter(alive_peer)
                .collect(),
            FenceDomain::AllGpms => self.cfg.topo.all_gpms().filter(alive_peer).collect(),
        };
        let id = self.fences.len();
        self.fences.push(Fence {
            gpm,
            scope,
            sm,
            acks_done: targets.is_empty(),
            completed: false,
        });
        self.active_fences.push(id);
        if targets.is_empty() {
            self.q.push(t, Ev::FenceAcks(id));
            return;
        }
        // Fence messages ride the same FIFO links as the stores they
        // order; acks return on the reverse path.
        let mut last_ack = t;
        for target in targets {
            let there = self
                .fabric
                .send(t, gpm, target, self.cfg.msg.fence, MsgClass::Ctrl);
            let processed = there + self.cfg.l2_latency;
            let back = self
                .fabric
                .send(processed, target, gpm, self.cfg.msg.fence, MsgClass::Ctrl);
            last_ack = last_ack.max(back);
        }
        self.q.push(last_ack, Ev::FenceAcks(id));
    }

    fn handle_fence_acks(&mut self, now: Cycle, id: usize) {
        self.fences[id].acks_done = true;
        self.check_fences(now);
    }

    #[cfg(debug_assertions)]
    fn assert_drained(&self) {
        for (i, g) in self.gpms.iter().enumerate() {
            assert_eq!(g.st_pending_gpu, 0, "GPM{i} st_pending_gpu leaked");
            assert_eq!(g.st_pending_sys, 0, "GPM{i} st_pending_sys leaked");
            assert_eq!(g.inv_pending_gpu, 0, "GPM{i} inv_pending_gpu leaked");
            assert_eq!(g.inv_pending_sys, 0, "GPM{i} inv_pending_sys leaked");
        }
    }

    fn check_fences(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.active_fences.len() {
            let id = self.active_fences[i];
            if !self.fences[id].acks_done {
                i += 1;
                continue;
            }
            let gpm = self.fences[id].gpm;
            let scope = self.fences[id].scope;
            let drained = {
                let g = &self.gpms[gpm.index()];
                let hier = self.cfg.protocol.hierarchical_routing();
                match (scope, hier) {
                    (Scope::Gpu, true) => g.st_pending_gpu == 0 && g.inv_pending_gpu == 0,
                    _ => g.st_pending_sys == 0 && g.inv_pending_sys == 0,
                }
            };
            if !drained {
                i += 1;
                continue;
            }
            self.fences[id].completed = true;
            self.active_fences.swap_remove(i);
            match self.fences[id].sm {
                Some(r) => {
                    let idx = self.sm_index(r);
                    if self.sms[idx].state == SmState::FenceWait {
                        self.sms[idx].state = SmState::Runnable;
                        self.q.push(now, Ev::SmResume(r));
                    }
                }
                None => {
                    self.kernel_fences_left -= 1;
                    if self.kernel_fences_left == 0 {
                        self.advance_kernel(now);
                    }
                }
            }
        }
    }

    // ---------- fail-in-place reconfiguration ----------

    /// Enters a reconfiguration epoch for one permanent fault. Failure
    /// detection is modeled as the reliable transport's full escalated
    /// retry window ([`hmg_interconnect::TransportConfig::escalation_cycles`]):
    /// the epoch charges it as downtime and grants the livelock
    /// watchdog the same grace so the detection window is never
    /// misread as a stall.
    fn reconfigure(&mut self, now: Cycle, fault: PermFault) {
        self.m.reconfig.epochs += 1;
        let detect = self.fabric.transport_config().escalation_cycles();
        self.m.reconfig.downtime_cycles += detect;
        self.watchdog.suspend(now.0, detect);
        match fault {
            // The fabric reroutes around the dead link at send time
            // (second-tier path); nothing to drain engine-side.
            PermFault::LinkDown => {}
            PermFault::Offline(dead) => self.take_offline(now, &dead),
        }
    }

    /// Takes a set of GPMs permanently offline: aborts their CTAs
    /// (salvaging flag publications so surviving waiters don't wedge),
    /// drains transactions parked at the dead nodes, re-homes pages
    /// whose DRAM partition died, and conservatively rebuilds the
    /// directory state the dead modules were tracking.
    fn take_offline(&mut self, now: Cycle, dead: &[GpmId]) {
        let topo = self.cfg.topo;
        for &d in dead {
            self.dead_gpms |= 1u64 << d.index();
            self.fabric.mark_gpm_down(d);
        }
        self.reconfigured = true;
        if (0..topo.num_gpms()).all(|i| self.dead_gpms & (1u64 << i) != 0) {
            self.fatal = Some(
                SimError::config("every GPM is offline; no survivors to reconfigure onto")
                    .at_cycle(now.0),
            );
            return;
        }

        // Quiesce: abort the dead modules' CTAs. Queued CTAs never
        // started (salvage from op 0); running CTAs salvage from their
        // current pc.
        let in_kernel = !self.finished && !self.trace.kernels.is_empty();
        for &d in dead {
            let queued: Vec<usize> = self.gpms[d.index()].cta_queue.drain(..).collect();
            for cta in queued {
                if in_kernel {
                    self.abort_cta(now, cta, 0);
                }
            }
            for sm in 0..self.cfg.sms_per_gpm {
                let idx = self.sm_index(SmRef { gpm: d, sm });
                let s = &mut self.sms[idx];
                let cta = s.cta.take();
                let pc = s.pc;
                s.pc = 0;
                s.outstanding = 0;
                s.state = SmState::Idle;
                s.l1.invalidate_all();
                if let Some(c) = cta {
                    if in_kernel {
                        self.abort_cta(now, c, pc);
                    }
                }
            }
            let g = &mut self.gpms[d.index()];
            // No survivor fences on the dead module's stores: its
            // pending counters are voided, and in-flight deliveries
            // that would decrement them are skipped (see the
            // `gpm_is_dead(origin)` guards in the store/inv paths).
            g.st_pending_gpu = 0;
            g.st_pending_sys = 0;
            g.inv_pending_gpu = 0;
            g.inv_pending_sys = 0;
            g.carve.clear();
            g.inv_floor.clear();
            // Dirty lines on a dead module are lost, not flushed.
            g.l2.invalidate_all();
        }

        // Drain transactions merged behind fills at the dead nodes:
        // dead requesters abort, surviving requesters re-issue against
        // the reconfigured homes. The attempt bump keeps the re-issue
        // out of MSHR merges (the entry it would ride is gone).
        let mut keys: Vec<(u16, LineAddr)> = self
            .mshr
            .keys()
            .filter(|&&(n, _)| self.dead_gpms & (1u64 << n) != 0)
            .copied()
            .collect();
        keys.sort_unstable_by_key(|&(n, l)| (n, l.0));
        for key in keys {
            for w in self.mshr.remove(&key).into_iter().flatten() {
                if self.gpm_is_dead(w.sm.gpm) {
                    self.loads_inflight -= 1;
                } else {
                    self.m.reconfig.drained_txns += 1;
                    let retry = MemMsg {
                        attempts: w.attempts.saturating_add(1),
                        ..w
                    };
                    self.q.push(
                        now + Cycle(1),
                        Ev::Req {
                            msg: retry,
                            node: retry.sm.gpm,
                        },
                    );
                }
            }
        }

        // Re-home pages whose DRAM partition died; they drop into the
        // degraded no-peer-caching mode from here on. (Interleaved
        // placement re-homes lazily inside the page map, so the counts
        // stay zero there while `is_rehomed` still answers correctly.)
        let rehomed = self.pages.take_offline(dead);
        self.m.reconfig.rehomed_pages += rehomed.len() as u64;
        self.m.reconfig.degraded_pages += rehomed.len() as u64;

        // Rebuild directory state. The dead directories' sharer lists
        // are unrecoverable, so every block they tracked is
        // conservatively scrubbed from all surviving caches; blocks
        // that stay directory-tracked are re-created at their surviving
        // tracker as sticky-broadcast entries (the conservative mode
        // the sharer-cap overflow path already exercises).
        for &d in dead {
            let resident = self.gpms[d.index()].dir.resident_blocks();
            for (block, _sharers) in resident {
                self.m.reconfig.rehomed_blocks += 1;
                self.gpms[d.index()].dir.remove(block);
                for g in topo.all_gpms() {
                    if self.gpm_is_dead(g) {
                        continue;
                    }
                    let mut removed = 0u64;
                    let mut dirty: Vec<(LineAddr, L2Line)> = Vec::new();
                    for line in self.cfg.geometry.lines_of_block(block) {
                        if let Some(meta) = self.gpms[g.index()].l2.invalidate(line) {
                            removed += 1;
                            if meta.dirty {
                                dirty.push((line, meta));
                            }
                        }
                    }
                    self.m.reconfig.scrubbed_lines += removed;
                    for (line, meta) in dirty {
                        self.evicted_l2_line(now, g, line, meta);
                    }
                }
                let line = self.cfg.geometry.first_line_of_block(block);
                let page = self.cfg.geometry.page_of_line(line);
                if self.line_degraded(line) {
                    // Degraded lines leave directory coherence entirely.
                    continue;
                }
                let Some(sys) = self.pages.peek_home(page) else {
                    continue;
                };
                let tracker = if topo.gpu_of(d) == topo.gpu_of(sys) {
                    sys
                } else {
                    self.pages.gpu_home(topo.gpu_of(d), block, sys)
                };
                if self.gpm_is_dead(tracker) {
                    continue;
                }
                let (newly, evicted) = {
                    let (set, evicted) = self.gpms[tracker.index()].dir.allocate(block);
                    let newly = !set.is_broadcast();
                    set.force_broadcast();
                    (newly, evicted)
                };
                if newly {
                    self.note_broadcast_fallback(tracker);
                }
                if let Some((vb, vs)) = evicted {
                    self.send_evict_invs(now, tracker, vb, vs);
                }
            }
        }

        // Purge dead sharers from every surviving directory.
        let dead_gpus: Vec<GpuId> = topo
            .all_gpus()
            .filter(|&gpu| topo.gpms_of(gpu).all(|g| self.gpm_is_dead(g)))
            .collect();
        for g in topo.all_gpms() {
            if self.gpm_is_dead(g) {
                continue;
            }
            for &d in dead {
                self.gpms[g.index()].dir.purge_sharer(Sharer::Gpm(d));
            }
            for &gpu in &dead_gpus {
                self.gpms[g.index()].dir.purge_sharer(Sharer::Gpu(gpu));
            }
        }

        // Fences ordered against the dead modules can complete now, and
        // the kernel may have lost its last unfinished CTA.
        self.check_fences(now);
        self.maybe_kernel_end(now);
    }

    /// Aborts one CTA of a dead GPM. Its remaining `SetFlag` ops are
    /// salvaged — published immediately — so surviving `WaitFlag`
    /// consumers do not deadlock on a producer that no longer exists.
    fn abort_cta(&mut self, now: Cycle, cta: usize, pc: usize) {
        self.m.reconfig.aborted_ctas += 1;
        self.ctas_unfinished -= 1;
        let ops = &self.trace.kernels[self.kernel].ctas[cta].ops;
        let flags: Vec<u32> = ops[pc.min(ops.len())..]
            .iter()
            .filter_map(|op| match op {
                TraceOp::SetFlag(f) => Some(*f),
                _ => None,
            })
            .collect();
        for f in flags {
            self.salvage_set_flag(now, f);
        }
    }

    /// Publishes a salvaged flag increment, waking waiters exactly like
    /// the normal `SetFlag` path.
    fn salvage_set_flag(&mut self, now: Cycle, f: u32) {
        *self.flags.or_insert(f, 0) += 1;
        if let Some(mut waiters) = self.flag_waiters.remove(&f) {
            let wake = now + self.cfg.flag_latency;
            for w in waiters.drain(..) {
                let wi = self.sm_index(w);
                if self.sms[wi].state == SmState::FlagWait(f) {
                    self.sms[wi].state = SmState::Runnable;
                    self.q.push(wake, Ev::SmResume(w));
                }
            }
            self.waiter_pool.give(waiters);
        }
    }

    /// Re-issues (or aborts) a request that was delivered to a dead
    /// node. Surviving requesters retry from their own GPM, where the
    /// home lookups recompute against the reconfigured page map.
    fn reroute_req(&mut self, now: Cycle, msg: MemMsg) {
        self.m.reconfig.drained_txns += 1;
        if self.gpm_is_dead(msg.sm.gpm) {
            // Requester and server both died: the transaction aborts.
            self.loads_inflight -= 1;
            self.maybe_kernel_end(now);
            return;
        }
        let retry = MemMsg {
            attempts: msg.attempts.saturating_add(1),
            ..msg
        };
        self.q.push(
            now + Cycle(1),
            Ev::Req {
                msg: retry,
                node: retry.sm.gpm,
            },
        );
    }

    // ---------- soft errors: injection, scrubbing, poison ----------

    /// Consumes the latent fault planted on `(node, line)`, if any. The
    /// fast path keeps the per-access overhead at one branch when no
    /// flip faults are armed.
    fn take_line_fault(&mut self, node: GpmId, line: LineAddr) -> Option<FlipSeverity> {
        if self.line_faults.is_empty() {
            return None;
        }
        self.line_faults.remove(&(node.0, line))
    }

    /// One scrubber period: resolve last period's latent faults, then
    /// draw this period's flips.
    fn handle_scrub(&mut self, now: Cycle) {
        self.scrub_sweep();
        self.plant_flips(now);
        // Reschedule only while the run is still making progress: an
        // otherwise-drained queue must stay drained so the queue-empty
        // deadlock check keeps firing.
        if !self.finished && !self.q.is_empty() {
            self.q.push(now + self.cfg.scrub_interval, Ev::Scrub);
        }
    }

    /// The background scrubber pass: resolves every outstanding latent
    /// fault against the line's current residency. Correctable faults
    /// are repaired in place; uncorrectable faults invalidate the copy —
    /// clean (or departed) lines refetch on their next miss, while a
    /// dirty copy was the only one and is unrecoverable poison.
    fn scrub_sweep(&mut self) {
        if self.line_faults.is_empty() {
            return;
        }
        let mut entries: Vec<((u16, LineAddr), FlipSeverity)> =
            self.line_faults.iter().map(|(&k, &v)| (k, v)).collect();
        // The flat map iterates in storage order; restore the ordered
        // map's key order so the sweep's observable side effects
        // (invalidations, poison, counters) land identically.
        entries.sort_unstable_by_key(|&((g, l), _)| (g, l.0));
        self.line_faults.clear();
        for ((gpm, line), sev) in entries {
            self.m.integrity.scrubbed += 1;
            let node = GpmId(gpm);
            match sev {
                FlipSeverity::Correctable => {
                    if self.gpms[node.index()].l2.get(line).is_some() {
                        self.m.integrity.corrected += 1;
                    } else {
                        // The line left the cache before the scrubber
                        // reached it; the flip died with the stale copy.
                        self.m.integrity.refetched_lines += 1;
                    }
                }
                FlipSeverity::Uncorrectable => {
                    match self.gpms[node.index()].l2.invalidate(line) {
                        Some(meta) if meta.dirty => {
                            // The only copy of committed-but-unflushed
                            // data was corrupt: contained, not consumed.
                            self.m.integrity.poisoned += 1;
                        }
                        _ => self.m.integrity.refetched_lines += 1,
                    }
                }
            }
        }
    }

    /// Draws this scrub period's soft errors from the dedicated flip
    /// stream. Line flips plant latent faults resolved at the next
    /// access, overwrite, or sweep; directory flips resolve immediately
    /// (the entry is probed in place at detection).
    fn plant_flips(&mut self, now: Cycle) {
        let line_prob = self.cfg.faults.flip_line.map(|f| f.prob);
        let dir_prob = self.cfg.faults.flip_dir.map(|f| f.prob);
        let frac = self.cfg.ecc_double_bit_fraction;
        for node in self.cfg.topo.all_gpms() {
            if self.gpm_is_dead(node) {
                continue;
            }
            if let Some(p) = line_prob {
                let hit = match self.flip_rng.as_mut() {
                    Some(r) => r.gen_bool(p),
                    None => false,
                };
                let len = self.gpms[node.index()].l2.len();
                if hit && len > 0 {
                    let n = match self.flip_rng.as_mut() {
                        Some(r) => r.gen_range(0, len as u64) as usize,
                        None => 0,
                    };
                    let picked = self.gpms[node.index()].l2.nth_resident(n).map(|(l, _)| l);
                    if let Some(line) = picked {
                        self.m.integrity.flips_line += 1;
                        match self.cfg.ecc {
                            EccMode::None => {
                                // No detection: the resident copy is
                                // silently wrong from here on.
                                if let Some(meta) = self.gpms[node.index()].l2.get_mut(line) {
                                    meta.version ^= 1 << 40;
                                }
                                self.m.integrity.silent_corruptions += 1;
                            }
                            EccMode::Parity => {
                                self.line_faults
                                    .insert((node.0, line), FlipSeverity::Uncorrectable);
                            }
                            EccMode::SecDed => {
                                let double = match self.flip_rng.as_mut() {
                                    Some(r) => r.gen_bool(frac),
                                    None => false,
                                };
                                let sev = if double {
                                    FlipSeverity::Uncorrectable
                                } else {
                                    FlipSeverity::Correctable
                                };
                                self.line_faults.insert((node.0, line), sev);
                            }
                        }
                    }
                }
            }
            if let Some(p) = dir_prob {
                let hit = match self.flip_rng.as_mut() {
                    Some(r) => r.gen_bool(p),
                    None => false,
                };
                let len = self.gpms[node.index()].dir.len();
                if hit && len > 0 {
                    let n = match self.flip_rng.as_mut() {
                        Some(r) => r.gen_range(0, len as u64) as usize,
                        None => 0,
                    };
                    if let Some(block) = self.gpms[node.index()].dir.nth_resident_block(n) {
                        self.m.integrity.flips_dir += 1;
                        match self.cfg.ecc {
                            EccMode::None => {
                                // An undetected sharer-bit flip: the
                                // directory silently forgets sharers and
                                // later invalidation rounds under-send.
                                if let Some(set) = self.gpms[node.index()].dir.lookup_mut(block) {
                                    set.clear();
                                }
                                self.m.integrity.silent_corruptions += 1;
                            }
                            EccMode::Parity => self.rebuild_dir_entry(now, node, block),
                            EccMode::SecDed => {
                                let double = match self.flip_rng.as_mut() {
                                    Some(r) => r.gen_bool(frac),
                                    None => false,
                                };
                                if double {
                                    self.rebuild_dir_entry(now, node, block);
                                } else {
                                    self.m.integrity.corrected += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Recovers an uncorrectably corrupt directory entry. The sharer
    /// list is unrecoverable, so every survivor's copies of the block's
    /// lines are scrubbed (dirty ones flush first) and the entry is
    /// re-created in conservative sticky-broadcast mode — the same
    /// degraded state the sharer-cap overflow path already exercises.
    fn rebuild_dir_entry(&mut self, now: Cycle, home: GpmId, block: BlockAddr) {
        self.m.integrity.rebuilt_dir_entries += 1;
        for g in self.cfg.topo.all_gpms() {
            if g == home || self.gpm_is_dead(g) {
                continue;
            }
            let mut dirty: Vec<(LineAddr, L2Line)> = Vec::new();
            for line in self.cfg.geometry.lines_of_block(block) {
                if let Some(meta) = self.gpms[g.index()].l2.invalidate(line) {
                    self.m.integrity.scrubbed += 1;
                    if meta.dirty {
                        dirty.push((line, meta));
                    }
                }
            }
            for (line, meta) in dirty {
                self.evicted_l2_line(now, g, line, meta);
            }
        }
        let newly = {
            let Some(set) = self.gpms[home.index()].dir.lookup_mut(block) else {
                return;
            };
            let newly = !set.is_broadcast();
            set.force_broadcast();
            newly
        };
        if newly {
            self.note_broadcast_fallback(home);
        }
    }

    /// Aborts the CTA running on `r` after it consumed a poisoned
    /// response. Mirrors the fail-in-place `abort_cta`: remaining
    /// `SetFlag` ops are salvaged so surviving waiters don't deadlock,
    /// and the SM picks up the next queued CTA. A no-op if the CTA
    /// already aborted through another poisoned response merged behind
    /// the same fill.
    fn abort_poisoned_cta(&mut self, now: Cycle, r: SmRef) {
        let idx = self.sm_index(r);
        let Some(cta) = self.sms[idx].cta.take() else {
            return;
        };
        let pc = self.sms[idx].pc;
        self.m.integrity.aborted_ctas += 1;
        self.ctas_unfinished -= 1;
        let ops = &self.trace.kernels[self.kernel].ctas[cta].ops;
        let flags: Vec<u32> = ops[pc.min(ops.len())..]
            .iter()
            .filter_map(|op| match op {
                TraceOp::SetFlag(f) => Some(*f),
                _ => None,
            })
            .collect();
        for f in flags {
            self.salvage_set_flag(now, f);
        }
        let next = self.gpms[r.gpm.index()].cta_queue.pop_front();
        let s = &mut self.sms[idx];
        s.cta = next;
        s.pc = 0;
        if next.is_some() {
            s.state = SmState::Runnable;
            self.q.push(now, Ev::SmResume(r));
        } else {
            s.state = SmState::Idle;
        }
        self.maybe_kernel_end(now);
    }
}

// ---------- snapshot / restore ----------
//
// A snapshot captures the complete deterministic state of a `Sim` at an
// event boundary: the event queue (with its far list), the fabric (link
// clocks, sequence numbers, fault RNG streams, liveness epochs), all
// memory-system state (caches, directories, DRAM ports, page homes,
// committed versions, latent soft errors), scheduler state (fences,
// flags, MSHRs, CTA queues), every RNG stream, the fault-plan cursor,
// and the accumulated `RunMetrics`. The borrowed `cfg`/`trace` and the
// allocation pools are rebuilt, not serialized; `fatal` and `finished`
// are structurally `None`/`false` at every snapshot point because the
// run-loop hook sits after both checks.
//
// Restore is refusal-based: any shape that disagrees with the live
// configuration (wrong cache geometry, out-of-range GPM/SM/CTA/fence
// index, mis-armed RNG stream) yields a typed `SnapError` and leaves
// the caller free to fall back to an older snapshot or a cold start.

impl SnapshotWrite for FlipSeverity {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            FlipSeverity::Correctable => 0,
            FlipSeverity::Uncorrectable => 1,
        });
    }
}

impl SnapshotRead for FlipSeverity {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(FlipSeverity::Correctable),
            1 => Ok(FlipSeverity::Uncorrectable),
            b => Err(SnapError::Malformed(format!("flip-severity tag {b}"))),
        }
    }
}

impl SnapshotWrite for L2Line {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.version);
        self.dirty.write_snap(w);
    }
}

impl SnapshotRead for L2Line {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(L2Line {
            version: r.get_u64()?,
            dirty: bool::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for SmRef {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.gpm.write_snap(w);
        w.put_u16(self.sm);
    }
}

impl SnapshotRead for SmRef {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SmRef {
            gpm: GpmId::read_snap(r)?,
            sm: r.get_u16()?,
        })
    }
}

impl SnapshotWrite for SmState {
    fn write_snap(&self, w: &mut SnapWriter) {
        match self {
            SmState::Runnable => w.put_u8(0),
            SmState::StalledMem => w.put_u8(1),
            SmState::FenceWait => w.put_u8(2),
            SmState::FlagWait(f) => {
                w.put_u8(3);
                w.put_u32(*f);
            }
            SmState::Idle => w.put_u8(4),
        }
    }
}

impl SnapshotRead for SmState {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(SmState::Runnable),
            1 => Ok(SmState::StalledMem),
            2 => Ok(SmState::FenceWait),
            3 => Ok(SmState::FlagWait(r.get_u32()?)),
            4 => Ok(SmState::Idle),
            b => Err(SnapError::Malformed(format!("sm-state tag {b}"))),
        }
    }
}

impl SnapshotWrite for Sm {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.l1.write_snap(w);
        self.cta.write_snap(w);
        self.pc.write_snap(w);
        w.put_u32(self.outstanding);
        self.state.write_snap(w);
    }
}

impl SnapshotRead for Sm {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Sm {
            l1: Cache::read_snap(r)?,
            cta: Option::read_snap(r)?,
            pc: usize::read_snap(r)?,
            outstanding: r.get_u32()?,
            state: SmState::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for CarveClass {
    fn write_snap(&self, w: &mut SnapWriter) {
        match self {
            CarveClass::Private(g) => {
                w.put_u8(0);
                g.write_snap(w);
            }
            CarveClass::ReadOnly => w.put_u8(1),
            CarveClass::ReadWrite => w.put_u8(2),
        }
    }
}

impl SnapshotRead for CarveClass {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(CarveClass::Private(GpmId::read_snap(r)?)),
            1 => Ok(CarveClass::ReadOnly),
            2 => Ok(CarveClass::ReadWrite),
            b => Err(SnapError::Malformed(format!("carve-class tag {b}"))),
        }
    }
}

impl SnapshotWrite for Gpm {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.l2.write_snap(w);
        self.dir.write_snap(w);
        self.dram.write_snap(w);
        w.put_u64(self.st_pending_gpu);
        w.put_u64(self.st_pending_sys);
        w.put_u64(self.inv_pending_gpu);
        w.put_u64(self.inv_pending_sys);
        self.cta_queue.write_snap(w);
        self.carve.write_snap(w);
        self.inv_floor.write_snap(w);
    }
}

impl SnapshotRead for Gpm {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Gpm {
            l2: Cache::read_snap(r)?,
            dir: Directory::read_snap(r)?,
            dram: Dram::read_snap(r)?,
            st_pending_gpu: r.get_u64()?,
            st_pending_sys: r.get_u64()?,
            inv_pending_gpu: r.get_u64()?,
            inv_pending_sys: r.get_u64()?,
            cta_queue: VecDeque::read_snap(r)?,
            carve: FlatMap::read_snap(r)?,
            inv_floor: FlatMap::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for MemMsg {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.sm.write_snap(w);
        self.line.write_snap(w);
        self.kind.write_snap(w);
        self.scope.write_snap(w);
        w.put_u64(self.version);
        self.issued_at.write_snap(w);
        w.put_u8(self.attempts);
        self.poisoned.write_snap(w);
    }
}

impl SnapshotRead for MemMsg {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemMsg {
            sm: SmRef::read_snap(r)?,
            line: LineAddr::read_snap(r)?,
            kind: AccessKind::read_snap(r)?,
            scope: Scope::read_snap(r)?,
            version: r.get_u64()?,
            issued_at: Cycle::read_snap(r)?,
            attempts: r.get_u8()?,
            poisoned: bool::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for StoreMsg {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.origin.write_snap(w);
        self.line.write_snap(w);
        w.put_u64(self.version);
        self.gpu_ordered.write_snap(w);
        self.duplicate.write_snap(w);
    }
}

impl SnapshotRead for StoreMsg {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(StoreMsg {
            origin: GpmId::read_snap(r)?,
            line: LineAddr::read_snap(r)?,
            version: r.get_u64()?,
            gpu_ordered: bool::read_snap(r)?,
            duplicate: bool::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for InvCause {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            InvCause::Store => 0,
            InvCause::Eviction => 1,
        });
    }
}

impl SnapshotRead for InvCause {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(InvCause::Store),
            1 => Ok(InvCause::Eviction),
            b => Err(SnapError::Malformed(format!("inv-cause tag {b}"))),
        }
    }
}

impl SnapshotWrite for InvMsg {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.block.write_snap(w);
        self.cause.write_snap(w);
        self.causer.write_snap(w);
        self.counted.write_snap(w);
        self.from_sys.write_snap(w);
        self.target.write_snap(w);
        w.put_u64(self.version);
    }
}

impl SnapshotRead for InvMsg {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(InvMsg {
            block: BlockAddr::read_snap(r)?,
            cause: InvCause::read_snap(r)?,
            causer: GpmId::read_snap(r)?,
            counted: bool::read_snap(r)?,
            from_sys: bool::read_snap(r)?,
            target: GpmId::read_snap(r)?,
            version: r.get_u64()?,
        })
    }
}

impl SnapshotWrite for Fence {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.gpm.write_snap(w);
        self.scope.write_snap(w);
        self.sm.write_snap(w);
        self.acks_done.write_snap(w);
        self.completed.write_snap(w);
    }
}

impl SnapshotRead for Fence {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Fence {
            gpm: GpmId::read_snap(r)?,
            scope: Scope::read_snap(r)?,
            sm: Option::read_snap(r)?,
            acks_done: bool::read_snap(r)?,
            completed: bool::read_snap(r)?,
        })
    }
}

impl SnapshotWrite for Ev {
    fn write_snap(&self, w: &mut SnapWriter) {
        match self {
            Ev::SmResume(r) => {
                w.put_u8(0);
                r.write_snap(w);
            }
            Ev::Req { msg, node } => {
                w.put_u8(1);
                msg.write_snap(w);
                node.write_snap(w);
            }
            Ev::Store { msg, node } => {
                w.put_u8(2);
                msg.write_snap(w);
                node.write_snap(w);
            }
            Ev::RespGpuHome { msg, node } => {
                w.put_u8(3);
                msg.write_snap(w);
                node.write_snap(w);
            }
            Ev::Resp { msg } => {
                w.put_u8(4);
                msg.write_snap(w);
            }
            Ev::Inv(inv) => {
                w.put_u8(5);
                inv.write_snap(w);
            }
            Ev::Downgrade {
                block,
                target,
                evictor,
            } => {
                w.put_u8(6);
                block.write_snap(w);
                target.write_snap(w);
                evictor.write_snap(w);
            }
            Ev::FenceAcks(id) => {
                w.put_u8(7);
                id.write_snap(w);
            }
            Ev::KernelStart(k) => {
                w.put_u8(8);
                k.write_snap(w);
            }
            Ev::Scrub => w.put_u8(9),
        }
    }
}

impl SnapshotRead for Ev {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Ev::SmResume(SmRef::read_snap(r)?)),
            1 => Ok(Ev::Req {
                msg: MemMsg::read_snap(r)?,
                node: GpmId::read_snap(r)?,
            }),
            2 => Ok(Ev::Store {
                msg: StoreMsg::read_snap(r)?,
                node: GpmId::read_snap(r)?,
            }),
            3 => Ok(Ev::RespGpuHome {
                msg: MemMsg::read_snap(r)?,
                node: GpmId::read_snap(r)?,
            }),
            4 => Ok(Ev::Resp {
                msg: MemMsg::read_snap(r)?,
            }),
            5 => Ok(Ev::Inv(InvMsg::read_snap(r)?)),
            6 => Ok(Ev::Downgrade {
                block: BlockAddr::read_snap(r)?,
                target: GpmId::read_snap(r)?,
                evictor: GpmId::read_snap(r)?,
            }),
            7 => Ok(Ev::FenceAcks(usize::read_snap(r)?)),
            8 => Ok(Ev::KernelStart(usize::read_snap(r)?)),
            9 => Ok(Ev::Scrub),
            b => Err(SnapError::Malformed(format!("event tag {b}"))),
        }
    }
}

/// How a preemptible run captures and resumes snapshots.
///
/// Passed to [`Engine::try_run_preemptible`]. The store at `path` keeps
/// the last two snapshots double-buffered (`<path>.a` / `<path>.b`);
/// `identity` must be a stable hash of everything that defines the
/// cell (workload, protocol, scale, seed, fault plan) so a snapshot
/// from a different cell is refused rather than silently resumed.
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    /// Base path of the double-buffered snapshot store.
    pub path: std::path::PathBuf,
    /// Identity hash of the producing cell; snapshots whose header
    /// carries a different identity are refused as stale.
    pub identity: u64,
    /// Cycles between periodic snapshots (0 disables periodic capture).
    pub interval: u64,
    /// Extra one-shot capture points: a snapshot is taken at the first
    /// event boundary at or past each cycle. Used by the kill-matrix
    /// tests to pin captures at arbitrary mid-run points.
    pub snap_at: Vec<u64>,
    /// Test hook: abort the process (no unwinding, no cleanup) at the
    /// first event boundary at or past this cycle, after any snapshot
    /// due at that boundary has been written. Simulates preemption.
    pub kill_at: Option<u64>,
}

impl SnapshotPolicy {
    /// Periodic capture every `interval` cycles into `path`.
    pub fn periodic(path: impl Into<std::path::PathBuf>, identity: u64, interval: u64) -> Self {
        SnapshotPolicy {
            path: path.into(),
            identity,
            interval,
            snap_at: Vec::new(),
            kill_at: None,
        }
    }
}

/// What the snapshot machinery did during one preemptible run.
#[derive(Debug, Default)]
pub struct SnapshotReport {
    /// Cycle of the snapshot the run resumed from, or `None` for a
    /// cold start.
    pub resumed_from: Option<u64>,
    /// Snapshots written during this run.
    pub written: u64,
    /// Snapshot writes that failed (the run continues regardless; a
    /// snapshot is an optimization, never a correctness dependency).
    pub write_errors: u64,
    /// Candidate snapshots refused during resume, newest first, with
    /// the typed reason for each refusal.
    pub rejected: Vec<(std::path::PathBuf, SnapError)>,
}

/// Cold-path snapshot state, boxed off the `Sim` hot path.
struct SnapCtl {
    store: SnapshotStore,
    identity: u64,
    interval: u64,
    /// Next periodic capture cycle (`u64::MAX` when periodic capture
    /// is off).
    periodic_next: u64,
    /// One-shot capture cycles, ascending.
    snap_at: Vec<u64>,
    at_idx: usize,
    kill_at: Option<u64>,
    written: u64,
    write_errors: u64,
}

impl SnapCtl {
    /// Earliest cycle at which the tick has any work.
    fn next_trigger(&self) -> u64 {
        let mut n = self.periodic_next;
        if let Some(&a) = self.snap_at.get(self.at_idx) {
            n = n.min(a);
        }
        if let Some(k) = self.kill_at {
            n = n.min(k);
        }
        n
    }
}

impl Engine {
    /// Like [`Engine::try_run`], but resumes from the most recent valid
    /// snapshot in `policy.path` (if any) and captures new snapshots as
    /// the policy directs.
    ///
    /// Resume walks a fallback ladder: candidate snapshots are tried
    /// newest-first, and any refusal — truncation, checksum mismatch,
    /// version or identity mismatch, or a shape that disagrees with
    /// this engine's configuration — drops to the next rung, ending at
    /// a cold start from cycle zero. Refusals are reported, never
    /// panicked on. A resumed run is bit-identical to an uninterrupted
    /// one: same `state_digest`, same `RunMetrics`.
    pub fn try_run_preemptible(
        &self,
        trace: &WorkloadTrace,
        policy: &SnapshotPolicy,
    ) -> Result<(RunMetrics, SnapshotReport), SimError> {
        let store = SnapshotStore::new(&policy.path);
        let mut report = SnapshotReport::default();
        // Every existing slot is a candidate; files whose header does
        // not even probe (bad magic, wrong version, truncated header)
        // sort last and surface their typed refusal through the load
        // below rather than vanishing silently.
        let mut cands: Vec<(u64, std::path::PathBuf)> = store
            .slots()
            .into_iter()
            .filter(|p| p.exists())
            .map(|p| (Snapshot::probe(&p).map_or(0, |(_, cycle)| cycle), p))
            .collect();
        cands.sort_by_key(|c| std::cmp::Reverse(c.0));
        let mut sim = Sim::new(&self.cfg, trace);
        for (cycle, path) in cands {
            let attempt = Snapshot::load(&path, Some(policy.identity)).and_then(|s| {
                let mut cand = Sim::new(&self.cfg, trace);
                cand.restore_snapshot(&s)?;
                Ok(cand)
            });
            match attempt {
                Ok(restored) => {
                    report.resumed_from = Some(cycle);
                    sim = restored;
                    break;
                }
                Err(e) => report.rejected.push((path, e)),
            }
        }
        sim.arm_snapshots(store, policy);
        let run = sim.run();
        if let Some(ctl) = sim.snap.take() {
            report.written = ctl.written;
            report.write_errors = ctl.write_errors;
        }
        run.map(|m| (m, report))
    }
}

impl<'t> Sim<'t> {
    /// Installs the snapshot policy on a (possibly restored) sim.
    fn arm_snapshots(&mut self, store: SnapshotStore, policy: &SnapshotPolicy) {
        let mut snap_at = policy.snap_at.clone();
        snap_at.sort_unstable();
        snap_at.dedup();
        let base = self.q.now().0;
        // Capture points at or before the resume cycle were already
        // taken by the interrupted attempt.
        let at_idx = snap_at.partition_point(|&c| c <= base);
        let ctl = SnapCtl {
            store,
            identity: policy.identity,
            interval: policy.interval,
            periodic_next: if policy.interval == 0 {
                u64::MAX
            } else {
                base.saturating_add(policy.interval)
            },
            snap_at,
            at_idx,
            kill_at: policy.kill_at,
            written: 0,
            write_errors: 0,
        };
        self.snap_next = ctl.next_trigger();
        self.snap = Some(Box::new(ctl));
    }

    /// Cold half of the snapshot hook: takes due captures, honors the
    /// test-only kill hook, and re-arms `snap_next`.
    #[inline(never)]
    fn snapshot_tick(&mut self, now: Cycle) {
        let Some(mut ctl) = self.snap.take() else {
            self.snap_next = u64::MAX;
            return;
        };
        let mut due = false;
        if now.0 >= ctl.periodic_next {
            due = true;
            ctl.periodic_next = now.0.saturating_add(ctl.interval.max(1));
        }
        while ctl.at_idx < ctl.snap_at.len() && ctl.snap_at[ctl.at_idx] <= now.0 {
            due = true;
            ctl.at_idx += 1;
        }
        if due {
            let snap = self.write_snapshot(ctl.identity);
            match ctl.store.save(&snap) {
                Ok(_) => ctl.written += 1,
                // A failed write never aborts the run: the store still
                // holds the previous snapshot, and losing a capture
                // only costs resume granularity.
                Err(_) => ctl.write_errors += 1,
            }
        }
        if ctl.kill_at.is_some_and(|k| now.0 >= k) {
            // Simulated preemption: no unwinding, no destructors, no
            // flushing — exactly what SIGKILL leaves behind.
            std::process::abort();
        }
        self.snap_next = ctl.next_trigger();
        self.snap = Some(ctl);
    }

    /// Serializes the complete simulation state at the current event
    /// boundary. Read-only: taking a snapshot must not perturb the run,
    /// or resumed and uninterrupted runs would diverge.
    fn write_snapshot(&self, identity: u64) -> Snapshot {
        let now = self.q.now();
        let mut snap = Snapshot::new(identity, now.0);

        let mut w = SnapWriter::new();
        self.q.write_snap(&mut w);
        snap.add_section("queue", w);

        let mut w = SnapWriter::new();
        self.fabric.write_snap(&mut w);
        snap.add_section("fabric", w);

        let mut w = SnapWriter::new();
        self.pages.write_snap(&mut w);
        self.versions.write_snap(&mut w);
        self.committed.write_snap(&mut w);
        self.touch_map.write_snap(&mut w);
        self.line_faults.write_snap(&mut w);
        snap.add_section("memory", w);

        let mut w = SnapWriter::new();
        self.gpms.write_snap(&mut w);
        snap.add_section("gpms", w);

        let mut w = SnapWriter::new();
        self.sms.write_snap(&mut w);
        snap.add_section("sms", w);

        let mut w = SnapWriter::new();
        self.fences.write_snap(&mut w);
        self.active_fences.write_snap(&mut w);
        self.flags.write_snap(&mut w);
        self.flag_waiters.write_snap(&mut w);
        self.mshr.write_snap(&mut w);
        self.kernel.write_snap(&mut w);
        w.put_u64(self.ctas_unfinished);
        w.put_u64(self.loads_inflight);
        w.put_u32(self.kernel_fences_left);
        self.draining.write_snap(&mut w);
        self.rng.write_snap(&mut w);
        self.flip_rng.write_snap(&mut w);
        w.put_u64(self.store_seq);
        w.put_u64(self.inv_seq);
        self.perm_next.write_snap(&mut w);
        w.put_u64(self.dead_gpms);
        self.reconfigured.write_snap(&mut w);
        self.watchdog.write_snap(&mut w);
        snap.add_section("sched", w);

        let mut w = SnapWriter::new();
        self.m.write_snap(&mut w);
        snap.add_section("metrics", w);

        snap
    }

    /// Refuses a section with trailing bytes (a length-smuggling or
    /// layout-drift symptom the per-field reads cannot see).
    fn check_exhausted(r: &SnapReader<'_>, name: &str) -> Result<(), SnapError> {
        if r.is_exhausted() {
            Ok(())
        } else {
            Err(SnapError::Malformed(format!(
                "section '{name}' has {} trailing bytes",
                r.remaining()
            )))
        }
    }

    /// Overwrites this freshly constructed sim's state from `snap`.
    ///
    /// On any refusal the sim is in an unspecified partial state and
    /// must be discarded; [`Engine::try_run_preemptible`] constructs a
    /// fresh `Sim` per ladder rung for exactly that reason.
    fn restore_snapshot(&mut self, snap: &Snapshot) -> Result<(), SnapError> {
        let mut r = snap.section("queue")?;
        let q: EventQueue<Ev> = EventQueue::read_snap(&mut r)?;
        Self::check_exhausted(&r, "queue")?;
        if q.now().0 != snap.cycle {
            return Err(SnapError::Malformed(format!(
                "header cycle {} disagrees with queue position {}",
                snap.cycle,
                q.now()
            )));
        }
        self.q = q;

        let mut r = snap.section("fabric")?;
        self.fabric.restore_snap_state(&mut r)?;
        Self::check_exhausted(&r, "fabric")?;

        let mut r = snap.section("memory")?;
        self.pages = PageMap::read_snap(&mut r)?;
        self.versions = VersionStore::read_snap(&mut r)?;
        self.committed = FlatMap::read_snap(&mut r)?;
        self.touch_map = FlatMap::read_snap(&mut r)?;
        self.line_faults = FlatMap::read_snap(&mut r)?;
        Self::check_exhausted(&r, "memory")?;

        let mut r = snap.section("gpms")?;
        self.gpms = Vec::read_snap(&mut r)?;
        Self::check_exhausted(&r, "gpms")?;

        let mut r = snap.section("sms")?;
        self.sms = Vec::read_snap(&mut r)?;
        Self::check_exhausted(&r, "sms")?;

        let mut r = snap.section("sched")?;
        self.fences = Vec::read_snap(&mut r)?;
        self.active_fences = Vec::read_snap(&mut r)?;
        self.flags = FlatMap::read_snap(&mut r)?;
        self.flag_waiters = FlatMap::read_snap(&mut r)?;
        self.mshr = FlatMap::read_snap(&mut r)?;
        self.kernel = usize::read_snap(&mut r)?;
        self.ctas_unfinished = r.get_u64()?;
        self.loads_inflight = r.get_u64()?;
        self.kernel_fences_left = r.get_u32()?;
        self.draining = bool::read_snap(&mut r)?;
        self.rng = Rng::read_snap(&mut r)?;
        self.flip_rng = Option::read_snap(&mut r)?;
        self.store_seq = r.get_u64()?;
        self.inv_seq = r.get_u64()?;
        self.perm_next = usize::read_snap(&mut r)?;
        self.dead_gpms = r.get_u64()?;
        self.reconfigured = bool::read_snap(&mut r)?;
        self.watchdog = ProgressWatchdog::read_snap(&mut r)?;
        Self::check_exhausted(&r, "sched")?;

        let mut r = snap.section("metrics")?;
        self.m = RunMetrics::read_snap(&mut r)?;
        Self::check_exhausted(&r, "metrics")?;

        self.validate_restored()?;
        self.resumed = true;
        Ok(())
    }

    /// Cross-field validation of restored state against the live
    /// configuration and trace: everything the engine later uses as an
    /// unchecked index must be proven in range here, so a refused
    /// snapshot can never become a panic mid-run.
    fn validate_restored(&self) -> Result<(), SnapError> {
        let bad = |what: String| Err(SnapError::Malformed(what));
        let topo = self.cfg.topo;
        let n_gpms = topo.num_gpms() as usize;
        let sms_per_gpm = self.cfg.sms_per_gpm;
        if self.gpms.len() != n_gpms {
            return bad(format!(
                "{} GPMs in snapshot, topology has {n_gpms}",
                self.gpms.len()
            ));
        }
        if self.sms.len() != self.cfg.total_sms() as usize {
            return bad(format!(
                "{} SMs in snapshot, configuration has {}",
                self.sms.len(),
                self.cfg.total_sms()
            ));
        }
        for (i, g) in self.gpms.iter().enumerate() {
            if g.l2.config() != self.cfg.l2 {
                return bad(format!("gpm{i} L2 geometry differs from configuration"));
            }
            if g.dir.config() != self.cfg.dir {
                return bad(format!(
                    "gpm{i} directory geometry differs from configuration"
                ));
            }
        }
        for (i, s) in self.sms.iter().enumerate() {
            if s.l1.config() != self.cfg.l1 {
                return bad(format!("sm{i} L1 geometry differs from configuration"));
            }
        }
        if self.kernel >= self.trace.num_kernels() {
            return bad(format!(
                "kernel index {} out of range ({} kernels)",
                self.kernel,
                self.trace.num_kernels()
            ));
        }
        let n_ctas = self.trace.kernels[self.kernel].num_ctas();
        for (i, s) in self.sms.iter().enumerate() {
            if let Some(c) = s.cta {
                if c >= n_ctas {
                    return bad(format!("sm{i} runs CTA {c}, kernel has {n_ctas}"));
                }
            }
        }
        let sm_ok = |r: SmRef| r.gpm.index() < n_gpms && r.sm < sms_per_gpm;
        for (i, g) in self.gpms.iter().enumerate() {
            for &c in &g.cta_queue {
                if c >= n_ctas {
                    return bad(format!("gpm{i} queues CTA {c}, kernel has {n_ctas}"));
                }
            }
        }
        for f in &self.fences {
            if f.gpm.index() >= n_gpms || f.sm.is_some_and(|r| !sm_ok(r)) {
                return bad("fence names an out-of-range GPM or SM".into());
            }
        }
        for &i in &self.active_fences {
            if i >= self.fences.len() {
                return bad(format!(
                    "active fence {i} out of range ({} fences)",
                    self.fences.len()
                ));
            }
        }
        for (&(node, _), waiters) in self.mshr.iter() {
            if node as usize >= n_gpms || waiters.iter().any(|m| !sm_ok(m.sm)) {
                return bad("MSHR entry names an out-of-range GPM or SM".into());
            }
        }
        for (_, waiters) in self.flag_waiters.iter() {
            if waiters.iter().any(|&r| !sm_ok(r)) {
                return bad("flag waiter names an out-of-range SM".into());
            }
        }
        for (&(node, _), _) in self.line_faults.iter() {
            if node as usize >= n_gpms {
                return bad(format!("latent fault on out-of-range gpm{node}"));
            }
        }
        if self.perm_next > self.perm_faults.len() {
            return bad(format!(
                "fault cursor {} past plan length {}",
                self.perm_next,
                self.perm_faults.len()
            ));
        }
        if n_gpms < 64 && self.dead_gpms >> n_gpms != 0 {
            return bad(format!(
                "dead-GPM mask {:#x} exceeds topology of {n_gpms}",
                self.dead_gpms
            ));
        }
        let flips_armed = self.cfg.faults.flip_line.is_some() || self.cfg.faults.flip_dir.is_some();
        if self.flip_rng.is_some() != flips_armed {
            return bad("soft-error stream arming disagrees with the fault plan".into());
        }
        let fences_len = self.fences.len();
        let num_kernels = self.trace.num_kernels();
        let mut ev_err: Option<String> = None;
        self.q.for_each_pending(|_, e| {
            if ev_err.is_some() {
                return;
            }
            let ok = match e {
                Ev::SmResume(r) => sm_ok(*r),
                Ev::Req { msg, node } | Ev::RespGpuHome { msg, node } => {
                    sm_ok(msg.sm) && node.index() < n_gpms
                }
                Ev::Resp { msg } => sm_ok(msg.sm),
                Ev::Store { msg, node } => msg.origin.index() < n_gpms && node.index() < n_gpms,
                Ev::Inv(inv) => inv.causer.index() < n_gpms && inv.target.index() < n_gpms,
                Ev::Downgrade {
                    target, evictor, ..
                } => target.index() < n_gpms && evictor.index() < n_gpms,
                Ev::FenceAcks(id) => *id < fences_len,
                Ev::KernelStart(k) => *k < num_kernels,
                Ev::Scrub => true,
            };
            if !ok {
                ev_err = Some("pending event references out-of-range state".to_string());
            }
        });
        if let Some(e) = ev_err {
            return bad(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmg_mem::Addr;
    use hmg_protocol::{Access, Cta, Kernel, WorkloadTrace};

    /// Builds a kernel with one CTA per GPM of the small_test topology
    /// (2 GPUs x 2 GPMs = 4 GPMs), so CTA `i` lands on GPM `i` under
    /// contiguous scheduling.
    fn kernel_per_gpm(mut ops: Vec<Vec<TraceOp>>) -> Kernel {
        ops.resize(4, Vec::new());
        Kernel::new(ops.into_iter().map(Cta::new).collect())
    }

    fn ld(addr: u64) -> TraceOp {
        TraceOp::Access(Access::load(Addr(addr)))
    }

    fn st(addr: u64) -> TraceOp {
        TraceOp::Access(Access::store(Addr(addr)))
    }

    fn run(protocol: ProtocolKind, trace: &WorkloadTrace) -> RunMetrics {
        Engine::new(EngineConfig::small_test(protocol)).run(trace)
    }

    fn run_probed(protocol: ProtocolKind, trace: &WorkloadTrace, line: u64) -> RunMetrics {
        let mut cfg = EngineConfig::small_test(protocol);
        cfg.probe_line = Some(line);
        Engine::new(cfg).run(trace)
    }

    #[test]
    fn empty_trace_completes_instantly() {
        let m = run(ProtocolKind::Hmg, &WorkloadTrace::new("empty", vec![]));
        assert_eq!(m.total_cycles, Cycle::ZERO);
        assert_eq!(m.loads, 0);
    }

    #[test]
    fn repeated_load_hits_l1() {
        // The delay lets the first fill land before the reloads issue.
        let trace = WorkloadTrace::new(
            "t",
            vec![kernel_per_gpm(vec![vec![
                ld(0),
                TraceOp::Delay(100_000),
                ld(0),
                ld(0),
            ]])],
        );
        let m = run(ProtocolKind::Hmg, &trace);
        assert_eq!(m.loads, 3);
        assert_eq!(m.l1_hits, 2);
        assert_eq!(m.dram_accesses, 1);
    }

    #[test]
    fn overlapping_misses_exploit_memory_level_parallelism() {
        // Without a delay, back-to-back loads of one line all miss and
        // overlap — the engine models MLP rather than serializing.
        let trace = WorkloadTrace::new("t", vec![kernel_per_gpm(vec![vec![ld(0), ld(0), ld(0)]])]);
        let m = run(ProtocolKind::Hmg, &trace);
        assert_eq!(m.loads, 3);
        assert_eq!(m.l1_hits, 0, "fills cannot land before the next issue");
    }

    #[test]
    fn first_touch_homes_line_at_toucher() {
        // GPM0 touches line 0 first (kernel 0); GPM3's load in kernel 1
        // must therefore cross the inter-GPU network.
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![], vec![ld(0)]]),
            ],
        );
        let m = run(ProtocolKind::Hmg, &trace);
        assert!(
            m.fabric.inter_bytes(hmg_interconnect::MsgClass::Request) > 0,
            "GPM3's load must cross GPUs"
        );
    }

    #[test]
    fn baseline_never_caches_remote_gpu_lines() {
        // Line homed at GPM0 (GPU0); GPM2 (GPU1) loads it twice in one
        // kernel. Without peer caching both loads travel to the home.
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![
                    vec![],
                    vec![],
                    vec![ld(0), TraceOp::Delay(100_000), ld(0)],
                    vec![],
                ]),
            ],
        );
        let m = run(ProtocolKind::NoPeerCaching, &trace);
        // The second remote load cannot hit L1 or the local L2.
        assert_eq!(m.l1_hits, 0);
        assert_eq!(m.local_l2_hits, 0);
        assert!(m.sys_home_hits >= 1, "second load serves at the home");

        let m2 = run(ProtocolKind::Hmg, &trace);
        assert!(m2.l1_hits >= 1, "HMG caches the remote line locally");
    }

    #[test]
    fn hmg_store_invalidates_remote_sharer() {
        // Kernel 0: GPM0 homes line 0. Kernel 1: GPM2 (GPU1) caches it.
        // Kernel 2: GPM0 stores -> the GPU1 copy must be invalidated.
        // Kernel 3: GPM2 reloads and must observe version 2.
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]), // version 1, homes at GPM0
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0), ld(0)], vec![]]),
                kernel_per_gpm(vec![vec![st(0)]]), // version 2
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
            ],
        );
        let m = run_probed(ProtocolKind::Hmg, &trace, 0);
        assert!(m.invs_from_stores >= 1, "store must invalidate the sharer");
        assert!(m.lines_invalidated_by_stores >= 1);
        let last = m.probe.last().expect("final load observed");
        assert_eq!(last.1, 2, "consumer must see the second store");
    }

    #[test]
    fn nhcc_store_invalidates_remote_sharer_too() {
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![ld(0), ld(0)], vec![], vec![]]),
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![ld(0)], vec![], vec![]]),
            ],
        );
        let m = run_probed(ProtocolKind::Nhcc, &trace, 0);
        assert!(m.invs_from_stores >= 1);
        assert_eq!(m.probe.last().unwrap().1, 2);
    }

    #[test]
    fn software_coherence_sees_fresh_data_after_kernel_boundary() {
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
            ],
        );
        for p in [
            ProtocolKind::SwNonHier,
            ProtocolKind::SwHier,
            ProtocolKind::NoPeerCaching,
        ] {
            let m = run_probed(p, &trace, 0);
            assert_eq!(
                m.probe.last().unwrap().1,
                2,
                "{p} must see the second store after the kernel boundary"
            );
            assert_eq!(m.invs_from_stores, 0, "{p} sends no hardware invs");
        }
    }

    #[test]
    fn sw_protocols_bulk_invalidate_at_kernel_start() {
        // Two kernels, same GPM reloading its own remote-homed line: SW
        // coherence refetches after the boundary, HW does not.
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]), // homes at GPM0
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
            ],
        );
        let sw = run(ProtocolKind::SwNonHier, &trace);
        assert!(sw.lines_bulk_invalidated > 0);
        // HMG keeps the line across the boundary: the kernel-2 load is
        // served inside GPU1 (local L2 or GPU home) instead of crossing
        // back to GPU0.
        let hw = run(ProtocolKind::Hmg, &trace);
        assert!(
            hw.l1_hits + hw.local_l2_hits + hw.gpu_home_hits >= 1,
            "HMG retains remote lines across kernel boundaries"
        );
    }

    #[test]
    fn gpu_home_serves_second_module_of_same_gpu() {
        // Line homed on GPU0. Both GPMs of GPU1 load it; under HMG the
        // second GPM's request should be served inside GPU1.
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![ld(0)]]),
            ],
        );
        let m = run(ProtocolKind::Hmg, &trace);
        let flat = run(ProtocolKind::Nhcc, &trace);
        assert!(
            m.fabric.inter_bytes(hmg_interconnect::MsgClass::Request)
                <= flat.fabric.inter_bytes(hmg_interconnect::MsgClass::Request),
            "hierarchical routing must not increase inter-GPU requests"
        );
    }

    #[test]
    fn flags_synchronize_producer_and_consumer() {
        // GPM0 stores then releases and sets a flag; GPM2 waits, acquires
        // and loads: it must observe the store.
        let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(7)];
        let consumer = vec![
            TraceOp::WaitFlag { flag: 7, count: 1 },
            TraceOp::Acquire(Scope::Sys),
            ld(0),
        ];
        let trace = WorkloadTrace::new(
            "mp",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]), // home line at GPM0
                kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
            ],
        );
        for p in [
            ProtocolKind::Hmg,
            ProtocolKind::Nhcc,
            ProtocolKind::SwNonHier,
            ProtocolKind::SwHier,
            ProtocolKind::NoPeerCaching,
        ] {
            let m = run_probed(p, &trace, 0);
            let last = m.probe.last().expect("consumer load observed");
            assert_eq!(last.1, 1, "{p}: message passing must be visible");
            assert!(m.fences >= 1);
        }
    }

    #[test]
    fn gpu_scoped_sync_within_one_gpu() {
        // Producer GPM0 and consumer GPM1 are on the same GPU; .gpu-scoped
        // release/acquire must be sufficient.
        let producer = vec![st(0), TraceOp::Release(Scope::Gpu), TraceOp::SetFlag(1)];
        let consumer = vec![
            TraceOp::WaitFlag { flag: 1, count: 1 },
            TraceOp::Acquire(Scope::Gpu),
            TraceOp::Access(Access::new(Addr(0), AccessKind::Load, Scope::Gpu)),
        ];
        let trace = WorkloadTrace::new(
            "mp-gpu",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![producer, consumer, vec![], vec![]]),
            ],
        );
        for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc, ProtocolKind::SwHier] {
            let m = run_probed(p, &trace, 0);
            assert_eq!(m.probe.last().unwrap().1, 1, "{p}");
        }
    }

    #[test]
    fn atomics_commit_and_respond() {
        let trace = WorkloadTrace::new(
            "atom",
            vec![kernel_per_gpm(vec![
                vec![TraceOp::Access(Access::atomic(Addr(0), Scope::Gpu))],
                vec![TraceOp::Access(Access::atomic(Addr(0), Scope::Sys))],
            ])],
        );
        for p in ProtocolKind::ALL {
            let m = run(p, &trace);
            assert_eq!(m.stores, 2, "{p}: atomics count as stores");
            assert_eq!(m.loads, 2, "{p}: atomics count as loads");
        }
    }

    #[test]
    fn ideal_is_fastest_or_equal_on_shared_reload() {
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0), ld(128), ld(256)]]),
                kernel_per_gpm(vec![
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                ]),
                kernel_per_gpm(vec![
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                    vec![ld(0), ld(128)],
                ]),
            ],
        );
        let ideal = run(ProtocolKind::Ideal, &trace);
        for p in ProtocolKind::ALL {
            let m = run(p, &trace);
            // Ideal is an upper bound on *caching*; on tiny traces its
            // hierarchical routing can cost a percent or two against a
            // flat protocol, so allow a small tolerance.
            assert!(
                ideal.total_cycles.as_u64() as f64 <= m.total_cycles.as_u64() as f64 * 1.05,
                "{p}: ideal {} far exceeds {}",
                ideal.total_cycles,
                m.total_cycles
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![
                    vec![ld(0), st(128), ld(256), ld(0)],
                    vec![ld(0), ld(512)],
                    vec![st(0), ld(640)],
                    vec![ld(128)],
                ]),
                kernel_per_gpm(vec![
                    vec![ld(0)],
                    vec![ld(128)],
                    vec![ld(256)],
                    vec![ld(512)],
                ]),
            ],
        );
        let a = Engine::new(EngineConfig::small_test(ProtocolKind::Hmg)).run(&trace);
        let b = Engine::new(EngineConfig::small_test(ProtocolKind::Hmg)).run(&trace);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.fabric.inter_bytes(MsgClass::Data),
            b.fabric.inter_bytes(MsgClass::Data)
        );
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn unsatisfiable_wait_flag_panics() {
        let trace = WorkloadTrace::new(
            "dead",
            vec![kernel_per_gpm(vec![vec![TraceOp::WaitFlag {
                flag: 99,
                count: 1,
            }]])],
        );
        run(ProtocolKind::Hmg, &trace);
    }

    #[test]
    fn delay_advances_time() {
        let base = run(
            ProtocolKind::Hmg,
            &WorkloadTrace::new("a", vec![kernel_per_gpm(vec![vec![ld(0)]])]),
        );
        let delayed = run(
            ProtocolKind::Hmg,
            &WorkloadTrace::new(
                "b",
                vec![kernel_per_gpm(vec![vec![TraceOp::Delay(100_000), ld(0)]])],
            ),
        );
        assert!(delayed.total_cycles.as_u64() >= base.total_cycles.as_u64() + 100_000);
    }

    #[test]
    fn peer_redundancy_tracks_shared_remote_lines() {
        // GPMs 2 and 3 (GPU1) both load a GPU0-homed line.
        let mut cfg = EngineConfig::small_test(ProtocolKind::NoPeerCaching);
        cfg.track_peer_redundancy = true;
        let trace = WorkloadTrace::new(
            "t",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![ld(0)]]),
            ],
        );
        let m = Engine::new(cfg).run(&trace);
        assert_eq!(m.inter_gpu_loads, 2);
        assert!(
            m.inter_gpu_loads_peer_redundant >= 1,
            "the second GPM's load is redundant"
        );
        assert!(m.peer_redundancy().unwrap() >= 0.5);
    }

    #[test]
    fn writeback_coalesces_repeated_stores() {
        // 24 rewrites of a remote-homed line: write-through crosses the
        // fabric 24 times, write-back flushes once at the kernel boundary.
        let ops: Vec<TraceOp> = (0..24).map(|_| st(0)).collect();
        let trace = WorkloadTrace::new(
            "wb",
            vec![
                // Home line 0 at GPM2 first.
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
                kernel_per_gpm(vec![ops]),
            ],
        );
        let run_policy = |policy| {
            let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
            cfg.l2_write_policy = policy;
            Engine::new(cfg).run(&trace)
        };
        let wt = run_policy(crate::config::WritePolicy::WriteThrough);
        let wb = run_policy(crate::config::WritePolicy::WriteBack);
        assert_eq!(wt.writebacks, 0);
        assert!(wb.writebacks >= 1);
        let store_bytes = |m: &RunMetrics| m.fabric.total_bytes(MsgClass::StoreData);
        assert!(
            store_bytes(&wb) < store_bytes(&wt),
            "write-back must coalesce store traffic: wb={} wt={}",
            store_bytes(&wb),
            store_bytes(&wt)
        );
    }

    #[test]
    fn writeback_preserves_synchronized_visibility() {
        // The mp-with-flags litmus under the write-back policy: the
        // release flush must publish the dirty line before the flag.
        let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(4)];
        let consumer = vec![
            TraceOp::WaitFlag { flag: 4, count: 1 },
            TraceOp::Acquire(Scope::Sys),
            ld(0),
        ];
        let trace = WorkloadTrace::new(
            "wb-mp",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
            ],
        );
        for p in [
            ProtocolKind::Hmg,
            ProtocolKind::Nhcc,
            ProtocolKind::SwHier,
            ProtocolKind::SwNonHier,
        ] {
            let mut cfg = EngineConfig::small_test(p);
            cfg.l2_write_policy = crate::config::WritePolicy::WriteBack;
            cfg.probe_line = Some(0);
            let m = Engine::new(cfg).run(&trace);
            assert_eq!(m.probe.last().unwrap().1, 1, "{p} under write-back");
        }
    }

    #[test]
    fn writeback_publishes_across_kernel_boundary() {
        let trace = WorkloadTrace::new(
            "wb-kernel",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
            ],
        );
        for p in [ProtocolKind::Hmg, ProtocolKind::SwNonHier] {
            let mut cfg = EngineConfig::small_test(p);
            cfg.l2_write_policy = crate::config::WritePolicy::WriteBack;
            cfg.probe_line = Some(0);
            let m = Engine::new(cfg).run(&trace);
            assert_eq!(m.probe.last().unwrap().1, 1, "{p}");
        }
    }

    #[test]
    fn downgrades_reduce_eviction_invalidations() {
        // Tiny L2 at the reader forces clean evictions of remote lines;
        // with downgrades on, the home stops tracking the evictor and
        // sends fewer spurious invalidations later.
        let homing: Vec<TraceOp> = (0..64u64).map(|i| ld(i * 512)).collect();
        let reading: Vec<TraceOp> = (0..64u64)
            .flat_map(|i| [ld(i * 512), TraceOp::Delay(500)])
            .collect();
        let writing: Vec<TraceOp> = (0..64u64).map(|i| st(i * 512)).collect();
        let trace = WorkloadTrace::new(
            "downgrade",
            vec![
                kernel_per_gpm(vec![homing]),
                kernel_per_gpm(vec![vec![], vec![], reading, vec![]]),
                kernel_per_gpm(vec![writing]),
            ],
        );
        let run_dg = |dg: bool| {
            let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
            cfg.l2 = hmg_mem::CacheConfig::new(16, 4); // tiny: forces evictions
            cfg.sharer_downgrades = dg;
            Engine::new(cfg).run(&trace)
        };
        let without = run_dg(false);
        let with = run_dg(true);
        assert_eq!(without.downgrades, 0);
        assert!(with.downgrades > 0, "clean evictions must downgrade");
        assert!(
            with.invs_from_stores <= without.invs_from_stores,
            "downgrades must not increase invalidations ({} vs {})",
            with.invs_from_stores,
            without.invs_from_stores
        );
    }

    #[test]
    fn scoped_loads_never_hit_below_their_home() {
        // All loads at .gpu scope: the local (non-home) L2 must never
        // serve them, even when it holds the line.
        let warm = vec![ld(0), TraceOp::Delay(50_000)];
        let scoped: Vec<TraceOp> = (0..4)
            .flat_map(|_| {
                [
                    TraceOp::Access(Access::new(Addr(0), AccessKind::Load, Scope::Gpu)),
                    TraceOp::Delay(1000),
                ]
            })
            .collect();
        let mut ops = warm;
        ops.extend(scoped);
        let trace = WorkloadTrace::new(
            "scoped",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]), // home at GPM0
                kernel_per_gpm(vec![vec![], ops, vec![], vec![]]),
            ],
        );
        for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc, ProtocolKind::SwHier] {
            let m = run(p, &trace);
            // The .gpu loads must all travel to a home; only the single
            // plain warm load may hit locally after its fill.
            assert!(
                m.l1_hits <= 1,
                "{p}: scoped loads leaked into the L1 ({} hits)",
                m.l1_hits
            );
        }
        // Ideal waives the rule: scoped loads may hit locally.
        let ideal = run(ProtocolKind::Ideal, &trace);
        assert!(ideal.l1_hits >= 2, "ideal hits: {}", ideal.l1_hits);
    }

    #[test]
    fn sys_scoped_loads_travel_to_the_system_home() {
        // A .sys load may only be served at the system home, even under
        // hierarchical routing with a warm GPU home.
        let warm = vec![ld(0), TraceOp::Delay(50_000)]; // fills gpu home
        let sys_load = vec![TraceOp::Access(Access::new(
            Addr(0),
            AccessKind::Load,
            Scope::Sys,
        ))];
        let mut ops = warm;
        ops.extend(sys_load);
        let trace = WorkloadTrace::new(
            "sys-scope",
            vec![
                kernel_per_gpm(vec![vec![ld(0)]]),
                kernel_per_gpm(vec![vec![], vec![], ops, vec![]]),
            ],
        );
        let m = run(ProtocolKind::Hmg, &trace);
        // At least one request reached the system home in kernel 1 (the
        // .sys load; the warm load may have been served at the GPU home).
        assert!(m.sys_home_hits + m.dram_accesses >= 2);
    }

    #[test]
    fn carve_broadcasts_on_read_write_sharing() {
        // GPM0 homes and writes a line that GPMs 1-3 have read: the
        // CARVE-like classifier must broadcast invalidations to every
        // cache, and a synchronized reader still sees the new value.
        let reader = vec![ld(0)];
        let trace = WorkloadTrace::new(
            "carve",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], reader.clone(), reader.clone(), reader]),
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], vec![], vec![ld(0)], vec![]]),
            ],
        );
        let m = run_probed(ProtocolKind::CarveLike, &trace, 0);
        // Broadcast: the second store reaches a ReadWrite block ->
        // invalidations to all GPMs but home and writer (= 3 on the
        // small_test machine, per store event).
        assert!(m.invs_from_stores >= 3, "got {}", m.invs_from_stores);
        assert_eq!(m.probe.last().unwrap().1, 2);
    }

    #[test]
    fn carve_private_blocks_stay_quiet() {
        // A GPM rewriting its own private data must not broadcast.
        let ops: Vec<TraceOp> = (0..8).map(|_| st(0)).collect();
        let trace = WorkloadTrace::new("carve-priv", vec![kernel_per_gpm(vec![ops])]);
        let m = run(ProtocolKind::CarveLike, &trace);
        assert_eq!(m.invs_from_stores, 0, "private writes must not broadcast");
    }

    #[test]
    fn carve_sends_more_invalidations_than_hmg_on_shared_writes() {
        // The paper's §II-A point: without sharer tracking, CARVE
        // broadcasts where HMG invalidates precisely.
        let reader = vec![ld(0)];
        let trace = WorkloadTrace::new(
            "carve-vs-hmg",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]),
                kernel_per_gpm(vec![vec![], reader.clone(), vec![], vec![]]),
                kernel_per_gpm(vec![vec![st(0)]]),
            ],
        );
        let carve = run(ProtocolKind::CarveLike, &trace);
        let hmg = run(ProtocolKind::Hmg, &trace);
        assert!(
            carve.invs_from_stores > hmg.invs_from_stores,
            "carve {} vs hmg {}",
            carve.invs_from_stores,
            hmg.invs_from_stores
        );
    }

    #[test]
    fn directory_eviction_sends_invalidations() {
        // A tiny directory (4 entries, 1 way) plus many distinct remote
        // blocks forces eviction invalidations.
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.dir = hmg_mem::DirectoryConfig::new(4, 1);
        let line_b = cfg.geometry.line_bytes() as u64;
        let block_b = line_b * cfg.geometry.lines_per_block() as u64;
        // Home everything at GPM0 in kernel 0, then have GPM2 read many
        // distinct blocks.
        let homing: Vec<TraceOp> = (0..64u64).map(|i| ld(i * block_b)).collect();
        let remote: Vec<TraceOp> = (0..64u64).map(|i| ld(i * block_b)).collect();
        let trace = WorkloadTrace::new(
            "evict",
            vec![
                kernel_per_gpm(vec![homing]),
                kernel_per_gpm(vec![vec![], vec![], remote, vec![]]),
            ],
        );
        let m = Engine::new(cfg).run(&trace);
        assert!(m.invs_from_evictions > 0, "directory must overflow");
        assert!(m.evictions_triggering_invs > 0);
    }

    #[test]
    fn nack_flow_control_rejects_and_recovers() {
        // Heavy bursts from every GPM onto GPM0-homed lines; with the
        // threshold at zero, any queued serialization at the home's
        // ingress port rejects the request.
        let line_b = 128u64;
        let homing: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let burst: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let trace = WorkloadTrace::new(
            "nack",
            vec![
                kernel_per_gpm(vec![homing]),
                kernel_per_gpm(vec![vec![], burst.clone(), burst.clone(), burst]),
            ],
        );
        let base = run(ProtocolKind::Hmg, &trace);
        assert_eq!(base.nacks, 0, "flow control is off by default");
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.home_nack_threshold = Some(0);
        let m = Engine::new(cfg).run(&trace);
        assert!(m.nacks > 0, "zero threshold must reject bursty requests");
        assert_eq!(m.loads, base.loads, "every rejected load still retires");
        assert_eq!(
            m.state_digest, base.state_digest,
            "NACK/retry must converge to the same memory state"
        );
    }

    #[test]
    fn phase_priority_arbitration_defers_without_nack_traffic() {
        // Same burst shape as `nack_flow_control_rejects_and_recovers`,
        // but with phase-priority arbitration the busy home holds and
        // replays requests instead of NACKing them: zero NACK messages,
        // same retired work, same final memory state.
        let line_b = 128u64;
        let homing: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let burst: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let trace = WorkloadTrace::new(
            "phase",
            vec![
                kernel_per_gpm(vec![homing]),
                kernel_per_gpm(vec![vec![], burst.clone(), burst.clone(), burst]),
            ],
        );
        let base = run(ProtocolKind::Hmg, &trace);
        assert_eq!(base.deferred_reqs, 0, "arbitration is idle by default");
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.home_nack_threshold = Some(0);
        cfg.arbitration = hmg_protocol::Arbitration::PhasePriority;
        let m = Engine::new(cfg).run(&trace);
        assert!(m.deferred_reqs > 0, "zero threshold must defer bursts");
        assert_eq!(m.nacks, 0, "phase-priority sends no NACK messages");
        assert_eq!(m.loads, base.loads, "every deferred load still retires");
        assert_eq!(
            m.state_digest, base.state_digest,
            "deferral must converge to the same memory state"
        );
    }

    #[test]
    fn sharer_overflow_degrades_to_broadcast_and_stays_coherent() {
        // Cap the directory at one precise sharer: the second reader of
        // a GPM0-homed line overflows the entry into broadcast mode.
        // The writer's invalidation round must then reach *every*
        // possible sharer, so synchronized readers still see the store.
        let trace = WorkloadTrace::new(
            "overflow",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]), // homes at GPM0, version 1
                kernel_per_gpm(vec![vec![], vec![ld(0)], vec![ld(0)], vec![ld(0)]]),
                kernel_per_gpm(vec![vec![st(0)]]), // version 2
                kernel_per_gpm(vec![vec![], vec![ld(0)], vec![ld(0)], vec![ld(0)]]),
            ],
        );
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.dir = cfg.dir.with_max_sharers(1);
        cfg.probe_line = Some(0);
        let m = Engine::new(cfg).run(&trace);
        assert!(
            m.dir_broadcast_fallbacks >= 1,
            "a one-sharer cap must overflow with three readers"
        );
        assert!(m.broadcast_invs >= 1, "degraded entries must broadcast");
        let final_reads: Vec<u64> = m.probe.iter().rev().take(3).map(|&(_, v)| v).collect();
        assert_eq!(
            final_reads,
            vec![2, 2, 2],
            "broadcast fallback must invalidate every stale copy"
        );

        // Uncapped control: same trace, precise tracking, no fallbacks.
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.probe_line = Some(0);
        let precise = Engine::new(cfg).run(&trace);
        assert_eq!(precise.dir_broadcast_fallbacks, 0);
        assert_eq!(precise.broadcast_invs, 0);
        assert_eq!(m.state_digest, precise.state_digest);
    }

    #[test]
    fn nack_attempt_cap_exhaustion_is_a_typed_error() {
        // Same burst shape as `nack_flow_control_rejects_and_recovers`,
        // but with a zero attempt cap the very first NACK must abort the
        // run with a Protocol error instead of retrying (or hanging).
        let line_b = 128u64;
        let homing: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let burst: Vec<TraceOp> = (0..32u64).map(|i| ld(i * line_b)).collect();
        let trace = WorkloadTrace::new(
            "nack-cap",
            vec![
                kernel_per_gpm(vec![homing]),
                kernel_per_gpm(vec![vec![], burst.clone(), burst.clone(), burst]),
            ],
        );
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.home_nack_threshold = Some(0);
        cfg.nack_attempt_cap = Some(0);
        let err = Engine::try_new(cfg)
            .unwrap()
            .try_run(&trace)
            .expect_err("an exhausted attempt cap must surface, not hang");
        assert_eq!(err.kind, hmg_sim::SimErrorKind::Protocol, "{err}");
        assert!(err.message.contains("attempt cap"), "{err}");
        assert!(err.cycle.is_some(), "errors carry the failing cycle");
        assert!(err.agent.is_some(), "errors name the starved requester");

        // A generous cap never exhausts: the run recovers exactly like
        // the uncapped configuration.
        let base = run(ProtocolKind::Hmg, &trace);
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.home_nack_threshold = Some(0);
        cfg.nack_attempt_cap = Some(200);
        let m = Engine::new(cfg).run(&trace);
        assert!(m.nacks > 0);
        assert_eq!(m.loads, base.loads);
        assert_eq!(m.state_digest, base.state_digest);
    }

    #[test]
    fn broadcast_mode_stays_sticky_across_sharer_downgrades() {
        // A degraded (broadcast) directory entry must *stay* degraded
        // when a tracked sharer later leaves: precise removal on an
        // imprecise entry would silently re-narrow the target list.
        // GPM1's clean eviction of the line sends a sharer downgrade to
        // the home after the entry has already overflowed to broadcast;
        // the store that follows must still invalidate every possible
        // sharer, and every synchronized reader must see it.
        let line_b = 128u64;
        let evict_gpm1: Vec<TraceOp> = (1..3u64).map(|i| ld(4 * i * line_b)).collect();
        let trace = WorkloadTrace::new(
            "sticky-broadcast",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]), // homes at GPM0, version 1
                kernel_per_gpm(vec![vec![], vec![ld(0)], vec![ld(0)], vec![ld(0)]]),
                // GPM1 evicts its clean copy -> downgrade to the home.
                kernel_per_gpm(vec![vec![], evict_gpm1]),
                kernel_per_gpm(vec![vec![st(0)]]), // version 2, after shrink
                kernel_per_gpm(vec![vec![], vec![ld(0)], vec![ld(0)], vec![ld(0)]]),
            ],
        );
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.dir = cfg.dir.with_max_sharers(1);
        cfg.sharer_downgrades = true;
        // A 2-way, 4-set L2 so two colliding fills evict GPM1's copy.
        cfg.l2 = hmg_mem::CacheConfig::new(8, 2);
        cfg.probe_line = Some(0);
        let m = Engine::new(cfg).run(&trace);
        assert!(m.dir_broadcast_fallbacks >= 1, "entry must degrade first");
        assert!(m.downgrades >= 1, "the sharer list must shrink afterwards");
        assert!(
            m.broadcast_invs >= 1,
            "the post-shrink store must still use the broadcast list"
        );
        let final_reads: Vec<u64> = m.probe.iter().rev().take(3).map(|&(_, v)| v).collect();
        assert_eq!(
            final_reads,
            vec![2, 2, 2],
            "sticky broadcast must keep every reader coherent"
        );
    }

    #[test]
    fn gpm_offline_mid_kernel_aborts_ctas_and_completes() {
        // GPM3 (GPU1.GPM1) dies mid-kernel with the livelock watchdog
        // armed: its CTA is aborted, the epoch grace keeps the watchdog
        // quiet through the detection window, and the run completes.
        let far = 6u64 << 20; // fresh 2 MB page, first-touched by GPM3
        let trace = WorkloadTrace::new(
            "gpm-off",
            vec![
                // Kernel 0 homes `far` at GPM3 (sole first toucher);
                // kernel 1 has GPM2 cache a copy, so the dead module's
                // directory has something to rebuild.
                kernel_per_gpm(vec![vec![st(0)], vec![], vec![], vec![ld(far)]]),
                kernel_per_gpm(vec![
                    vec![TraceOp::Delay(40_000), st(0)],
                    vec![ld(0)],
                    vec![ld(far)],
                    vec![ld(far), TraceOp::Delay(40_000), ld(far)],
                ]),
            ],
        );
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.livelock_budget = Some(50_000);
        cfg.faults.gpm_offline = Some(hmg_sim::GpmOffline {
            gpu: 1,
            gpm: 1,
            at_cycle: 20_000,
        });
        let m = Engine::try_new(cfg)
            .unwrap()
            .try_run(&trace)
            .expect("the survivors must finish without tripping the watchdog");
        assert_eq!(m.reconfig.epochs, 1);
        assert!(m.reconfig.aborted_ctas >= 1, "GPM3's CTA dies mid-delay");
        assert!(m.reconfig.downtime_cycles > 0, "detection window charged");
        assert!(
            m.reconfig.rehomed_pages >= 1,
            "the page first-touched by GPM3 must re-home"
        );
        assert!(m.total_cycles.0 > 20_000, "the run outlives the fault");
    }

    #[test]
    fn gpu_offline_preserves_memory_homed_on_survivors() {
        // GPU1 dies mid-run. Everything it homed re-homes onto GPU0 in
        // degraded mode; because the dead GPU only ever *loaded*, the
        // final committed memory state must be byte-identical to the
        // fault-free run of the same trace.
        let far = 4u64 << 20; // page first-touched (homed) by GPM2 / GPU1
        let trace = WorkloadTrace::new(
            "gpu-off",
            vec![
                kernel_per_gpm(vec![
                    vec![st(0), st(128)],
                    vec![],
                    vec![ld(far), ld(far + 128)],
                    vec![ld(0)],
                ]),
                kernel_per_gpm(vec![
                    vec![TraceOp::Delay(60_000), st(0), st(far)],
                    vec![ld(0)],
                    vec![ld(far), TraceOp::Delay(60_000), ld(far)],
                    vec![ld(0), TraceOp::Delay(60_000), ld(0)],
                ]),
                // Started after the fault: CTAs redistribute over GPU0,
                // and the degraded page is still readable and writable.
                kernel_per_gpm(vec![
                    vec![st(far)],
                    vec![ld(far)],
                    vec![ld(0)],
                    vec![ld(far)],
                ]),
            ],
        );
        let fault_free = run(ProtocolKind::Hmg, &trace);
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.faults.gpu_offline = Some(hmg_sim::GpuOffline {
            gpu: 1,
            at_cycle: 30_000,
        });
        let m = Engine::new(cfg).run(&trace);
        assert_eq!(m.reconfig.epochs, 1);
        assert!(m.reconfig.rehomed_pages >= 1);
        assert!(m.reconfig.degraded_pages >= 1, "re-homed pages degrade");
        assert!(m.reconfig.rehomed_blocks >= 1, "GPM2 tracked `far` blocks");
        assert_eq!(
            m.state_digest, fault_free.state_digest,
            "a dead GPU that only loaded must not change committed memory"
        );
    }

    #[test]
    fn link_down_reroutes_over_second_tier_with_identical_memory_state() {
        // The GPM0<->GPM1 first-tier link dies before any traffic flows:
        // every request between them detours over the second-tier switch
        // path. Slower, but the memory state is exactly the fault-free
        // one.
        let trace = WorkloadTrace::new(
            "link-down",
            vec![
                kernel_per_gpm(vec![vec![st(0)]]), // homes line 0 at GPM0
                kernel_per_gpm(vec![vec![], vec![ld(0), ld(0)], vec![], vec![st(0)]]),
            ],
        );
        let fault_free = run(ProtocolKind::Hmg, &trace);
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.faults.link_down = Some(hmg_sim::LinkDown {
            a: 0,
            b: 1,
            at_cycle: 0,
        });
        let m = Engine::new(cfg).run(&trace);
        assert_eq!(m.reconfig.epochs, 1, "the link loss opens one epoch");
        assert!(
            m.fabric.transport().reroutes > 0,
            "GPM1<->GPM0 traffic must detour over the second tier"
        );
        assert_eq!(m.state_digest, fault_free.state_digest);
        assert_eq!(m.loads, fault_free.loads);
        assert_eq!(m.stores, fault_free.stores);
    }

    // -----------------------------------------------------------------
    // Preemptible cells: snapshot/restore (DESIGN.md §14)
    // -----------------------------------------------------------------

    /// Fresh per-test snapshot store base path under the system tmpdir.
    fn snap_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hmg-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join(format!("{name}.snap"));
        for slot in SnapshotStore::new(&base).slots() {
            let _ = std::fs::remove_file(&slot);
        }
        base
    }

    /// A pseudo-random mixed load/store trace with enough work that
    /// mid-run snapshots capture non-trivial in-flight state: shared
    /// lines across GPMs, stores forcing invalidations, delays opening
    /// quiet windows.
    fn busy_trace(kernels: usize, ops_per_cta: usize) -> WorkloadTrace {
        let mut rng = Rng::new(0xC0FFEE);
        let mut ks = Vec::new();
        for _ in 0..kernels {
            let mut ctas = Vec::new();
            for _ in 0..4 {
                let mut v = Vec::with_capacity(ops_per_cta);
                for _ in 0..ops_per_cta {
                    let addr = rng.gen_range(0, 64) * 16;
                    v.push(if rng.gen_bool(0.3) {
                        st(addr)
                    } else {
                        ld(addr)
                    });
                    if rng.gen_bool(0.1) {
                        v.push(TraceOp::Delay(rng.gen_range(1, 300) as u32));
                    }
                }
                ctas.push(v);
            }
            ks.push(kernel_per_gpm(ctas));
        }
        WorkloadTrace::new("snap-busy", ks)
    }

    /// The flip-line + link-down plan the kill-matrix acceptance
    /// criterion runs under.
    fn kill_matrix_faults() -> hmg_sim::FaultPlan {
        hmg_sim::FaultPlan::parse("flip-line=0.5,link-down=0-1@400,seed=9")
            .expect("fault spec parses")
    }

    /// Full-metrics equality via the Debug rendering: every counter,
    /// histogram bucket, and digest must agree, not just the headline
    /// digest.
    fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
        assert_eq!(a.state_digest, b.state_digest, "{what}: state_digest");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{what}: full RunMetrics"
        );
    }

    #[test]
    fn preemptible_cold_run_matches_plain_run() {
        let trace = busy_trace(2, 30);
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let plain = Engine::new(cfg.clone()).try_run(&trace).unwrap();
        let policy = SnapshotPolicy::periodic(snap_store("cold"), 1, 0);
        let (m, rep) = Engine::new(cfg)
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert_eq!(rep.resumed_from, None);
        assert_eq!(rep.written, 0, "interval 0 captures nothing");
        assert!(rep.rejected.is_empty());
        assert_metrics_identical(&plain, &m, "cold preemptible run");
    }

    /// The kill matrix: for every Fig. 8 protocol, with and without the
    /// flip-line + link-down fault plan, interrupt the run at several
    /// mid-run points and prove the resumed run is bit-identical —
    /// same `state_digest`, same full `RunMetrics` — to the
    /// uninterrupted one. Capturing a snapshot must also never perturb
    /// the capturing run itself.
    #[test]
    fn kill_matrix_resume_is_bit_identical() {
        let trace = busy_trace(2, 30);
        for protocol in ProtocolKind::FIG8 {
            for faulty in [false, true] {
                let mut cfg = EngineConfig::small_test(protocol);
                if faulty {
                    cfg.faults = kill_matrix_faults();
                }
                let reference = Engine::new(cfg.clone()).try_run(&trace).unwrap();
                let total = reference.total_cycles.as_u64();
                assert!(total > 1000, "busy trace must run long enough");
                // Hmg gets the full 3-point matrix; the other protocols
                // one midpoint each (the mechanism is protocol-generic,
                // the state captured is not).
                let points: &[u64] = if protocol == ProtocolKind::Hmg {
                    &[1, 2, 3]
                } else {
                    &[2]
                };
                for frac in points {
                    let cut = total * frac / 4;
                    let name = format!(
                        "km-{}-{}-{frac}",
                        protocol.name(),
                        if faulty { "faulty" } else { "clean" }
                    );
                    let base = snap_store(&name);
                    let mut policy = SnapshotPolicy::periodic(base, 77, 0);
                    policy.snap_at = vec![cut];
                    let (first, rep) = Engine::new(cfg.clone())
                        .try_run_preemptible(&trace, &policy)
                        .unwrap();
                    assert_eq!(rep.resumed_from, None, "{name}: cold start");
                    assert_eq!(rep.written, 1, "{name}: one capture at the cut");
                    assert_eq!(rep.write_errors, 0, "{name}");
                    assert_metrics_identical(
                        &reference,
                        &first,
                        &format!("{name}: capture must not perturb the run"),
                    );
                    policy.snap_at.clear();
                    let (resumed, rep) = Engine::new(cfg.clone())
                        .try_run_preemptible(&trace, &policy)
                        .unwrap();
                    let from = rep
                        .resumed_from
                        .expect("the second run resumes from the capture");
                    assert!(from >= cut, "{name}: resumed at {from}, cut {cut}");
                    assert!(from < total, "{name}: resumed mid-run");
                    assert_metrics_identical(&reference, &resumed, &format!("{name}: resumed run"));
                }
            }
        }
    }

    /// Periodic captures at snapshot boundaries plus a one-shot capture
    /// mid-interval: resuming from the newest snapshot (whichever slot
    /// holds it) reproduces the uninterrupted run exactly.
    #[test]
    fn periodic_and_mid_interval_captures_resume_identical() {
        let trace = busy_trace(2, 30);
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let reference = Engine::new(cfg.clone()).try_run(&trace).unwrap();
        let total = reference.total_cycles.as_u64();
        let interval = total / 5;
        let base = snap_store("periodic");
        let mut policy = SnapshotPolicy::periodic(base, 9, interval);
        // One extra capture off the periodic grid.
        policy.snap_at = vec![interval * 2 + interval / 2];
        let (first, rep) = Engine::new(cfg.clone())
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert!(rep.written >= 3, "several captures: {rep:?}");
        assert_metrics_identical(&reference, &first, "capturing run");
        policy.snap_at.clear();
        let (resumed, rep) = Engine::new(cfg)
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert!(rep.resumed_from.is_some(), "{rep:?}");
        assert_metrics_identical(&reference, &resumed, "resumed run");
    }

    /// Seeds a store with exactly one valid snapshot of the busy Hmg
    /// trace and returns (path-with-the-snapshot, reference metrics,
    /// config, trace, policy used).
    fn seeded_store(
        name: &str,
    ) -> (
        std::path::PathBuf,
        RunMetrics,
        EngineConfig,
        WorkloadTrace,
        SnapshotPolicy,
    ) {
        let trace = busy_trace(2, 30);
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let reference = Engine::new(cfg.clone()).try_run(&trace).unwrap();
        let base = snap_store(name);
        let mut policy = SnapshotPolicy::periodic(base.clone(), 41, 0);
        policy.snap_at = vec![reference.total_cycles.as_u64() / 2];
        let (_, rep) = Engine::new(cfg.clone())
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert_eq!(rep.written, 1);
        policy.snap_at.clear();
        let slot = SnapshotStore::new(&base)
            .slots()
            .into_iter()
            .find(|p| p.exists())
            .expect("one slot holds the capture");
        (slot, reference, cfg, trace, policy)
    }

    /// Every adversarial corruption — truncation, a flipped byte, a
    /// version-mismatched header, a stale identity — is refused with a
    /// typed error and the run falls back to a cold start that still
    /// produces the uninterrupted result. No panic, no silent
    /// acceptance.
    #[test]
    fn corrupted_snapshots_are_refused_and_fall_back_to_scratch() {
        let (slot, reference, cfg, trace, policy) = seeded_store("adversary");
        let pristine = std::fs::read(&slot).expect("snapshot readable");

        type Corruption = (&'static str, Vec<u8>, fn(&SnapError) -> bool);
        let cases: Vec<Corruption> = vec![
            ("truncated", pristine[..pristine.len() / 2].to_vec(), |e| {
                matches!(e, SnapError::UnexpectedEof { .. } | SnapError::Malformed(_))
            }),
            (
                "flipped byte",
                {
                    let mut b = pristine.clone();
                    let mid = b.len() / 2;
                    b[mid] ^= 0x40;
                    b
                },
                |e| matches!(e, SnapError::Checksum { .. } | SnapError::Malformed(_)),
            ),
            (
                "version mismatch",
                {
                    let mut b = pristine.clone();
                    b[8] ^= 0x01; // version u32 follows the 8-byte magic
                    b
                },
                |e| matches!(e, SnapError::Version { .. }),
            ),
        ];
        for (what, bytes, expected) in cases {
            std::fs::write(&slot, &bytes).unwrap();
            let (m, rep) = Engine::new(cfg.clone())
                .try_run_preemptible(&trace, &policy)
                .unwrap();
            assert_eq!(rep.resumed_from, None, "{what}: must not resume");
            assert_eq!(rep.rejected.len(), 1, "{what}: refusal recorded");
            assert!(
                expected(&rep.rejected[0].1),
                "{what}: got {:?}",
                rep.rejected[0].1
            );
            assert_metrics_identical(&reference, &m, what);
        }

        // Stale identity: the file is pristine but belongs to another
        // cell. Version-mismatch bytes restored first.
        std::fs::write(&slot, &pristine).unwrap();
        let mut stale = policy.clone();
        stale.identity = policy.identity ^ 0xDEAD;
        let (m, rep) = Engine::new(cfg.clone())
            .try_run_preemptible(&trace, &stale)
            .unwrap();
        assert_eq!(rep.resumed_from, None, "stale identity must not resume");
        assert!(
            matches!(rep.rejected[0].1, SnapError::Identity { .. }),
            "got {:?}",
            rep.rejected[0].1
        );
        assert_metrics_identical(&reference, &m, "stale identity");
    }

    /// A snapshot from the same cell identity but a *differently shaped*
    /// engine (larger L2) is refused by restore validation rather than
    /// grafted onto the wrong machine.
    #[test]
    fn config_shape_mismatch_is_refused() {
        let (_slot, _reference, _cfg, trace, policy) = seeded_store("shape");
        let mut other = EngineConfig::small_test(ProtocolKind::Hmg);
        other.l2 = hmg_mem::CacheConfig::new(512, 8);
        let (_, rep) = Engine::new(other)
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert_eq!(rep.resumed_from, None, "shape mismatch must not resume");
        assert_eq!(rep.rejected.len(), 1);
        assert!(
            matches!(rep.rejected[0].1, SnapError::Malformed(_)),
            "got {:?}",
            rep.rejected[0].1
        );
    }

    /// Double-buffering: a longer periodic run keeps only the last two
    /// captures, and corrupting the newest slot falls back to the
    /// older one (not to scratch) — the fallback ladder's middle rung.
    #[test]
    fn fallback_ladder_uses_the_older_slot() {
        let trace = busy_trace(2, 30);
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let reference = Engine::new(cfg.clone()).try_run(&trace).unwrap();
        let total = reference.total_cycles.as_u64();
        let base = snap_store("ladder");
        let mut policy = SnapshotPolicy::periodic(base.clone(), 8, 0);
        policy.snap_at = vec![total / 4, total / 2];
        let (_, rep) = Engine::new(cfg.clone())
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert_eq!(rep.written, 2, "both slots populated");
        policy.snap_at.clear();

        // Identify newest/oldest by probing the headers.
        let slots = SnapshotStore::new(&base).slots();
        let mut probed: Vec<(u64, std::path::PathBuf)> = slots
            .iter()
            .filter_map(|p| Snapshot::probe(p).map(|(_, c)| (c, p.clone())))
            .collect();
        probed.sort_by_key(|(c, _)| *c);
        assert_eq!(probed.len(), 2);
        let (older_cycle, newest) = (probed[0].0, probed[1].1.clone());
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let (m, rep) = Engine::new(cfg)
            .try_run_preemptible(&trace, &policy)
            .unwrap();
        assert_eq!(rep.rejected.len(), 1, "newest slot refused");
        assert_eq!(
            rep.resumed_from,
            Some(older_cycle),
            "resume falls back to the older slot"
        );
        assert_metrics_identical(&reference, &m, "older-slot resume");
    }
}
