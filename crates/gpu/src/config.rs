//! Engine configuration: the Table II machine expressed in simulator
//! units (lines, bytes per cycle, cycles).

use hmg_interconnect::{FabricConfig, Topology};
use hmg_mem::{CacheConfig, DirectoryConfig, MemGeometry, PagePlacement};
use hmg_protocol::{Arbitration, MsgSizes, ProtocolKind};
use hmg_sim::{Cycle, FaultPlan, SimError};

/// L2 write policy for plain (`.cta`) stores.
///
/// The paper's evaluated configuration is write-through everywhere
/// (Section VI), but Section IV-B explicitly designs for both: under
/// write-back, plain stores coalesce as dirty lines in the issuing GPM's
/// L2 and are flushed by evictions and release operations (using the
/// paper's "data update without sharer tracking" message). Scoped
/// stores are always written through to their scope home to guarantee
/// forward progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Every store writes through immediately (the evaluated default).
    #[default]
    WriteThrough,
    /// Plain stores dirty the local L2; evictions and releases flush.
    WriteBack,
}

/// Error-detection/correction code protecting L2 lines and directory
/// entries against soft errors (the `flip-line` / `flip-dir` fault
/// classes).
///
/// Real GPUs ship SEC-DED ECC on SRAM arrays; `Parity` and `None`
/// exist to quantify what the protection buys (the adversarial proof
/// that without it, corruption is silent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccMode {
    /// No protection: every flip corrupts state silently.
    None,
    /// Parity: every flip is detected but none are correctable.
    /// Detected-uncorrectable lines are handled like SEC-DED
    /// double-bit errors (refetch clean data, poison dirty data).
    Parity,
    /// Single-error-correct, double-error-detect (the default):
    /// single-bit flips are corrected in place, double-bit flips are
    /// detected-uncorrectable.
    #[default]
    SecDed,
}

/// Full configuration of one simulated system.
///
/// Construct via [`EngineConfig::paper_default`] (the Table II machine)
/// or [`EngineConfig::small_test`] (a fast configuration for tests), then
/// adjust fields as needed for sweeps.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// GPUs and GPMs per GPU.
    pub topo: Topology,
    /// The coherence configuration to run.
    pub protocol: ProtocolKind,
    /// Line/block/page sizes.
    pub geometry: MemGeometry,
    /// Protocol message sizes.
    pub msg: MsgSizes,
    /// Interconnect bandwidths and latencies.
    pub fabric: FabricConfig,
    /// SMs per GPM (Table II: 128 per GPU / 4 GPMs = 32).
    pub sms_per_gpm: u16,
    /// Per-SM L1 shape (Table II: 128 KB, 128 B lines).
    pub l1: CacheConfig,
    /// Per-GPM L2 slice shape (Table II: 12 MB per GPU / 4 = 3 MB).
    pub l2: CacheConfig,
    /// Per-GPM coherence directory shape (Table II: 12K entries).
    pub dir: DirectoryConfig,
    /// System-home page placement policy.
    pub placement: PagePlacement,
    /// DRAM bandwidth per GPM in bytes/cycle (Table II: 1 TB/s per GPU).
    pub dram_bytes_per_cycle: f64,
    /// DRAM access latency.
    pub dram_latency: Cycle,
    /// L1 hit/lookup latency.
    pub l1_latency: Cycle,
    /// L2 slice access latency (data array, charged when serving data).
    pub l2_latency: Cycle,
    /// L2 tag-probe latency, charged when a lookup misses and the
    /// request is forwarded onward (pass-through nodes of the
    /// hierarchical path probe tags without touching the data array).
    pub l2_tag_latency: Cycle,
    /// Maximum in-flight load/atomic misses per SM (one per warp).
    pub max_outstanding_per_sm: u32,
    /// Cycles an SM spends issuing one memory instruction.
    pub issue_cycles: u32,
    /// Fixed cost of launching a kernel (host-side + scheduling).
    pub kernel_launch_overhead: Cycle,
    /// Latency for a flag update to become visible to waiters.
    pub flag_latency: Cycle,
    /// Cycles charged to an SM for a bulk L1 invalidation at an acquire.
    pub acquire_l1_cost: u32,
    /// Cycles charged for a bulk L2 invalidation at an acquire (software
    /// coherence only).
    pub acquire_l2_cost: u32,
    /// Record the Fig. 3 peer-redundancy statistic (costs memory).
    pub track_peer_redundancy: bool,
    /// Coherence-checker hook: when set to a raw line index, every load
    /// of that line records the version it observed into
    /// [`crate::RunMetrics::probe`].
    pub probe_line: Option<u64>,
    /// Ablation: make release fences complete instantly (no fence
    /// traffic, no drain waiting). Quantifies the cost of HMG's only
    /// acknowledged operation. Breaks the visibility guarantees the
    /// coherence checker tests, so only use it for performance ablation.
    pub zero_cost_fences: bool,
    /// L2 write policy for plain stores (Section IV-B gives both
    /// options; Section VI evaluates write-through).
    pub l2_write_policy: WritePolicy,
    /// Optional sharer-downgrade messages on clean L2 evictions
    /// (Section IV-B "Cache Eviction", first option). Deletes the
    /// evicting GPM from the home directory when its last line of the
    /// block departs, saving a later spurious invalidation. The paper's
    /// evaluation leaves this off (Section VI).
    pub sharer_downgrades: bool,
    /// Fault-injection plan for this run. The default plan injects
    /// nothing; link faults are forwarded to the fabric, message and
    /// flag faults are consulted by the engine.
    pub faults: FaultPlan,
    /// Livelock watchdog budget: abort with a typed diagnostic if this
    /// many cycles pass without a single retired access. `None`
    /// (default) disarms the watchdog.
    pub livelock_budget: Option<u64>,
    /// Directory-home flow control: when a remote request reaches a
    /// directory home whose ingress port has more than this many cycles
    /// of queued serialization, the home NACKs the request instead of
    /// accepting it, and the requester re-issues after an exponential
    /// backoff. `None` (default) disables NACKs — requests queue
    /// unboundedly, the pre-flow-control behavior.
    pub home_nack_threshold: Option<u64>,
    /// Base backoff before a NACKed request is re-issued; doubles per
    /// consecutive NACK of the same request (capped at `2^6`).
    pub nack_backoff: Cycle,
    /// Maximum number of NACK re-issues a single request may attempt.
    /// When the cap is exhausted the run aborts with a typed
    /// `Protocol` [`SimError`] naming the starved requester instead of
    /// retrying (and potentially livelocking) forever. `None` (default)
    /// keeps the pre-existing unbounded-retry behavior.
    pub nack_attempt_cap: Option<u8>,
    /// What a busy directory home does with the requests it throttles
    /// (only consulted when `home_nack_threshold` is set): NACK/retry
    /// rejects them back to the requester with exponential backoff;
    /// phase-priority holds them at the home and replays them after a
    /// fixed quantum (`nack_backoff`) in arrival order. The discipline
    /// is the guarded `HomeBusy` rows of the protocol spec
    /// (`hmg_protocol::spec`), so both variants are model-checked.
    pub arbitration: Arbitration,
    /// ECC scheme protecting L2 lines and directory entries against
    /// `flip-line`/`flip-dir` soft errors. Default [`EccMode::SecDed`].
    pub ecc: EccMode,
    /// Fraction of injected line/directory flips that hit two bits of
    /// the same codeword (uncorrectable under SEC-DED). Real soft-error
    /// data puts this well under 10%; the default 0.25 exercises both
    /// paths, and tests pin it to 0.0 (all correctable) or 1.0 (all
    /// uncorrectable) for exact accounting.
    pub ecc_double_bit_fraction: f64,
    /// End-to-end message checksums on the fabric: corrupted deliveries
    /// (`flip-msg`) are detected at the receiver and replayed. Disabled
    /// only for the adversarial ablation — corruption then lands
    /// silently.
    pub checksums: bool,
    /// Period of the background scrubber that sweeps L2 lines and
    /// directory entries for latent flips. The scrubber is armed only
    /// when the fault plan injects `flip-line`/`flip-dir`, so
    /// fault-free runs never pay for it.
    pub scrub_interval: Cycle,
}

impl EngineConfig {
    /// The Table II machine: 4 GPUs x 4 GPMs, 32 SMs/GPM, 128 KB L1s,
    /// 3 MB L2 slices, 12K-entry directories, 2 TB/s intra-GPU and
    /// 200 GB/s inter-GPU bandwidth, 1 TB/s DRAM per GPU, 1.3 GHz.
    pub fn paper_default(protocol: ProtocolKind) -> Self {
        let geometry = MemGeometry::paper_default();
        EngineConfig {
            topo: Topology::new(4, 4),
            protocol,
            geometry,
            msg: MsgSizes::paper_default(),
            fabric: FabricConfig::paper_default(),
            sms_per_gpm: 32,
            l1: CacheConfig::new((128 * 1024 / 128) as u32, 8),
            l2: CacheConfig::new((3 * 1024 * 1024 / 128) as u32, 16),
            dir: DirectoryConfig::paper_default(),
            placement: PagePlacement::FirstTouch,
            // 1 TB/s per GPU / 4 GPMs at 1.3 GHz ~ 192 B/cycle.
            dram_bytes_per_cycle: 250.0 / 1.3,
            dram_latency: Cycle(350),
            l1_latency: Cycle(30),
            l2_latency: Cycle(120),
            l2_tag_latency: Cycle(40),
            max_outstanding_per_sm: 96,
            issue_cycles: 2,
            kernel_launch_overhead: Cycle(3000),
            flag_latency: Cycle(150),
            acquire_l1_cost: 30,
            acquire_l2_cost: 120,
            track_peer_redundancy: false,
            probe_line: None,
            zero_cost_fences: false,
            l2_write_policy: WritePolicy::WriteThrough,
            sharer_downgrades: false,
            faults: FaultPlan::default(),
            livelock_budget: None,
            home_nack_threshold: None,
            nack_backoff: Cycle(200),
            nack_attempt_cap: None,
            arbitration: Arbitration::NackRetry,
            ecc: EccMode::SecDed,
            ecc_double_bit_fraction: 0.25,
            checksums: true,
            scrub_interval: Cycle(5000),
        }
    }

    /// A deliberately small machine for unit/integration tests:
    /// 2 GPUs x 2 GPMs, 2 SMs per GPM, tiny caches, low latencies.
    pub fn small_test(protocol: ProtocolKind) -> Self {
        let mut c = EngineConfig::paper_default(protocol);
        c.topo = Topology::new(2, 2);
        c.sms_per_gpm = 2;
        c.l1 = CacheConfig::new(64, 4);
        c.l2 = CacheConfig::new(256, 8);
        c.dir = hmg_mem::DirectoryConfig::new(128, 4);
        c.dram_latency = Cycle(50);
        c.l1_latency = Cycle(5);
        c.l2_latency = Cycle(10);
        c.l2_tag_latency = Cycle(4);
        c.kernel_launch_overhead = Cycle(100);
        c.flag_latency = Cycle(20);
        c.nack_backoff = Cycle(40);
        c.scrub_interval = Cycle(500);
        c
    }

    /// Total SMs in the system.
    pub fn total_sms(&self) -> u32 {
        self.topo.num_gpms() as u32 * self.sms_per_gpm as u32
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the directory granularity and message sizes disagree
    /// with the geometry, or dimensions are zero.
    pub fn validate(&self) {
        // audit:allow(panic-path): documented panicking wrapper over try_validate.
        self.try_validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`EngineConfig::validate`]: returns a typed
    /// [`SimError`] describing the first inconsistency found, including
    /// fault-plan range checks.
    pub fn try_validate(&self) -> Result<(), SimError> {
        if self.sms_per_gpm == 0 {
            return Err(SimError::config("need at least one SM per GPM"));
        }
        if self.max_outstanding_per_sm == 0 {
            return Err(SimError::config("max_outstanding_per_sm must be positive"));
        }
        if self.issue_cycles == 0 {
            return Err(SimError::config("issue_cycles must be positive"));
        }
        // NaN must fail validation, hence the negative comparison.
        if self.dram_bytes_per_cycle <= 0.0 || self.dram_bytes_per_cycle.is_nan() {
            return Err(SimError::config(format!(
                "dram_bytes_per_cycle must be positive, got {}",
                self.dram_bytes_per_cycle
            )));
        }
        if self.msg.load_resp != self.msg.header + self.geometry.line_bytes() {
            return Err(SimError::config(format!(
                "response size must carry exactly one line \
                 (load_resp={}, header={} + line={})",
                self.msg.load_resp,
                self.msg.header,
                self.geometry.line_bytes()
            )));
        }
        if self.home_nack_threshold.is_some() && self.nack_backoff == Cycle::ZERO {
            return Err(SimError::config(
                "nack_backoff must be positive when NACK flow control is enabled \
                 (a zero backoff can retry forever within one cycle)",
            ));
        }
        if self.nack_attempt_cap.is_some() && self.home_nack_threshold.is_none() {
            return Err(SimError::config(
                "nack_attempt_cap without home_nack_threshold has no effect \
                 (no home ever NACKs, so no attempt is ever counted)",
            ));
        }
        if let Some(l) = &self.faults.link_down {
            let n = self.topo.num_gpms();
            if l.a >= n || l.b >= n {
                return Err(SimError::config(format!(
                    "link-down endpoints {}-{} out of range (topology has {n} GPMs)",
                    l.a, l.b
                )));
            }
            if l.a / self.topo.gpms_per_gpu() != l.b / self.topo.gpms_per_gpu() {
                return Err(SimError::config(format!(
                    "link-down endpoints {}-{} belong to different GPUs; only \
                     intra-GPU (first-tier) links can fail over to the second tier",
                    l.a, l.b
                )));
            }
        }
        if let Some(g) = &self.faults.gpm_offline {
            if g.gpu >= self.topo.num_gpus() || g.gpm >= self.topo.gpms_per_gpu() {
                return Err(SimError::config(format!(
                    "gpm-offline target {}.{} out of range ({}x{} topology)",
                    g.gpu,
                    g.gpm,
                    self.topo.num_gpus(),
                    self.topo.gpms_per_gpu()
                )));
            }
        }
        if let Some(g) = &self.faults.gpu_offline {
            if g.gpu >= self.topo.num_gpus() {
                return Err(SimError::config(format!(
                    "gpu-offline target {} out of range ({} GPUs)",
                    g.gpu,
                    self.topo.num_gpus()
                )));
            }
            if self.topo.num_gpus() == 1 {
                return Err(SimError::config(
                    "gpu-offline with a single-GPU topology leaves no survivors",
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.ecc_double_bit_fraction) {
            return Err(SimError::config(format!(
                "ecc_double_bit_fraction {} not in [0,1]",
                self.ecc_double_bit_fraction
            )));
        }
        if (self.faults.flip_line.is_some() || self.faults.flip_dir.is_some())
            && self.scrub_interval == Cycle::ZERO
        {
            return Err(SimError::config(
                "scrub_interval must be positive when flip faults are armed \
                 (a zero period would reschedule the scrubber every cycle)",
            ));
        }
        self.faults.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let c = EngineConfig::paper_default(ProtocolKind::Hmg);
        assert_eq!(c.topo.num_gpus(), 4);
        assert_eq!(c.topo.gpms_per_gpu(), 4);
        assert_eq!(c.total_sms(), 512);
        assert_eq!(c.sms_per_gpm as u32 * c.topo.gpms_per_gpu() as u32, 128);
        assert_eq!(c.l1.lines * 128, 128 * 1024); // 128 KB per SM
        assert_eq!(c.l2.lines as u64 * 128 * 4, 12 * 1024 * 1024); // 12 MB per GPU
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.dir.entries, 12 * 1024);
        assert_eq!(c.geometry.page_bytes(), 2 * 1024 * 1024);
        assert!((c.fabric.intra_gpu_gbps - 2000.0).abs() < 1e-9);
        assert!((c.fabric.inter_gpu_gbps - 200.0).abs() < 1e-9);
        c.validate();
    }

    #[test]
    fn small_test_is_consistent() {
        for p in ProtocolKind::ALL {
            EngineConfig::small_test(p).validate();
        }
    }

    #[test]
    fn validate_rejects_attempt_cap_without_flow_control() {
        let mut c = EngineConfig::small_test(ProtocolKind::Hmg);
        c.nack_attempt_cap = Some(4);
        assert!(c.try_validate().is_err(), "cap needs NACKs to count");
        c.home_nack_threshold = Some(0);
        c.try_validate().unwrap();
    }

    #[test]
    fn validate_checks_permanent_faults_against_the_topology() {
        use hmg_sim::{GpmOffline, GpuOffline, LinkDown};
        // small_test is a 2x2 topology: GPMs 0..4, GPUs 0..2.
        let base = EngineConfig::small_test(ProtocolKind::Hmg);

        let mut c = base.clone();
        c.faults.link_down = Some(LinkDown {
            a: 0,
            b: 1,
            at_cycle: 100,
        });
        c.try_validate().unwrap();
        c.faults.link_down = Some(LinkDown {
            a: 0,
            b: 4,
            at_cycle: 100,
        });
        assert!(c.try_validate().is_err(), "endpoint out of range");
        c.faults.link_down = Some(LinkDown {
            a: 1,
            b: 2,
            at_cycle: 100,
        });
        assert!(
            c.try_validate().is_err(),
            "cross-GPU link has no first tier"
        );

        let mut c = base.clone();
        c.faults.gpm_offline = Some(GpmOffline {
            gpu: 1,
            gpm: 1,
            at_cycle: 50,
        });
        c.try_validate().unwrap();
        c.faults.gpm_offline = Some(GpmOffline {
            gpu: 2,
            gpm: 0,
            at_cycle: 50,
        });
        assert!(c.try_validate().is_err(), "gpu index out of range");

        let mut c = base.clone();
        c.faults.gpu_offline = Some(GpuOffline {
            gpu: 1,
            at_cycle: 50,
        });
        c.try_validate().unwrap();
        c.faults.gpu_offline = Some(GpuOffline {
            gpu: 9,
            at_cycle: 50,
        });
        assert!(c.try_validate().is_err(), "gpu index out of range");

        let mut c = base.clone();
        c.topo = Topology::new(1, 4);
        c.faults.gpu_offline = Some(GpuOffline {
            gpu: 0,
            at_cycle: 50,
        });
        assert!(c.try_validate().is_err(), "no survivors allowed");
    }

    #[test]
    fn validate_checks_integrity_knobs() {
        let mut c = EngineConfig::small_test(ProtocolKind::Hmg);
        assert_eq!(c.ecc, EccMode::SecDed);
        assert!(c.checksums);
        c.ecc_double_bit_fraction = 1.5;
        assert!(c.try_validate().is_err(), "fraction out of range");
        c.ecc_double_bit_fraction = 1.0;
        c.try_validate().unwrap();
        // A zero scrub period is fine until flips are armed.
        c.scrub_interval = Cycle::ZERO;
        c.try_validate().unwrap();
        c.faults = FaultPlan::parse("flip-line=0.1").unwrap();
        assert!(c.try_validate().is_err(), "flips need a scrub period");
        c.scrub_interval = Cycle(500);
        c.try_validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "response size")]
    fn validate_catches_msg_geometry_mismatch() {
        let mut c = EngineConfig::small_test(ProtocolKind::Hmg);
        c.msg.load_resp = 10;
        c.validate();
    }
}
