//! Property-based tests on the engine: arbitrary (flag-free) traces must
//! complete deterministically under every protocol, with conserved
//! accounting.

use proptest::prelude::*;

use hmg_gpu::{Engine, EngineConfig};
use hmg_mem::Addr;
use hmg_protocol::{Access, AccessKind, Cta, Kernel, ProtocolKind, Scope, TraceOp, WorkloadTrace};

/// Strategy: a random flag-free CTA (loads, stores, atomics, delays,
/// acquires, releases over a bounded address space).
fn arb_cta() -> impl Strategy<Value = Cta> {
    let op = prop_oneof![
        6 => (0u64..512, any::<bool>()).prop_map(|(l, st)| {
            let a = Addr(l * 128);
            TraceOp::Access(if st { Access::store(a) } else { Access::load(a) })
        }),
        1 => (0u64..512, prop_oneof![Just(Scope::Gpu), Just(Scope::Sys)])
            .prop_map(|(l, s)| TraceOp::Access(Access::new(Addr(l * 128), AccessKind::Atomic, s))),
        1 => (1u32..200).prop_map(TraceOp::Delay),
        1 => prop_oneof![Just(Scope::Cta), Just(Scope::Gpu), Just(Scope::Sys)]
            .prop_map(TraceOp::Acquire),
        1 => prop_oneof![Just(Scope::Cta), Just(Scope::Gpu), Just(Scope::Sys)]
            .prop_map(TraceOp::Release),
    ];
    proptest::collection::vec(op, 0..40).prop_map(Cta::new)
}

fn arb_trace() -> impl Strategy<Value = WorkloadTrace> {
    proptest::collection::vec(
        proptest::collection::vec(arb_cta(), 1..9).prop_map(Kernel::new),
        1..4,
    )
    .prop_map(|kernels| WorkloadTrace::new("random", kernels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness: arbitrary flag-free traces terminate under every
    /// protocol, and the metrics account for every access issued.
    #[test]
    fn random_traces_complete_with_conserved_accounting(trace in arb_trace()) {
        let expected_accesses = trace.num_accesses() as u64;
        for p in ProtocolKind::ALL {
            let m = Engine::new(EngineConfig::small_test(p)).run(&trace);
            // Loads + stores together count every access exactly once,
            // except atomics which count as both.
            let mut atomics = 0u64;
            for k in &trace.kernels {
                for c in &k.ctas {
                    for op in &c.ops {
                        if let TraceOp::Access(a) = op {
                            if a.kind == AccessKind::Atomic {
                                atomics += 1;
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(m.loads + m.stores, expected_accesses + atomics, "{}", p);
            prop_assert!(m.l1_hits <= m.loads, "{}", p);
        }
    }

    /// Determinism: the same trace yields identical cycle counts twice.
    #[test]
    fn random_traces_are_deterministic(trace in arb_trace()) {
        for p in [ProtocolKind::Hmg, ProtocolKind::SwHier] {
            let a = Engine::new(EngineConfig::small_test(p)).run(&trace);
            let b = Engine::new(EngineConfig::small_test(p)).run(&trace);
            prop_assert_eq!(a.total_cycles, b.total_cycles);
            prop_assert_eq!(a.events, b.events);
        }
    }

    /// Software protocols never emit invalidation traffic, for any trace.
    #[test]
    fn sw_protocols_never_invalidate(trace in arb_trace()) {
        for p in [ProtocolKind::SwNonHier, ProtocolKind::SwHier, ProtocolKind::Ideal] {
            let m = Engine::new(EngineConfig::small_test(p)).run(&trace);
            prop_assert_eq!(m.invs_from_stores + m.invs_from_evictions, 0, "{}", p);
        }
    }
}
