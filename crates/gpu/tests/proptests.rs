//! Randomized property tests on the engine: arbitrary (flag-free)
//! traces must complete deterministically under every protocol, with
//! conserved accounting. Driven by the in-repo SplitMix64 [`Rng`]
//! rather than an external property-testing crate so the workspace
//! builds offline.

use hmg_gpu::{Engine, EngineConfig};
use hmg_mem::Addr;
use hmg_protocol::{Access, AccessKind, Cta, Kernel, ProtocolKind, Scope, TraceOp, WorkloadTrace};
use hmg_sim::Rng;

const CASES: u64 = 24;

/// A random flag-free CTA (loads, stores, atomics, delays, acquires,
/// releases over a bounded address space). Weights mirror the original
/// proptest strategy: 6:1:1:1:1.
fn arb_cta(r: &mut Rng) -> Cta {
    let n = r.gen_range(0, 40) as usize;
    let ops = (0..n)
        .map(|_| match r.gen_range(0, 10) {
            0..=5 => {
                let a = Addr(r.gen_range(0, 512) * 128);
                if r.gen_bool(0.5) {
                    TraceOp::Access(Access::store(a))
                } else {
                    TraceOp::Access(Access::load(a))
                }
            }
            6 => {
                let a = Addr(r.gen_range(0, 512) * 128);
                let s = if r.gen_bool(0.5) {
                    Scope::Gpu
                } else {
                    Scope::Sys
                };
                TraceOp::Access(Access::new(a, AccessKind::Atomic, s))
            }
            7 => TraceOp::Delay(r.gen_range(1, 200) as u32),
            8 => TraceOp::Acquire(match r.gen_range(0, 3) {
                0 => Scope::Cta,
                1 => Scope::Gpu,
                _ => Scope::Sys,
            }),
            _ => TraceOp::Release(match r.gen_range(0, 3) {
                0 => Scope::Cta,
                1 => Scope::Gpu,
                _ => Scope::Sys,
            }),
        })
        .collect();
    Cta::new(ops)
}

fn arb_trace(r: &mut Rng) -> WorkloadTrace {
    let n_kernels = r.gen_range(1, 4) as usize;
    let kernels = (0..n_kernels)
        .map(|_| {
            let n_ctas = r.gen_range(1, 9) as usize;
            Kernel::new((0..n_ctas).map(|_| arb_cta(r)).collect())
        })
        .collect();
    WorkloadTrace::new("random", kernels)
}

/// Liveness: arbitrary flag-free traces terminate under every
/// protocol, and the metrics account for every access issued.
#[test]
fn random_traces_complete_with_conserved_accounting() {
    for case in 0..CASES {
        let mut r = Rng::new(0xACC7 + case);
        let trace = arb_trace(&mut r);
        let expected_accesses = trace.num_accesses() as u64;
        for p in ProtocolKind::ALL {
            let m = Engine::new(EngineConfig::small_test(p)).run(&trace);
            // Loads + stores together count every access exactly once,
            // except atomics which count as both.
            let mut atomics = 0u64;
            for k in &trace.kernels {
                for c in &k.ctas {
                    for op in &c.ops {
                        if let TraceOp::Access(a) = op {
                            if a.kind == AccessKind::Atomic {
                                atomics += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(m.loads + m.stores, expected_accesses + atomics, "{}", p);
            assert!(m.l1_hits <= m.loads, "{}", p);
        }
    }
}

/// Determinism: the same trace yields identical cycle counts twice.
#[test]
fn random_traces_are_deterministic() {
    for case in 0..CASES {
        let mut r = Rng::new(0xDE7E + case);
        let trace = arb_trace(&mut r);
        for p in [ProtocolKind::Hmg, ProtocolKind::SwHier] {
            let a = Engine::new(EngineConfig::small_test(p)).run(&trace);
            let b = Engine::new(EngineConfig::small_test(p)).run(&trace);
            assert_eq!(a.total_cycles, b.total_cycles);
            assert_eq!(a.events, b.events);
        }
    }
}

/// Software protocols never emit invalidation traffic, for any trace.
#[test]
fn sw_protocols_never_invalidate() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5091 + case);
        let trace = arb_trace(&mut r);
        for p in [
            ProtocolKind::SwNonHier,
            ProtocolKind::SwHier,
            ProtocolKind::Ideal,
        ] {
            let m = Engine::new(EngineConfig::small_test(p)).run(&trace);
            assert_eq!(m.invs_from_stores + m.invs_from_evictions, 0, "{}", p);
        }
    }
}
