//! Randomized property tests on the workload generators: structural
//! well-formedness of every generated trace. Driven by the in-repo
//! SplitMix64 [`Rng`] rather than an external property-testing crate so
//! the workspace builds offline.

use hmg_protocol::TraceOp;
use hmg_sim::Rng;
use hmg_workloads::suite::table3;
use hmg_workloads::Scale;

const CASES: u64 = 12;

/// Every access in a trace is line-aligned and within the allocated
/// address space; every WaitFlag has a satisfying number of SetFlags.
fn check_well_formed(trace: &hmg_protocol::WorkloadTrace) -> Result<(), String> {
    let mut set_counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut waits: Vec<(u32, u32)> = Vec::new();
    for k in &trace.kernels {
        for c in &k.ctas {
            for op in &c.ops {
                match *op {
                    TraceOp::Access(a) if !a.addr.0.is_multiple_of(128) => {
                        return Err(format!("unaligned access {:?}", a.addr));
                    }
                    TraceOp::Access(_) => {}
                    TraceOp::SetFlag(f) => *set_counts.entry(f).or_insert(0) += 1,
                    TraceOp::WaitFlag { flag, count } => waits.push((flag, count)),
                    _ => {}
                }
            }
        }
    }
    for (flag, count) in waits {
        let sets = set_counts.get(&flag).copied().unwrap_or(0);
        if sets < count {
            return Err(format!(
                "flag {flag} waited to {count} but only set {sets} times (deadlock)"
            ));
        }
    }
    Ok(())
}

/// Every Table III workload generates a structurally sound trace at
/// Tiny scale, for arbitrary seeds.
#[test]
fn all_workloads_well_formed_at_tiny() {
    for case in 0..CASES {
        let seed = Rng::new(0x3113 + case).next_u64();
        for spec in table3() {
            let t = spec.generate(Scale::Tiny, seed);
            assert!(t.num_accesses() > 0, "{} empty", spec.abbrev);
            if let Err(e) = check_well_formed(&t) {
                panic!("{}: {e}", spec.abbrev);
            }
        }
    }
}

/// Generation is a pure function of (spec, scale, seed).
#[test]
fn generation_is_pure() {
    for case in 0..CASES {
        let mut r = Rng::new(0x902E + case);
        let seed = r.next_u64();
        let idx = r.gen_range(0, 20) as usize;
        let spec = table3()[idx];
        let a = spec.generate(Scale::Tiny, seed);
        let b = spec.generate(Scale::Tiny, seed);
        assert_eq!(a, b);
    }
}

/// Footprint scaling is monotone and capacity factors are >= 1.
#[test]
fn footprint_scaling_monotone() {
    for case in 0..64u64 {
        let mut r = Rng::new(0xF007 + case);
        let mb = 1.0 + r.gen_f64() * 7999.0;
        let tiny = Scale::Tiny.footprint(mb);
        let small = Scale::Small.footprint(mb);
        let full = Scale::Full.footprint(mb);
        assert!(tiny <= small, "{mb}");
        assert!(small <= full, "{mb}");
        for s in [Scale::Tiny, Scale::Small, Scale::Full] {
            assert!(s.capacity_factor(mb) >= 1.0);
        }
        // Factor * scaled footprint reproduces the paper footprint (to
        // rounding) wherever clamping did not saturate.
        let f = Scale::Small.capacity_factor(mb);
        let recon = f * small as f64;
        assert!((recon / (mb * 1024.0 * 1024.0) - 1.0).abs() < 0.01);
    }
}

#[test]
fn small_scale_traces_are_well_formed_for_default_seed() {
    for spec in table3() {
        let t = spec.generate(Scale::Small, 2020);
        check_well_formed(&t).unwrap_or_else(|e| panic!("{}: {e}", spec.abbrev));
    }
}
