//! The sharing-pattern archetypes behind the Table III suite.
//!
//! Each archetype reproduces one of the communication structures the
//! paper identifies (Sections II-B, VI): read-only weight broadcast with
//! inter-kernel producer-consumer tensors (ML layers and RNN timesteps),
//! halo-exchange stencils (HPC), power-law irregular read-write sharing
//! (graph analytics), fine-grained wavefronts (Needleman-Wunsch,
//! pathfinder), and flag-synchronized solver phases with `.gpu`-scoped
//! operations (cuSolver, namd, mst).

use hmg_protocol::{AccessKind, Kernel, Scope, WorkloadTrace};
use hmg_sim::Rng;

use crate::gen::{AddrSpace, CtaBuilder};

/// Grid and budget parameters shared by all archetypes, derived from the
/// experiment scale by the suite.
#[derive(Debug, Clone, Copy)]
pub struct Dims {
    /// CTAs per kernel.
    pub ctas: u64,
    /// Kernel launches (or phases, for the solver archetype).
    pub kernels: u32,
    /// Total footprint in bytes.
    pub footprint: u64,
    /// Generator seed.
    pub seed: u64,
}

/// Parameters for [`layers`]: ML conv layers and RNN timesteps.
#[derive(Debug, Clone, Copy)]
pub struct LayersParams {
    /// Fraction of the footprint holding read-only broadcast data
    /// (conv filter weights) sampled by every CTA in every kernel.
    pub bcast_frac: f64,
    /// Broadcast lines sampled per CTA per kernel.
    pub bcast_reads: u64,
    /// Fraction of the footprint holding per-CTA persistent slices
    /// (stashed RNN weights), streamed by their owner each kernel and
    /// homed locally by first touch.
    pub own_frac: f64,
    /// Own-slice lines streamed per CTA per kernel.
    pub own_reads: u64,
    /// Fraction of the footprint for *each* of the two ping-pong
    /// activation/state buffers. RNN layers keep this small (the
    /// timestep state; the bulk of their Table III footprint is weights
    /// stashed in registers and cold I/O buffers); conv layers make it
    /// large (activations dominate).
    pub state_frac: f64,
    /// Random reads over the *entire* previous activation buffer — the
    /// RNN-style all-to-all state broadcast between timesteps.
    pub state_reads: u64,
    /// Sequential reads of the previous activation buffer (conv
    /// producer-consumer movement between dependent kernels).
    pub tile_reads: u64,
    /// Output-tile lines written per CTA per kernel.
    pub tile_writes: u64,
    /// Fraction of `tile_reads` taken from a far-away (other-GPU) tile
    /// rather than this CTA's own input tile. Spreading the remote
    /// fraction evenly across CTAs mirrors real conv layers, where every
    /// CTA's input window overlaps data produced elsewhere.
    pub shift_frac: f64,
    /// Compute cycles between accesses.
    pub delay: u32,
}

/// ML layers / RNN timesteps: broadcast weights, per-CTA stashed slices,
/// and producer-consumer activations ping-ponging between two buffers.
pub fn layers(name: &str, d: Dims, p: LayersParams) -> WorkloadTrace {
    let mut space = AddrSpace::new();
    let bcast_bytes = ((d.footprint as f64 * p.bcast_frac) as u64).max(crate::gen::PAGE);
    let bcast = space.alloc(bcast_bytes);
    let own_bytes = ((d.footprint as f64 * p.own_frac) as u64).max(crate::gen::PAGE);
    let own = space.alloc(own_bytes);
    let act_bytes = ((d.footprint as f64 * p.state_frac) as u64).max(crate::gen::PAGE);
    let buf_a = space.alloc(act_bytes);
    let buf_b = space.alloc(act_bytes);
    // The rest of the Table III footprint is cold (allocated, rarely
    // touched): register-stashed weights, I/O buffers, etc.
    // Remote input reads come from the tile a quarter of the grid away
    // (another GPU on the 4-GPU machine).
    let displacement = d.ctas / 4 + 1;
    let remote_reads = (p.tile_reads as f64 * p.shift_frac) as u64;
    let local_reads = p.tile_reads - remote_reads;

    let mut kernels = Vec::with_capacity(d.kernels as usize);
    for k in 0..d.kernels {
        let (input, output) = if k % 2 == 0 {
            (buf_a, buf_b)
        } else {
            (buf_b, buf_a)
        };
        // Broadcast data is read by *every* CTA: the filter weights and
        // the previous timestep's state (a dense matvec reads all of
        // h_{t-1}). All CTAs of a kernel therefore draw the same sample —
        // the source of the intra-GPU redundancy Fig. 3 measures.
        let mut krng = Rng::new(d.seed ^ 0xb0adca57 ^ k as u64);
        let bcast_sample: Vec<u64> = (0..p.bcast_reads)
            .map(|_| krng.gen_range(0, bcast.lines()))
            .collect();
        let state_sample: Vec<u64> = (0..p.state_reads)
            .map(|_| krng.gen_range(0, input.lines()))
            .collect();
        let mut ctas = Vec::with_capacity(d.ctas as usize);
        for i in 0..d.ctas {
            let mut b = CtaBuilder::new();
            // Issue the far (other-GPU) input reads first so their long
            // latency overlaps the local work below, as real kernels
            // arrange (and as large kernels get for free).
            if remote_reads > 0 {
                let src = (i + displacement) % d.ctas;
                b.stream_loads(input.tile(src, d.ctas), 0, remote_reads, p.delay);
            }
            // Stream this CTA's stashed weight slice (locally homed).
            if p.own_reads > 0 {
                b.stream_loads(own.tile(i, d.ctas), 0, p.own_reads, p.delay);
            }
            // Sample the shared read-only weights. Every CTA reads the
            // same sample but starting at a different rotation, so the
            // redundant reads are spread over the kernel's lifetime
            // (they reach caches, not just in-flight merge windows).
            if !bcast_sample.is_empty() {
                let start = (i as usize * 7) % bcast_sample.len();
                for j in 0..bcast_sample.len() {
                    b.load(bcast, bcast_sample[(start + j) % bcast_sample.len()]);
                    b.delay(p.delay);
                }
            }
            // RNN-style state broadcast across the previous buffer, also
            // rotation-spread.
            if !state_sample.is_empty() {
                let start = (i as usize * 13) % state_sample.len();
                for j in 0..state_sample.len() {
                    b.load(input, state_sample[(start + j) % state_sample.len()]);
                    b.delay(p.delay);
                }
            }
            // Conv-style: the rest of this CTA's own input window.
            if local_reads > 0 {
                b.stream_loads(input.tile(i, d.ctas), 0, local_reads, p.delay);
            }
            // Produce this CTA's output tile, spread through the kernel.
            let mut w = CtaBuilder::new();
            w.stream_stores(output.tile(i, d.ctas), 0, p.tile_writes, p.delay);
            ctas.push(b.build_interleaved(w));
        }
        kernels.push(Kernel::new(ctas));
    }
    WorkloadTrace::new(name, kernels)
}

/// Parameters for [`stencil`].
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Interior lines read per CTA per iteration.
    pub interior_reads: u64,
    /// Halo lines read from each neighboring tile per iteration.
    pub halo: u64,
    /// Second-dimension neighbor stride in CTA indices (0 = 1-D stencil).
    pub stride2: u64,
    /// Lines written back per CTA per iteration.
    pub writes: u64,
    /// Compute cycles between accesses.
    pub delay: u32,
}

/// Iterative halo-exchange stencil over a single grid.
pub fn stencil(name: &str, d: Dims, p: StencilParams) -> WorkloadTrace {
    let mut space = AddrSpace::new();
    let grid = space.alloc(d.footprint);
    let mut kernels = Vec::with_capacity(d.kernels as usize);
    for _k in 0..d.kernels {
        let mut ctas = Vec::with_capacity(d.ctas as usize);
        for i in 0..d.ctas {
            let mut b = CtaBuilder::new();
            let own = grid.tile(i, d.ctas);
            // Halo first (possibly remote), then the local interior
            // stream overlaps its latency.
            let mut neighbors = vec![(i + d.ctas - 1) % d.ctas, (i + 1) % d.ctas];
            if p.stride2 > 0 {
                neighbors.push((i + d.ctas - p.stride2) % d.ctas);
                neighbors.push((i + p.stride2) % d.ctas);
            }
            for n in neighbors {
                let t = grid.tile(n, d.ctas);
                for h in 0..p.halo {
                    b.load(t, h);
                    b.delay(p.delay);
                }
            }
            b.stream_loads(own, 0, p.interior_reads, p.delay);
            let mut w = CtaBuilder::new();
            w.stream_stores(own, 0, p.writes, p.delay);
            ctas.push(b.build_interleaved(w));
        }
        kernels.push(Kernel::new(ctas));
    }
    WorkloadTrace::new(name, kernels)
}

/// Parameters for [`graph`].
#[derive(Debug, Clone, Copy)]
pub struct GraphParams {
    /// Zipf exponent of vertex popularity.
    pub zipf_s: f64,
    /// Irregular vertex reads per CTA per iteration.
    pub irregular_reads: u64,
    /// Sequential frontier lines read per CTA per iteration.
    pub frontier_reads: u64,
    /// Probability that an irregular access is followed by a write.
    pub write_frac: f64,
    /// Where the writes land: `true` = the CTA's own vertex partition
    /// (bfs-style distance updates — reads stay shared, writes are
    /// owner-local); `false` = the vertex just read (mst-style shared
    /// component updates, producing conflicts and false sharing).
    pub write_own_partition: bool,
    /// Use scoped atomics for the writes (mst-style) instead of stores.
    pub atomics: bool,
    /// Scope of the atomics.
    pub scope: Scope,
    /// Compute cycles between accesses.
    pub delay: u32,
}

/// Irregular graph analytics: each CTA owns a *fixed* neighbor set
/// (graph topology does not change between iterations), re-reads it
/// every iteration kernel, and updates a rotating subset — producing the
/// cross-iteration reuse that makes caching pay, plus the read-write
/// sharing and block-level false sharing the paper highlights for
/// `mst` (§VII-A).
pub fn graph(name: &str, d: Dims, p: GraphParams) -> WorkloadTrace {
    let mut space = AddrSpace::new();
    // Vertex data is the hot shared region; edge lists stream locally.
    let vertices = space.alloc(d.footprint / 4);
    let edges = space.alloc(3 * d.footprint / 4);

    // The fixed topology: CTA i's neighbor vertices, Zipf-popular.
    let neighbor_sets: Vec<Vec<u64>> = (0..d.ctas)
        .map(|i| {
            let mut rng = Rng::new(d.seed ^ 0x9e37 ^ i);
            (0..p.irregular_reads)
                .map(|_| rng.gen_zipf(vertices.lines(), p.zipf_s))
                .collect()
        })
        .collect();

    let mut kernels = Vec::with_capacity(d.kernels as usize);
    for k in 0..d.kernels {
        let mut ctas = Vec::with_capacity(d.ctas as usize);
        for i in 0..d.ctas {
            let mut rng = Rng::new(d.seed ^ 0x517f ^ ((k as u64) << 32) ^ i);
            let mut b = CtaBuilder::new();
            b.stream_loads(edges.tile(i, d.ctas), 0, p.frontier_reads, p.delay);
            let own_tile = vertices.tile(i, d.ctas);
            for &v in &neighbor_sets[i as usize] {
                b.load(vertices, v);
                b.delay(p.delay);
                if rng.gen_bool(p.write_frac) {
                    let (region, line) = if p.write_own_partition {
                        (own_tile, rng.gen_range(0, own_tile.lines()))
                    } else {
                        (vertices, v)
                    };
                    if p.atomics {
                        b.access(region, line, AccessKind::Atomic, p.scope);
                    } else {
                        b.store(region, line);
                    }
                    b.delay(p.delay);
                }
            }
            ctas.push(b.build());
        }
        kernels.push(Kernel::new(ctas));
    }
    WorkloadTrace::new(name, kernels)
}

/// Parameters for [`wavefront`].
#[derive(Debug, Clone, Copy)]
pub struct WavefrontParams {
    /// Lines of the previous step re-read each step.
    pub back_reads: u64,
    /// Boundary lines read from the left neighbor's previous-step tile.
    pub boundary_reads: u64,
    /// Lines written per CTA per step.
    pub writes: u64,
    /// Fraction of `back_reads` taken from the tile a quarter of the
    /// grid away (0 = straight rows): diagonal sweeps push a share of
    /// every CTA's consumption across GPM and GPU boundaries.
    pub shift_frac: f64,
    /// Compute cycles between accesses.
    pub delay: u32,
}

/// Wavefront/dynamic-programming sweeps: many small dependent kernels,
/// each consuming the previous step's boundary.
pub fn wavefront(name: &str, d: Dims, p: WavefrontParams) -> WorkloadTrace {
    let mut space = AddrSpace::new();
    let row_bytes = (d.footprint / 2).max(crate::gen::PAGE);
    let row_a = space.alloc(row_bytes);
    let row_b = space.alloc(row_bytes);
    let mut kernels = Vec::with_capacity(d.kernels as usize);
    for k in 0..d.kernels {
        let (prev, cur) = if k % 2 == 0 {
            (row_a, row_b)
        } else {
            (row_b, row_a)
        };
        let displacement = d.ctas / 4 + 1;
        let remote_reads = (p.back_reads as f64 * p.shift_frac) as u64;
        let local_reads = p.back_reads - remote_reads;
        let mut ctas = Vec::with_capacity(d.ctas as usize);
        for i in 0..d.ctas {
            let mut b = CtaBuilder::new();
            if remote_reads > 0 {
                let src = (i + displacement) % d.ctas;
                b.stream_loads(prev.tile(src, d.ctas), 0, remote_reads, p.delay);
            }
            b.stream_loads(prev.tile(i, d.ctas), 0, local_reads, p.delay);
            let left = (i + d.ctas - 1) % d.ctas;
            let lt = prev.tile(left, d.ctas);
            let edge = lt.lines().saturating_sub(p.boundary_reads);
            for h in 0..p.boundary_reads {
                b.load(lt, edge + h);
                b.delay(p.delay);
            }
            let mut w = CtaBuilder::new();
            w.stream_stores(cur.tile(i, d.ctas), 0, p.writes, p.delay);
            ctas.push(b.build_interleaved(w));
        }
        kernels.push(Kernel::new(ctas));
    }
    WorkloadTrace::new(name, kernels)
}

/// Parameters for [`solver`].
#[derive(Debug, Clone, Copy)]
pub struct SolverParams {
    /// Lines of each panel written by its producers.
    pub panel_writes: u64,
    /// Panel lines each consumer samples per phase.
    pub panel_reads: u64,
    /// Local trailing-update lines read+written per CTA per phase.
    pub trailing: u64,
    /// Scope used for the phase synchronization (the paper's
    /// `.gpu`-scoped workloads use [`Scope::Gpu`]).
    pub scope: Scope,
    /// Producer groups (phase `j`'s producers are CTAs with
    /// `i % groups == j % groups`).
    pub groups: u64,
    /// Compute cycles between accesses.
    pub delay: u32,
}

/// Flag-synchronized solver phases within a single kernel: a rotating
/// producer group writes a panel, releases at `scope`, and everyone else
/// acquires and consumes it — the fine-grained synchronization pattern
/// that kernel-launch-based coherence handles poorly.
pub fn solver(name: &str, d: Dims, p: SolverParams) -> WorkloadTrace {
    let mut space = AddrSpace::new();
    let panel_bytes = (d.footprint / 4).max(crate::gen::PAGE);
    let panels = space.alloc(panel_bytes);
    let trailing = space.alloc(d.footprint - panel_bytes.min(d.footprint));
    let phases = d.kernels;
    let producers_per_phase = (d.ctas / p.groups).max(1) as u32;

    let mut ctas = Vec::with_capacity(d.ctas as usize);
    for i in 0..d.ctas {
        let mut rng = Rng::new(d.seed ^ 0x501_4e8 ^ i);
        let mut b = CtaBuilder::new();
        for j in 0..phases {
            let panel = panels.tile(j as u64 % p.groups, p.groups);
            let is_producer = i % p.groups == j as u64 % p.groups;
            if is_producer {
                // Produce this phase's panel slice.
                let slice = panel.tile(i / p.groups, (d.ctas / p.groups).max(1));
                b.stream_stores(slice, 0, p.panel_writes, p.delay);
                b.release(p.scope);
                b.set_flag(j);
            } else {
                b.wait_flag(j, producers_per_phase);
                b.acquire(p.scope);
                b.random_loads(panel, p.panel_reads, &mut rng, p.delay);
            }
            // Everyone updates their local trailing tile.
            let own = trailing.tile(i, d.ctas);
            b.stream_loads(own, 0, p.trailing, p.delay);
            b.stream_stores(own, 0, p.trailing / 2, p.delay);
        }
        ctas.push(b.build());
    }
    WorkloadTrace::new(name, vec![Kernel::new(ctas)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims {
        Dims {
            ctas: 16,
            kernels: 3,
            footprint: 8 * 1024 * 1024,
            seed: 7,
        }
    }

    #[test]
    fn layers_produces_expected_structure() {
        let t = layers(
            "l",
            dims(),
            LayersParams {
                bcast_frac: 0.2,
                bcast_reads: 8,
                own_frac: 0.2,
                own_reads: 5,
                state_frac: 0.2,
                state_reads: 3,
                tile_reads: 8,
                tile_writes: 4,
                shift_frac: 0.25,
                delay: 2,
            },
        );
        assert_eq!(t.num_kernels(), 3);
        assert_eq!(t.num_ctas(), 48);
        assert_eq!(t.num_accesses(), 48 * (8 + 5 + 3 + 8 + 4));
    }

    #[test]
    fn layers_is_deterministic_per_seed() {
        let p = LayersParams {
            bcast_frac: 0.25,
            bcast_reads: 8,
            own_frac: 0.0,
            own_reads: 0,
            state_frac: 0.25,
            state_reads: 4,
            tile_reads: 8,
            tile_writes: 4,
            shift_frac: 0.25,
            delay: 0,
        };
        assert_eq!(layers("l", dims(), p), layers("l", dims(), p));
    }

    #[test]
    fn stencil_reads_neighbors() {
        let t = stencil(
            "s",
            dims(),
            StencilParams {
                interior_reads: 10,
                halo: 2,
                stride2: 4,
                writes: 5,
                delay: 0,
            },
        );
        // 10 interior + 4 neighbors x 2 halo + 5 writes per CTA.
        assert_eq!(t.num_accesses(), 48 * (10 + 8 + 5));
    }

    #[test]
    fn graph_mixes_reads_and_writes() {
        let t = graph(
            "g",
            dims(),
            GraphParams {
                zipf_s: 0.9,
                irregular_reads: 20,
                frontier_reads: 5,
                write_frac: 0.3,
                write_own_partition: true,
                atomics: false,
                scope: Scope::Cta,
                delay: 0,
            },
        );
        let n = t.num_accesses();
        let min = 48 * 25;
        let max = 48 * 45;
        assert!(n >= min && n <= max, "{n} not in [{min}, {max}]");
    }

    #[test]
    fn graph_atomics_use_requested_scope() {
        let t = graph(
            "g",
            dims(),
            GraphParams {
                zipf_s: 0.9,
                irregular_reads: 20,
                frontier_reads: 0,
                write_frac: 1.0,
                write_own_partition: false,
                atomics: true,
                scope: Scope::Gpu,
                delay: 0,
            },
        );
        let mut atomics = 0;
        for k in &t.kernels {
            for c in &k.ctas {
                for op in &c.ops {
                    if let hmg_protocol::TraceOp::Access(a) = op {
                        if a.kind == AccessKind::Atomic {
                            assert_eq!(a.scope, Scope::Gpu);
                            atomics += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(atomics, 48 * 20);
    }

    #[test]
    fn wavefront_has_many_small_kernels() {
        let mut d = dims();
        d.kernels = 10;
        let t = wavefront(
            "w",
            d,
            WavefrontParams {
                back_reads: 4,
                boundary_reads: 2,
                writes: 4,
                shift_frac: 0.25,
                delay: 0,
            },
        );
        assert_eq!(t.num_kernels(), 10);
        assert_eq!(t.num_accesses(), 10 * 16 * 10);
    }

    #[test]
    fn solver_is_one_kernel_with_flags() {
        let t = solver(
            "cu",
            dims(),
            SolverParams {
                panel_writes: 4,
                panel_reads: 4,
                trailing: 8,
                scope: Scope::Gpu,
                groups: 4,
                delay: 0,
            },
        );
        assert_eq!(t.num_kernels(), 1);
        let mut sets = 0;
        let mut waits = 0;
        for c in &t.kernels[0].ctas {
            for op in &c.ops {
                match op {
                    hmg_protocol::TraceOp::SetFlag(_) => sets += 1,
                    hmg_protocol::TraceOp::WaitFlag { .. } => waits += 1,
                    _ => {}
                }
            }
        }
        assert!(sets > 0 && waits > 0);
        // Every phase: 4 producers set, 12 consumers wait (16 CTAs, 4 groups).
        assert_eq!(sets, 3 * 4);
        assert_eq!(waits, 3 * 12);
    }
}
