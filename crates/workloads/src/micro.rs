//! Microbenchmarks with closed-form cycle predictions, for the Fig. 7
//! simulator-correlation experiment.
//!
//! The paper validates its proprietary simulator against a Quadro GV100.
//! Real hardware is unavailable here, so we validate the discrete-event
//! timing model against first-principles analytical bounds instead: each
//! microbenchmark is simple enough (pure issue-bound, DRAM-bound,
//! inter-GPU-bound, or compute-bound) that its execution time can be
//! predicted in closed form from the machine parameters. DESIGN.md §1
//! records this substitution.

use hmg_protocol::{Cta, Kernel, WorkloadTrace};

use crate::gen::{AddrSpace, CtaBuilder, LINE};

/// The machine parameters the analytical model needs, in simulator units.
/// (Filled in from `EngineConfig` by the experiment driver; kept separate
/// so this crate does not depend on the engine.)
#[derive(Debug, Clone, Copy)]
pub struct MachineParams {
    /// Cycles per issued memory instruction per SM.
    pub issue_cycles: f64,
    /// L1 lookup latency in cycles.
    pub l1_latency: f64,
    /// L2 access latency in cycles.
    pub l2_latency: f64,
    /// DRAM access latency in cycles.
    pub dram_latency: f64,
    /// DRAM bandwidth per GPM, bytes/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Inter-GPU bandwidth per GPU per direction, bytes/cycle.
    pub inter_gpu_bytes_per_cycle: f64,
    /// Cache line size in bytes.
    pub line_bytes: f64,
    /// Load response size in bytes (header + line).
    pub resp_bytes: f64,
    /// Kernel launch overhead in cycles.
    pub kernel_launch: f64,
    /// GPMs in the system.
    pub num_gpms: f64,
    /// GPUs in the system.
    pub num_gpus: f64,
}

/// One microbenchmark: a trace plus its analytical cycle prediction.
pub struct Micro {
    /// Name, including the size point.
    pub name: String,
    /// The trace to simulate.
    pub trace: WorkloadTrace,
    /// Predicted execution cycles for the machine in question.
    pub predict: Box<dyn Fn(&MachineParams) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for Micro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Micro").field("name", &self.name).finish()
    }
}

/// Issue-bound: one SM re-reads one resident line `n` times.
fn issue_bound(n: u64) -> Micro {
    let mut b = CtaBuilder::new();
    let mut space = AddrSpace::new();
    let r = space.alloc(LINE);
    // Warm the line, wait for the fill, then hammer it.
    b.load(r, 0).delay(200_000);
    for _ in 0..n {
        b.load(r, 0);
    }
    let trace = WorkloadTrace::new(
        format!("issue-bound-{n}"),
        vec![Kernel::new(vec![b.build()])],
    );
    Micro {
        name: format!("issue-bound-{n}"),
        trace,
        predict: Box::new(move |m| m.kernel_launch + 200_000.0 + n as f64 * m.issue_cycles),
    }
}

/// Compute-bound: one CTA per GPM executes `n` fixed delays.
fn compute_bound(n: u64, d: u32) -> Micro {
    let mut ctas = Vec::new();
    for _ in 0..16 {
        let mut b = CtaBuilder::new();
        for _ in 0..n {
            b.delay(d);
        }
        ctas.push(b.build());
    }
    let trace = WorkloadTrace::new(format!("compute-bound-{n}x{d}"), vec![Kernel::new(ctas)]);
    Micro {
        name: format!("compute-bound-{n}x{d}"),
        trace,
        predict: Box::new(move |m| m.kernel_launch + n as f64 * d as f64),
    }
}

/// Local-DRAM-bound: `sms` CTAs per GPM stream disjoint local lines.
fn dram_bound(lines_per_cta: u64, sms: u64) -> Micro {
    let mut space = AddrSpace::new();
    let mut ctas = Vec::new();
    // One region per GPM so first touch homes each region locally; the
    // CTAs of a GPM stream disjoint halves.
    for _gpm in 0..16u64 {
        let region = space.alloc(lines_per_cta * sms * LINE);
        for s in 0..sms {
            let mut b = CtaBuilder::new();
            let tile = region.tile(s, sms);
            b.stream_loads(tile, 0, lines_per_cta, 0);
            ctas.push(b.build());
        }
    }
    let n = lines_per_cta;
    let trace = WorkloadTrace::new(format!("dram-bound-{n}x{sms}"), vec![Kernel::new(ctas)]);
    Micro {
        name: format!("dram-bound-{n}x{sms}"),
        trace,
        predict: Box::new(move |m| {
            // Each GPM reads n * sms lines from its own DRAM partition.
            let bytes = n as f64 * sms as f64 * m.line_bytes;
            let dram_time = bytes / m.dram_bytes_per_cycle;
            let issue_time = n as f64 * m.issue_cycles;
            m.kernel_launch
                + dram_time.max(issue_time)
                + m.l1_latency
                + m.l2_latency
                + m.dram_latency
        }),
    }
}

/// Inter-GPU-bound: the GPMs of GPUs 1..N stream distinct lines homed
/// on GPU0, with enough concurrent CTAs per GPM (8) that GPU0's egress
/// link — not per-SM memory-level parallelism — is the binding
/// constraint its prediction assumes.
fn inter_gpu_bound(lines_per_cta: u64) -> Micro {
    let mut space = AddrSpace::new();
    let consumer_gpms = 12u64;
    let ctas_per_gpm = 8u64;
    let consumers = consumer_gpms * ctas_per_gpm;
    let region = space.alloc(consumers * lines_per_cta * LINE);
    let mut touch = CtaBuilder::new();
    // Touch one line of every page so first-touch homes the region at GPM0.
    let pages = region.bytes() / crate::gen::PAGE;
    for p in 0..pages {
        touch.load(region, p * (crate::gen::PAGE / LINE));
    }
    // Kernel 0: contiguous scheduling sends CTA 0 to GPM0.
    let mut k0 = vec![touch.build()];
    k0.extend((1..16).map(|_| Cta::new(vec![])));

    // Kernel 1: 16 GPMs x 8 CTAs; the 32 CTAs of GPU0 stay idle.
    let mut k1: Vec<Cta> = Vec::new();
    let mut slice = 0u64;
    for gpm in 0..16u64 {
        for _ in 0..ctas_per_gpm {
            if gpm < 4 {
                k1.push(Cta::new(vec![]));
            } else {
                let mut b = CtaBuilder::new();
                b.stream_loads(region.tile(slice, consumers), 0, lines_per_cta, 0);
                slice += 1;
                k1.push(b.build());
            }
        }
    }
    let n = lines_per_cta;
    let trace = WorkloadTrace::new(
        format!("inter-gpu-bound-{n}"),
        vec![Kernel::new(k0), Kernel::new(k1)],
    );
    Micro {
        name: format!("inter-gpu-bound-{n}"),
        trace,
        predict: Box::new(move |m| {
            // GPU0 must serve all responses through one egress port.
            let resp_bytes = 96.0 * n as f64 * m.resp_bytes;
            let egress_time = resp_bytes / m.inter_gpu_bytes_per_cycle;
            // Touch kernel: one load per page, latency-bound per GPM0 SM.
            let touch_time = (96.0 * n as f64 * m.line_bytes / (2.0 * 1024.0 * 1024.0) + 1.0)
                * (m.dram_latency + m.l2_latency);
            2.0 * m.kernel_launch + touch_time + egress_time + m.dram_latency
        }),
    }
}

/// The full correlation suite: several size points per bound type, so
/// the Fig. 7 scatter spans multiple orders of magnitude.
pub fn correlation_suite() -> Vec<Micro> {
    let mut v = Vec::new();
    for n in [2_000, 20_000, 200_000] {
        v.push(issue_bound(n));
    }
    for (n, d) in [(1_000, 50), (10_000, 50), (10_000, 500)] {
        v.push(compute_bound(n, d));
    }
    for (n, sms) in [(2_000, 8), (10_000, 8), (40_000, 8)] {
        v.push(dram_bound(n, sms));
    }
    for n in [250, 1_000, 4_000] {
        v.push(inter_gpu_bound(n));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams {
            issue_cycles: 2.0,
            l1_latency: 30.0,
            l2_latency: 120.0,
            dram_latency: 350.0,
            dram_bytes_per_cycle: 192.0,
            inter_gpu_bytes_per_cycle: 154.0,
            line_bytes: 128.0,
            resp_bytes: 144.0,
            kernel_launch: 3000.0,
            num_gpms: 16.0,
            num_gpus: 4.0,
        }
    }

    #[test]
    fn suite_covers_all_bound_types_and_sizes() {
        let suite = correlation_suite();
        assert_eq!(suite.len(), 12);
        for m in &suite {
            assert!(m.trace.num_kernels() >= 1, "{}", m.name);
            let p = (m.predict)(&params());
            assert!(p > 0.0, "{} predicts {p}", m.name);
        }
    }

    #[test]
    fn predictions_grow_with_size() {
        let p = params();
        let a = (issue_bound(1_000).predict)(&p);
        let b = (issue_bound(1_000_000).predict)(&p);
        // The warm-up constant is ~203k cycles; a million issues dominate it.
        assert!(b > a * 5.0, "a={a} b={b}");
        let c = (dram_bound(1_000, 8).predict)(&p);
        let d = (dram_bound(40_000, 8).predict)(&p);
        assert!(d > c * 5.0);
    }

    #[test]
    fn inter_gpu_bound_is_egress_limited() {
        let p = params();
        let n = 20_000u64;
        let m = (inter_gpu_bound(n).predict)(&p);
        let egress = 12.0 * n as f64 * p.resp_bytes / p.inter_gpu_bytes_per_cycle;
        assert!(m >= egress, "prediction must include egress serialization");
    }

    #[test]
    fn traces_are_structurally_sane() {
        for m in correlation_suite() {
            for k in &m.trace.kernels {
                for c in &k.ctas {
                    for op in &c.ops {
                        if let hmg_protocol::TraceOp::Access(a) = op {
                            assert_eq!(a.addr.0 % LINE, 0, "{}: unaligned", m.name);
                        }
                    }
                }
            }
        }
    }
}
