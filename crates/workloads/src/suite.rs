//! The Table III benchmark suite: 20 workloads, their paper-reported
//! footprints, and the archetype parameters that reproduce each one's
//! sharing structure.

use hmg_protocol::{Scope, WorkloadTrace};

use crate::archetypes::{
    graph, layers, solver, stencil, wavefront, Dims, GraphParams, LayersParams, SolverParams,
    StencilParams, WavefrontParams,
};

/// Experiment scale. The paper's traces run on an industrial simulator
/// farm; we provide three sizes with the same sharing structure:
///
/// * `Tiny` — seconds-fast, sized for the `EngineConfig::small_test`
///   machine (unit/integration tests).
/// * `Small` — the default for figure regeneration on the Table II
///   machine: footprints are the paper's divided by 16 (clamped to stay
///   far above the 12 MB/GPU L2), access counts trimmed accordingly.
/// * `Full` — paper-sized footprints; slow, for spot checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Test-sized; pair with `EngineConfig::small_test`.
    Tiny,
    /// Default benchmarking scale; pair with `EngineConfig::paper_default`.
    #[default]
    Small,
    /// Paper-sized footprints.
    Full,
}

impl Scale {
    /// CTAs per kernel grid.
    pub fn ctas(self) -> u64 {
        match self {
            Scale::Tiny => 8,
            Scale::Small => 512,
            Scale::Full => 2048,
        }
    }

    /// CTAs for the persistent-kernel solver archetype. These must all be
    /// resident simultaneously (each CTA occupies an SM while flag
    /// synchronization is in progress), so the count may not exceed the
    /// total SMs of the paired engine configuration.
    pub fn resident_ctas(self) -> u64 {
        match self {
            Scale::Tiny => 8,    // small_test: 2 GPUs x 2 GPMs x 2 SMs
            Scale::Small => 512, // paper_default: 512 SMs
            Scale::Full => 512,
        }
    }

    /// Caps a workload's kernel count.
    pub fn kernels(self, base: u32) -> u32 {
        match self {
            Scale::Tiny => base.min(3),
            Scale::Small => base.min(16),
            Scale::Full => base,
        }
    }

    /// Scales a per-CTA access amount. The `Small` multiplier keeps each
    /// kernel's memory work large relative to launch overhead and
    /// round-trip latency, so bandwidth queueing — the effect the paper's
    /// evaluation hinges on — dominates as it does at full scale.
    pub fn amount(self, base: u64) -> u64 {
        match self {
            Scale::Tiny => (base / 8).max(2),
            Scale::Small => base * 3,
            Scale::Full => base * 12,
        }
    }

    /// Scales a paper footprint (in MB) to bytes. Workloads small enough
    /// to simulate directly (≤ 48 MB — the RNN layers, bfs) keep their
    /// exact Table III footprint at `Small`, and thus run on the exact
    /// Table II machine.
    pub fn footprint(self, paper_mb: f64) -> u64 {
        let mb = 1024.0 * 1024.0;
        let bytes = match self {
            Scale::Tiny => (paper_mb * mb / 256.0).clamp(4.0 * mb, 8.0 * mb),
            Scale::Small if paper_mb <= 48.0 => paper_mb * mb,
            Scale::Small => (paper_mb * mb / 16.0).clamp(24.0 * mb, 160.0 * mb),
            Scale::Full => paper_mb * mb,
        };
        bytes as u64
    }

    /// How much the machine's cache/directory capacities must shrink to
    /// match this scale's footprint reduction, preserving the paper's
    /// footprint-to-cache ratios. 1.0 at `Full` (exact Table II) and at
    /// `Tiny` (which pairs with the already-miniature test machine).
    pub fn capacity_factor(self, paper_mb: f64) -> f64 {
        match self {
            Scale::Tiny => 1.0,
            Scale::Small | Scale::Full => {
                (paper_mb * 1024.0 * 1024.0 / self.footprint(paper_mb) as f64).max(1.0)
            }
        }
    }
}

/// Benchmark provenance groups of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// NVIDIA cuSolver library kernel.
    CuSolver,
    /// DOE proxy/production HPC applications.
    Hpc,
    /// LoneStar irregular graph workloads.
    Lonestar,
    /// Machine-learning layers.
    Ml,
    /// Rodinia kernels.
    Rodinia,
}

/// Which archetype generates a workload, with its tuned parameters.
#[derive(Debug, Clone, Copy)]
enum Arche {
    Layers { kernels: u32, p: LayersParams },
    Stencil { kernels: u32, p: StencilParams },
    Graph { kernels: u32, p: GraphParams },
    Wavefront { kernels: u32, p: WavefrontParams },
    Solver { phases: u32, p: SolverParams },
}

/// One Table III benchmark.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Full benchmark name as listed in Table III.
    pub name: &'static str,
    /// Abbreviation used on the figures' x-axes.
    pub abbrev: &'static str,
    /// Memory footprint reported in Table III, in MB.
    pub paper_footprint_mb: f64,
    /// Provenance group.
    pub category: Category,
    arche: Arche,
}

impl WorkloadSpec {
    /// The capacity-scaling factor for this workload at `scale`
    /// (see [`Scale::capacity_factor`]).
    pub fn capacity_factor(&self, scale: Scale) -> f64 {
        scale.capacity_factor(self.paper_footprint_mb)
    }

    /// Whether this workload runs as a single persistent kernel whose
    /// CTAs synchronize through flags. Such grids must be fully resident
    /// ([`Scale::resident_ctas`] is sized for the default Table II
    /// machine), so experiments that shrink the machine's SM count must
    /// exclude these workloads or they would deadlock by construction.
    pub fn uses_persistent_kernel(&self) -> bool {
        matches!(self.arche, Arche::Solver { .. })
    }

    /// Generates the synthetic trace at `scale` with the given seed.
    pub fn generate(&self, scale: Scale, seed: u64) -> WorkloadTrace {
        let footprint = scale.footprint(self.paper_footprint_mb);
        match self.arche {
            Arche::Layers { kernels, p } => {
                let d = Dims {
                    ctas: scale.ctas(),
                    kernels: scale.kernels(kernels),
                    footprint,
                    seed,
                };
                let p = LayersParams {
                    bcast_reads: scale.amount(p.bcast_reads),
                    own_reads: scale.amount(p.own_reads),
                    state_reads: scale.amount(p.state_reads),
                    tile_reads: scale.amount(p.tile_reads),
                    tile_writes: scale.amount(p.tile_writes),
                    ..p
                };
                layers(self.abbrev, d, p)
            }
            Arche::Stencil { kernels, p } => {
                let d = Dims {
                    ctas: scale.ctas(),
                    kernels: scale.kernels(kernels),
                    footprint,
                    seed,
                };
                let p = StencilParams {
                    interior_reads: scale.amount(p.interior_reads),
                    writes: scale.amount(p.writes),
                    stride2: if p.stride2 > 0 {
                        (scale.ctas() / 16).max(1)
                    } else {
                        0
                    },
                    ..p
                };
                stencil(self.abbrev, d, p)
            }
            Arche::Graph { kernels, p } => {
                let d = Dims {
                    ctas: scale.ctas(),
                    kernels: scale.kernels(kernels),
                    footprint,
                    seed,
                };
                let p = GraphParams {
                    irregular_reads: scale.amount(p.irregular_reads),
                    frontier_reads: scale.amount(p.frontier_reads),
                    ..p
                };
                graph(self.abbrev, d, p)
            }
            Arche::Wavefront { kernels, p } => {
                let d = Dims {
                    ctas: scale.ctas(),
                    kernels: scale.kernels(kernels),
                    footprint,
                    seed,
                };
                let p = WavefrontParams {
                    back_reads: scale.amount(p.back_reads),
                    writes: scale.amount(p.writes),
                    ..p
                };
                wavefront(self.abbrev, d, p)
            }
            Arche::Solver { phases, p } => {
                let d = Dims {
                    ctas: scale.resident_ctas(),
                    kernels: scale.kernels(phases),
                    footprint,
                    seed,
                };
                let p = SolverParams {
                    panel_writes: scale.amount(p.panel_writes),
                    panel_reads: scale.amount(p.panel_reads),
                    trailing: scale.amount(p.trailing),
                    ..p
                };
                solver(self.abbrev, d, p)
            }
        }
    }
}

/// The 20 Table III workloads, in the order the paper's figures plot
/// them (left: coarse-grained/local; right: fine-grained sharing).
pub fn table3() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "ML overfeat layer1",
            abbrev: "overfeat",
            paper_footprint_mb: 618.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 6,
                p: LayersParams {
                    bcast_frac: 0.02,
                    bcast_reads: 6,
                    own_frac: 0.0,
                    own_reads: 0,
                    state_frac: 0.48,
                    state_reads: 0,
                    tile_reads: 60,
                    tile_writes: 20,
                    shift_frac: 0.02,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "HPC MiniAMR-test2",
            abbrev: "MiniAMR",
            paper_footprint_mb: 1800.0,
            category: Category::Hpc,
            arche: Arche::Stencil {
                kernels: 10,
                p: StencilParams {
                    interior_reads: 50,
                    halo: 2,
                    stride2: 1,
                    writes: 16,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "ML AlexNet conv2",
            abbrev: "AlexNet",
            paper_footprint_mb: 812.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 8,
                p: LayersParams {
                    bcast_frac: 0.01,
                    bcast_reads: 12,
                    own_frac: 0.0,
                    own_reads: 0,
                    state_frac: 0.46,
                    state_reads: 0,
                    tile_reads: 50,
                    tile_writes: 16,
                    shift_frac: 0.05,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "HPC CoMD-xyz49",
            abbrev: "CoMD",
            paper_footprint_mb: 313.0,
            category: Category::Hpc,
            arche: Arche::Stencil {
                kernels: 10,
                p: StencilParams {
                    interior_reads: 40,
                    halo: 4,
                    stride2: 1,
                    writes: 12,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "HPC HPGMG",
            abbrev: "HPGMG",
            paper_footprint_mb: 1320.0,
            category: Category::Hpc,
            arche: Arche::Stencil {
                kernels: 16,
                p: StencilParams {
                    interior_reads: 30,
                    halo: 6,
                    stride2: 1,
                    writes: 10,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "HPC MiniContact",
            abbrev: "MiniContact",
            paper_footprint_mb: 246.0,
            category: Category::Hpc,
            arche: Arche::Graph {
                kernels: 8,
                p: GraphParams {
                    zipf_s: 0.6,
                    irregular_reads: 15,
                    frontier_reads: 20,
                    write_frac: 0.10,
                    write_own_partition: true,
                    atomics: false,
                    scope: Scope::Cta,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "Rodinia pathfinder",
            abbrev: "pathfinder",
            paper_footprint_mb: 1490.0,
            category: Category::Rodinia,
            arche: Arche::Wavefront {
                kernels: 20,
                p: WavefrontParams {
                    back_reads: 10,
                    boundary_reads: 2,
                    writes: 8,
                    shift_frac: 0.0,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "HPC Nekbone-10",
            abbrev: "Nekbone",
            paper_footprint_mb: 178.0,
            category: Category::Hpc,
            arche: Arche::Stencil {
                kernels: 12,
                p: StencilParams {
                    interior_reads: 40,
                    halo: 3,
                    stride2: 0,
                    writes: 14,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "cuSolver",
            abbrev: "cuSolver",
            paper_footprint_mb: 1600.0,
            category: Category::CuSolver,
            arche: Arche::Solver {
                phases: 12,
                p: SolverParams {
                    panel_writes: 24,
                    panel_reads: 24,
                    trailing: 24,
                    scope: Scope::Gpu,
                    groups: 8,
                    delay: 2,
                },
            },
        },
        WorkloadSpec {
            name: "HPC namd2.10",
            abbrev: "namd2.10",
            paper_footprint_mb: 72.0,
            category: Category::Hpc,
            arche: Arche::Solver {
                phases: 10,
                p: SolverParams {
                    panel_writes: 12,
                    panel_reads: 16,
                    trailing: 20,
                    scope: Scope::Gpu,
                    groups: 8,
                    delay: 3,
                },
            },
        },
        WorkloadSpec {
            name: "ML resnet",
            abbrev: "resnet",
            paper_footprint_mb: 3200.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 10,
                p: LayersParams {
                    bcast_frac: 0.004,
                    bcast_reads: 20,
                    own_frac: 0.0,
                    own_reads: 0,
                    state_frac: 0.44,
                    state_reads: 6,
                    tile_reads: 34,
                    tile_writes: 12,
                    shift_frac: 0.27,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "Lonestar mst-road-fla",
            abbrev: "mst",
            paper_footprint_mb: 83.0,
            category: Category::Lonestar,
            arche: Arche::Graph {
                kernels: 10,
                p: GraphParams {
                    zipf_s: 0.95,
                    irregular_reads: 25,
                    frontier_reads: 8,
                    write_frac: 0.40,
                    write_own_partition: false,
                    atomics: true,
                    scope: Scope::Gpu,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "Rodinia nw-16K-10",
            abbrev: "nw-16K",
            paper_footprint_mb: 2000.0,
            category: Category::Rodinia,
            arche: Arche::Wavefront {
                kernels: 24,
                p: WavefrontParams {
                    back_reads: 10,
                    boundary_reads: 6,
                    writes: 8,
                    shift_frac: 0.13,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "ML lstm layer2",
            abbrev: "lstm",
            paper_footprint_mb: 710.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 16,
                p: LayersParams {
                    bcast_frac: 0.02,
                    bcast_reads: 4,
                    own_frac: 0.10,
                    own_reads: 4,
                    state_frac: 0.008,
                    state_reads: 240,
                    tile_reads: 0,
                    tile_writes: 2,
                    shift_frac: 0.27,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "ML RNN layer4 FW",
            abbrev: "RNN_FW",
            paper_footprint_mb: 40.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 16,
                p: LayersParams {
                    bcast_frac: 0.0,
                    bcast_reads: 0,
                    own_frac: 0.20,
                    own_reads: 3,
                    state_frac: 0.12,
                    state_reads: 260,
                    tile_reads: 0,
                    tile_writes: 2,
                    shift_frac: 0.27,
                    delay: 0,
                },
            },
        },
        WorkloadSpec {
            name: "ML RNN layer4 DGRAD",
            abbrev: "RNN_DGRAD",
            paper_footprint_mb: 29.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 16,
                p: LayersParams {
                    bcast_frac: 0.0,
                    bcast_reads: 0,
                    own_frac: 0.20,
                    own_reads: 3,
                    state_frac: 0.12,
                    state_reads: 290,
                    tile_reads: 0,
                    tile_writes: 2,
                    shift_frac: 0.31,
                    delay: 0,
                },
            },
        },
        WorkloadSpec {
            name: "ML GoogLeNet conv2",
            abbrev: "GoogLeNet",
            paper_footprint_mb: 1150.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 12,
                p: LayersParams {
                    bcast_frac: 0.006,
                    bcast_reads: 200,
                    own_frac: 0.0,
                    own_reads: 0,
                    state_frac: 0.40,
                    state_reads: 0,
                    tile_reads: 6,
                    tile_writes: 8,
                    shift_frac: 0.27,
                    delay: 1,
                },
            },
        },
        WorkloadSpec {
            name: "Lonestar bfs-road-fla",
            abbrev: "bfs",
            paper_footprint_mb: 26.0,
            category: Category::Lonestar,
            arche: Arche::Graph {
                kernels: 12,
                p: GraphParams {
                    zipf_s: 0.9,
                    irregular_reads: 40,
                    frontier_reads: 6,
                    write_frac: 0.06,
                    write_own_partition: true,
                    atomics: false,
                    scope: Scope::Cta,
                    delay: 0,
                },
            },
        },
        WorkloadSpec {
            name: "HPC snap",
            abbrev: "snap",
            paper_footprint_mb: 3440.0,
            category: Category::Hpc,
            // SN transport: every cell computation samples the shared
            // cross-section tables (broadcast, read-only); angular flux
            // ping-pongs between sweep kernels with octant remapping.
            arche: Arche::Layers {
                kernels: 16,
                p: LayersParams {
                    bcast_frac: 0.0015,
                    bcast_reads: 80,
                    own_frac: 0.0,
                    own_reads: 0,
                    state_frac: 0.30,
                    state_reads: 0,
                    tile_reads: 26,
                    tile_writes: 10,
                    shift_frac: 0.08,
                    delay: 0,
                },
            },
        },
        WorkloadSpec {
            name: "ML RNN layer4 WGRAD",
            abbrev: "RNN_WGRAD",
            paper_footprint_mb: 38.0,
            category: Category::Ml,
            arche: Arche::Layers {
                kernels: 16,
                p: LayersParams {
                    bcast_frac: 0.0,
                    bcast_reads: 0,
                    own_frac: 0.20,
                    own_reads: 3,
                    state_frac: 0.12,
                    state_reads: 240,
                    tile_reads: 0,
                    tile_writes: 4,
                    shift_frac: 0.30,
                    delay: 0,
                },
            },
        },
    ]
}

/// Looks up a workload by its figure-axis abbreviation.
pub fn by_abbrev(abbrev: &str) -> Option<WorkloadSpec> {
    table3().into_iter().find(|w| w.abbrev == abbrev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_unique_workloads() {
        let specs = table3();
        assert_eq!(specs.len(), 20);
        let mut names: Vec<_> = specs.iter().map(|s| s.abbrev).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn footprints_match_table_iii() {
        let f = |a: &str| by_abbrev(a).unwrap().paper_footprint_mb;
        assert_eq!(f("cuSolver"), 1600.0);
        assert_eq!(f("CoMD"), 313.0);
        assert_eq!(f("snap"), 3440.0);
        assert_eq!(f("bfs"), 26.0);
        assert_eq!(f("RNN_DGRAD"), 29.0);
        assert_eq!(f("nw-16K"), 2000.0);
    }

    #[test]
    fn every_workload_generates_at_tiny_scale() {
        for spec in table3() {
            let t = spec.generate(Scale::Tiny, 1);
            assert!(t.num_accesses() > 0, "{} is empty", spec.abbrev);
            assert!(t.num_kernels() > 0);
            assert_eq!(t.name, spec.abbrev);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in [by_abbrev("bfs").unwrap(), by_abbrev("lstm").unwrap()] {
            let a = spec.generate(Scale::Tiny, 3);
            let b = spec.generate(Scale::Tiny, 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scales_order_footprints_and_work() {
        let spec = by_abbrev("resnet").unwrap();
        let tiny = spec.generate(Scale::Tiny, 1);
        let small = spec.generate(Scale::Small, 1);
        assert!(tiny.num_accesses() < small.num_accesses());
        assert!(tiny.footprint_bytes() < small.footprint_bytes());
    }

    #[test]
    fn gpu_scoped_workloads_use_gpu_scope() {
        for a in ["cuSolver", "namd2.10", "mst"] {
            let spec = by_abbrev(a).unwrap();
            let t = spec.generate(Scale::Tiny, 1);
            let mut has_gpu_scope = false;
            for k in &t.kernels {
                for c in &k.ctas {
                    for op in &c.ops {
                        match op {
                            hmg_protocol::TraceOp::Release(Scope::Gpu)
                            | hmg_protocol::TraceOp::Acquire(Scope::Gpu) => {
                                has_gpu_scope = true;
                            }
                            hmg_protocol::TraceOp::Access(acc) if acc.scope == Scope::Gpu => {
                                has_gpu_scope = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
            assert!(has_gpu_scope, "{a} must use .gpu scope");
        }
    }

    #[test]
    fn small_scale_footprints_dwarf_the_scaled_l2() {
        // The point of the evaluation: allocated footprints far exceed
        // the (capacity-scaled) L2. Traces may leave part of the
        // allocation cold (e.g. register-stashed RNN weights), but must
        // still touch more than the scaled per-GPU L2.
        for spec in table3() {
            let allocated = Scale::Small.footprint(spec.paper_footprint_mb);
            assert!(allocated >= 24 * 1024 * 1024, "{}", spec.abbrev);
            let t = spec.generate(Scale::Small, 1);
            let scaled_gpu_l2 =
                (12.0 * 1024.0 * 1024.0 / spec.capacity_factor(Scale::Small)) as u64;
            assert!(
                t.footprint_bytes() > scaled_gpu_l2,
                "{}: {} B touched vs {} B per-GPU L2",
                spec.abbrev,
                t.footprint_bytes(),
                scaled_gpu_l2
            );
        }
    }
}
