#![warn(missing_docs)]

//! Synthetic workload generators for the Table III benchmark suite.
//!
//! The paper evaluates 20 proprietary program traces; we cannot obtain
//! them, so each benchmark is replaced by a generator that reproduces the
//! properties the protocols are sensitive to (see DESIGN.md §1):
//! footprint (Table III), kernel/launch structure, read-only broadcast
//! fraction, producer-consumer movement between kernels, halo widths,
//! power-law irregularity and read-write sharing, and the explicit
//! `.gpu`-scoped synchronization that `cuSolver`, `namd2.10` and `mst`
//! use (Section VI).
//!
//! * [`gen`] — address-space/region allocation and CTA trace building.
//! * [`archetypes`] — the six sharing-pattern archetypes.
//! * [`suite`] — the 20 Table III workloads and their parameters.
//! * [`micro`] — microbenchmarks with closed-form cycle predictions,
//!   used for the Fig. 7 correlation experiment.
//!
//! # Example
//!
//! ```
//! use hmg_workloads::{suite, Scale};
//!
//! let specs = suite::table3();
//! assert_eq!(specs.len(), 20);
//! let trace = specs[0].generate(Scale::Tiny, 42);
//! assert!(trace.num_accesses() > 0);
//! ```

pub mod archetypes;
pub mod gen;
pub mod micro;
pub mod suite;

pub use suite::{Category, Scale, WorkloadSpec};
