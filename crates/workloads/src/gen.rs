//! Building blocks for trace generation: a page-granular address space,
//! line-addressable regions, and a CTA op builder.

use hmg_mem::Addr;
use hmg_protocol::{Access, AccessKind, Scope, TraceOp};
use hmg_sim::Rng;

/// Cache-line size the generators emit accesses at.
pub const LINE: u64 = 128;
/// Page size regions are aligned to, so first-touch placement assigns
/// whole regions cleanly.
pub const PAGE: u64 = 2 * 1024 * 1024;

/// A contiguous, page-aligned span of global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    bytes: u64,
}

impl Region {
    /// First byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cache lines in the region.
    pub fn lines(&self) -> u64 {
        self.bytes / LINE
    }

    /// Byte address of the `i`-th line (wrapping around the region).
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn line(&self, i: u64) -> Addr {
        assert!(self.lines() > 0, "empty region");
        Addr(self.base + (i % self.lines()) * LINE)
    }

    /// The `i`-th of `n` equal line-aligned tiles.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0`.
    pub fn tile(&self, i: u64, n: u64) -> Region {
        assert!(n > 0 && i < n, "tile {i} of {n}");
        let lines = self.lines();
        let per = lines / n;
        let lo = i * per;
        let hi = if i == n - 1 { lines } else { (i + 1) * per };
        Region {
            base: self.base + lo * LINE,
            bytes: (hi - lo) * LINE,
        }
    }
}

/// Allocates page-aligned regions from a flat address space.
#[derive(Debug, Default)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// A fresh, empty address space starting at address 0.
    pub fn new() -> Self {
        AddrSpace::default()
    }

    /// Allocates `bytes` at a page-aligned base. The region's usable size
    /// is `bytes` rounded up to whole cache lines (so small hot regions
    /// keep their intended size); the allocator still advances by whole
    /// pages so distinct regions never share a page.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let usable = bytes.div_ceil(LINE).max(1) * LINE;
        let r = Region {
            base: self.next,
            bytes: usable,
        };
        self.next += usable.div_ceil(PAGE).max(1) * PAGE;
        r
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

/// Builds one CTA's op list.
#[derive(Debug, Default)]
pub struct CtaBuilder {
    ops: Vec<TraceOp>,
}

impl CtaBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        CtaBuilder::default()
    }

    /// Appends a plain load of line `i` of `r`.
    pub fn load(&mut self, r: Region, i: u64) -> &mut Self {
        self.ops.push(TraceOp::Access(Access::load(r.line(i))));
        self
    }

    /// Appends a plain store to line `i` of `r`.
    pub fn store(&mut self, r: Region, i: u64) -> &mut Self {
        self.ops.push(TraceOp::Access(Access::store(r.line(i))));
        self
    }

    /// Appends a scoped access.
    pub fn access(&mut self, r: Region, i: u64, kind: AccessKind, scope: Scope) -> &mut Self {
        self.ops
            .push(TraceOp::Access(Access::new(r.line(i), kind, scope)));
        self
    }

    /// Appends `n` sequential loads starting at line `start` of `r`,
    /// with `delay` compute cycles between consecutive accesses.
    pub fn stream_loads(&mut self, r: Region, start: u64, n: u64, delay: u32) -> &mut Self {
        for k in 0..n {
            self.load(r, start + k);
            self.delay(delay);
        }
        self
    }

    /// Appends `n` sequential stores starting at line `start` of `r`.
    pub fn stream_stores(&mut self, r: Region, start: u64, n: u64, delay: u32) -> &mut Self {
        for k in 0..n {
            self.store(r, start + k);
            self.delay(delay);
        }
        self
    }

    /// Appends `n` uniformly random loads over `r`.
    pub fn random_loads(&mut self, r: Region, n: u64, rng: &mut Rng, delay: u32) -> &mut Self {
        for _ in 0..n {
            self.load(r, rng.gen_range(0, r.lines()));
            self.delay(delay);
        }
        self
    }

    /// Appends `n` Zipf-distributed loads over `r` with exponent `s`.
    pub fn zipf_loads(
        &mut self,
        r: Region,
        n: u64,
        s: f64,
        rng: &mut Rng,
        delay: u32,
    ) -> &mut Self {
        for _ in 0..n {
            self.load(r, rng.gen_zipf(r.lines(), s));
            self.delay(delay);
        }
        self
    }

    /// Appends a compute delay (skipped when zero).
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        if cycles > 0 {
            self.ops.push(TraceOp::Delay(cycles));
        }
        self
    }

    /// Appends a scoped acquire.
    pub fn acquire(&mut self, scope: Scope) -> &mut Self {
        self.ops.push(TraceOp::Acquire(scope));
        self
    }

    /// Appends a scoped release.
    pub fn release(&mut self, scope: Scope) -> &mut Self {
        self.ops.push(TraceOp::Release(scope));
        self
    }

    /// Appends a flag set.
    pub fn set_flag(&mut self, flag: u32) -> &mut Self {
        self.ops.push(TraceOp::SetFlag(flag));
        self
    }

    /// Appends a flag wait.
    pub fn wait_flag(&mut self, flag: u32, count: u32) -> &mut Self {
        self.ops.push(TraceOp::WaitFlag { flag, count });
        self
    }

    /// Finishes the CTA.
    pub fn build(self) -> hmg_protocol::Cta {
        hmg_protocol::Cta::new(self.ops)
    }

    /// Finishes the CTA, spreading `tail`'s ops evenly through this
    /// builder's ops. Real kernels emit their output stores as results
    /// are produced, not in a burst at CTA exit; bursty final writes
    /// would otherwise serialize every kernel boundary on the hot DRAM
    /// partitions.
    pub fn build_interleaved(self, tail: CtaBuilder) -> hmg_protocol::Cta {
        if tail.ops.is_empty() {
            return self.build();
        }
        if self.ops.is_empty() {
            return tail.build();
        }
        let stride = self.ops.len().div_ceil(tail.ops.len()).max(1);
        let mut merged = Vec::with_capacity(self.ops.len() + tail.ops.len());
        let mut t = tail.ops.into_iter();
        for (i, op) in self.ops.into_iter().enumerate() {
            merged.push(op);
            if (i + 1) % stride == 0 {
                if let Some(w) = t.next() {
                    merged.push(w);
                }
            }
        }
        merged.extend(t);
        hmg_protocol::Cta::new(merged)
    }

    /// Ops accumulated so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut a = AddrSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(PAGE + 1);
        assert_eq!(r1.base() % PAGE, 0);
        // Usable size is line-rounded; the allocator still advances by
        // whole pages.
        assert_eq!(r1.bytes(), LINE);
        assert_eq!(r2.base(), PAGE);
        assert_eq!(r2.bytes(), PAGE + LINE);
        assert_eq!(a.allocated(), 3 * PAGE);
    }

    #[test]
    fn region_line_addresses() {
        let mut a = AddrSpace::new();
        let r = a.alloc(PAGE);
        assert_eq!(r.lines(), PAGE / LINE);
        assert_eq!(r.line(0), Addr(0));
        assert_eq!(r.line(1), Addr(128));
        // Wraps.
        assert_eq!(r.line(r.lines()), Addr(0));
    }

    #[test]
    fn tiles_partition_the_region() {
        let mut a = AddrSpace::new();
        let r = a.alloc(PAGE);
        let n = 7;
        let mut covered = 0;
        for i in 0..n {
            covered += r.tile(i, n).lines();
        }
        assert_eq!(covered, r.lines());
        // Adjacent tiles touch.
        let t0 = r.tile(0, n);
        let t1 = r.tile(1, n);
        assert_eq!(t0.base() + t0.bytes(), t1.base());
    }

    #[test]
    fn builder_emits_expected_ops() {
        let mut a = AddrSpace::new();
        let r = a.alloc(PAGE);
        let mut b = CtaBuilder::new();
        b.stream_loads(r, 0, 3, 5).store(r, 1).set_flag(2);
        assert!(!b.is_empty());
        let cta = b.build();
        assert_eq!(cta.num_accesses(), 4);
        assert!(matches!(cta.ops[1], TraceOp::Delay(5)));
        assert!(matches!(cta.ops.last(), Some(TraceOp::SetFlag(2))));
    }

    #[test]
    fn random_and_zipf_loads_stay_in_region() {
        let mut a = AddrSpace::new();
        let r = a.alloc(PAGE);
        let mut rng = Rng::new(1);
        let mut b = CtaBuilder::new();
        b.random_loads(r, 100, &mut rng, 0)
            .zipf_loads(r, 100, 0.8, &mut rng, 0);
        for op in &b.ops {
            if let TraceOp::Access(acc) = op {
                assert!(acc.addr.0 >= r.base() && acc.addr.0 < r.base() + r.bytes());
            }
        }
    }
}
