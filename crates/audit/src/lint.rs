//! Source-hygiene linter (std-only, no syn/proc-macro dependencies).
//!
//! Scans the workspace's crate sources with a small lexical pass that
//! blanks comments and string literals (so tokens inside docs or
//! messages never fire) and skips `#[cfg(test)]` modules and `tests/`
//! integration files. Six rules:
//!
//! * `unordered-map` — no iteration-order-sensitive `HashMap`/`HashSet`
//!   in simulator-state crates (sim, gpu, mem, interconnect, protocol).
//!   Iteration order of std hash maps is randomized per process, so any
//!   map that feeds simulated state breaks same-seed reproducibility.
//!   Use `BTreeMap`/`BTreeSet`, or annotate `// audit:allow(unordered-map): why`.
//! * `entropy` — no wall-clock or OS entropy (`SystemTime::now`,
//!   `Instant::now`, `OsRng`, ...) anywhere outside `sim/src/rng.rs`;
//!   simulated time comes from the event queue and randomness from the
//!   seeded [`hmg_sim::rng`] stream.
//! * `panic-path` — no `.unwrap()` / `.expect(` in the protocol, mem,
//!   sim, gpu, and interconnect hot paths; fallible paths return typed
//!   `SimError`s. Documented panicking wrappers carry an
//!   `audit:allow(panic-path)` justification.
//! * `stats-registration` — every public counter field of a `*Stats`
//!   struct in `sim/src/stats.rs` must be printed by that struct's
//!   `Display` impl, so no counter silently vanishes from reports.
//! * `hot-path-struct` — no `BinaryHeap`/`BTreeMap`/`BTreeSet` in the
//!   files the DES hot-path rewrite moved onto calendar-bucket and
//!   flat-array structures (see DESIGN.md). Tree-based std collections
//!   cost a pointer chase per probe and must not creep back into those
//!   files; the retained reference oracle carries an explicit
//!   `audit:allow(hot-path-struct)` justification.
//! * `dir-match` — no `match` arms on `DirState::` / `DirEvent::`
//!   patterns outside the guarded-action spec, its compiled table view,
//!   and the model checker. Since PR 10 the spec rows are the single
//!   source of truth for protocol decisions; a hand-rolled match in the
//!   engine or oracle is a shadow transition table that can silently
//!   drift from the proved one.
//!
//! Suppression grammar: `// audit:allow(<rule-id>): <justification>` on
//! the same line as the flagged token or in the contiguous comment block
//! immediately above it. An allow without a justification is itself a
//! violation.

use std::path::Path;

use crate::findings::Finding;

/// Crates whose state must iterate deterministically.
const SIM_STATE_CRATES: &[&str] = &["sim", "gpu", "mem", "interconnect", "protocol"];

/// The one file allowed to touch OS entropy (it defines the seeded
/// deterministic stream everything else must use).
const ENTROPY_WHITELIST: &[&str] = &["crates/sim/src/rng.rs"];

/// Files the DES hot-path rewrite moved onto calendar-bucket / flat
/// structures; tree-based std collections must not creep back in. The
/// `__audit_selftest` entry routes the seeded self-test's synthetic
/// file through the rule without touching the real tree.
const HOT_PATH_FILES: &[&str] = &[
    "crates/sim/src/event.rs",
    "crates/sim/src/collect.rs",
    "crates/gpu/src/engine.rs",
    "crates/interconnect/src/fabric.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/page.rs",
    "crates/mem/src/version.rs",
    "crates/sim/src/__audit_selftest_hotpath.rs",
];

/// Tree-based std collections that trade a pointer chase per probe for
/// ordering the hot path does not need.
const HOT_PATH_TOKENS: &[&str] = &["BinaryHeap", "BTreeMap", "BTreeSet"];

/// The only files allowed to pattern-match on `DirState`/`DirEvent`:
/// the guarded-action spec (the source of truth), the legacy table view
/// it compiles to, and the model checker that walks its rows. Anywhere
/// else, such a match is a shadow transition table.
const DIR_MATCH_ALLOWLIST: &[&str] = &[
    "crates/protocol/src/spec.rs",
    "crates/protocol/src/table.rs",
    "crates/audit/src/model.rs",
];

/// Tokens that read wall-clock time or OS entropy.
const ENTROPY_TOKENS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "OsRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "rand::random",
];

/// A fake source file injected by the self-test machinery so seeded
/// violations produce deterministic `file:line` diagnostics without
/// touching the real tree.
#[derive(Debug, Clone)]
pub struct SyntheticFile {
    /// Workspace-relative path the file pretends to live at.
    pub path: &'static str,
    /// Its source text.
    pub text: String,
}

/// Runs every lint over `root`'s crate sources plus any injected
/// synthetic files. Returns the findings and the number of files
/// scanned.
pub fn run(root: &Path, extra: &[SyntheticFile]) -> (Vec<Finding>, usize) {
    let mut out = Vec::new();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut scanned = 0usize;
    for abs in &files {
        let Ok(rel) = abs.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str.contains("/tests/") || rel_str.contains("/benches/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(abs) else {
            continue;
        };
        scanned += 1;
        lint_file(&rel_str, &text, &mut out);
    }
    for syn in extra {
        scanned += 1;
        lint_file(syn.path, &syn.text, &mut out);
    }
    out.extend(check_stats_registration(root));
    (out, scanned)
}

/// Crate name for a workspace-relative path like `crates/gpu/src/engine.rs`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Lints one file's text under its workspace-relative path.
fn lint_file(rel: &str, text: &str, out: &mut Vec<Finding>) {
    let krate = crate_of(rel);
    let sim_state = SIM_STATE_CRATES.contains(&krate);
    let entropy_ok = ENTROPY_WHITELIST.contains(&rel);
    let hot_path = HOT_PATH_FILES.contains(&rel);
    let dir_match_ok = DIR_MATCH_ALLOWLIST.contains(&rel);

    let raw: Vec<&str> = text.lines().collect();
    let stripped_text = strip_comments_and_strings(text);
    let stripped: Vec<&str> = stripped_text.lines().collect();
    let test_mask = test_module_mask(&stripped);

    for (i, line) in stripped.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let lineno = i + 1;

        if !entropy_ok {
            for tok in ENTROPY_TOKENS {
                if line.contains(tok) && !allowed(&raw, i, "entropy", rel, lineno, out) {
                    out.push(Finding::new(
                        "entropy",
                        rel,
                        lineno,
                        format!(
                            "`{tok}` reads wall-clock time or OS entropy — simulated state \
                             must derive time from the event queue and randomness from the \
                             seeded sim/src/rng.rs stream, or the run is not reproducible"
                        ),
                    ));
                }
            }
        }

        if sim_state {
            for tok in ["HashMap", "HashSet"] {
                if contains_word(line, tok) && !allowed(&raw, i, "unordered-map", rel, lineno, out)
                {
                    out.push(Finding::new(
                        "unordered-map",
                        rel,
                        lineno,
                        format!(
                            "`{tok}` iterates in process-random order inside a simulator-state \
                             crate — use BTreeMap/BTreeSet so same-seed runs stay bit-identical"
                        ),
                    ));
                }
            }
            for tok in [".unwrap()", ".expect("] {
                if line.contains(tok) && !allowed(&raw, i, "panic-path", rel, lineno, out) {
                    out.push(Finding::new(
                        "panic-path",
                        rel,
                        lineno,
                        format!(
                            "`{tok}` on a simulator hot path — return a typed SimError instead, \
                             or justify with `// audit:allow(panic-path): <why infallible>`"
                        ),
                    ));
                }
            }
        }

        if !dir_match_ok {
            // A `DirState::X =>` / `DirEvent::X =>` arm is protocol
            // decision logic living outside the spec. (Expression uses
            // — passing a variant to the spec API — carry no `=>`.)
            let is_arm = ["DirState::", "DirEvent::"]
                .iter()
                .any(|tok| line.find(tok).is_some_and(|pos| line[pos..].contains("=>")));
            if is_arm && !allowed(&raw, i, "dir-match", rel, lineno, out) {
                out.push(Finding::new(
                    "dir-match",
                    rel,
                    lineno,
                    "`match` arm on DirState/DirEvent outside the guarded-action spec — \
                     protocol decisions must come from hmg_protocol::spec rows (the table \
                     the audit proves), not a hand-rolled shadow table. Call \
                     `ProtocolSpec::row`/`try_transition`, or justify with \
                     `// audit:allow(dir-match): <why this is not transition logic>`"
                        .to_string(),
                ));
            }
        }

        if hot_path {
            for tok in HOT_PATH_TOKENS {
                if contains_word(line, tok)
                    && !allowed(&raw, i, "hot-path-struct", rel, lineno, out)
                {
                    out.push(Finding::new(
                        "hot-path-struct",
                        rel,
                        lineno,
                        format!(
                            "`{tok}` in a DES hot-path file — these files were rewritten onto \
                             calendar-bucket / flat-array structures; a tree pays a pointer \
                             chase per probe. Use the flat replacements, or justify with \
                             `// audit:allow(hot-path-struct): <why this is off the hot path>`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether the flagged line (0-indexed `i` in `raw`) carries an
/// `audit:allow(<rule>)` on the same line or in the contiguous comment
/// block immediately above. Pushes a finding if an allow is present but
/// gives no justification.
fn allowed(
    raw: &[&str],
    i: usize,
    rule: &str,
    rel: &str,
    lineno: usize,
    out: &mut Vec<Finding>,
) -> bool {
    let marker = format!("audit:allow({rule})");
    let check = |line: &str| -> Option<bool> {
        let pos = line.find(&marker)?;
        let rest = &line[pos + marker.len()..];
        // Require `): justification` — a bare allow is not a justification.
        let justified = rest
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        Some(justified)
    };
    if let Some(justified) = check(raw[i]) {
        if !justified {
            out.push(Finding::new(
                rule,
                rel,
                lineno,
                "audit:allow without a justification — write \
                 `// audit:allow(rule): <why this is sound>`",
            ));
        }
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw[j].trim_start();
        if !(t.starts_with("//") || t.starts_with("#[")) {
            break;
        }
        if let Some(justified) = check(raw[j]) {
            if !justified {
                out.push(Finding::new(
                    rule,
                    rel,
                    lineno,
                    "audit:allow without a justification — write \
                     `// audit:allow(rule): <why this is sound>`",
                ));
            }
            return true;
        }
    }
    false
}

/// `needle` appears in `line` as a standalone identifier (not a
/// substring of a longer identifier like `MyHashMapWrapper`).
fn contains_word(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Blanks comments, string literals, and char literals (preserving the
/// line structure) so token matching only sees code. Handles nested
/// block comments, escapes, raw strings, and lifetimes-vs-char-literals.
fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# (optionally b-prefixed).
        let raw_at = |j: usize| -> Option<usize> {
            if j < n && b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    return Some(hashes);
                }
            }
            None
        };
        let (raw_start, hashes) = if let Some(h) = raw_at(i) {
            (Some(i), h)
        } else if c == 'b' {
            if let Some(h) = raw_at(i + 1) {
                (Some(i), h)
            } else {
                (None, 0)
            }
        } else {
            (None, 0)
        };
        if let Some(start) = raw_start {
            // Skip prefix + opening quote.
            let mut j = start;
            while j < n && b[j] != '"' {
                out.push(' ');
                j += 1;
            }
            out.push(' ');
            j += 1;
            // Scan to closing quote followed by `hashes` hashes.
            while j < n {
                if b[j] == '"' {
                    let mut k = j + 1;
                    let mut h = 0;
                    while k < n && b[k] == '#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        for _ in j..k {
                            out.push(' ');
                        }
                        j = k;
                        break;
                    }
                }
                out.push(blank(b[j]));
                j += 1;
            }
            i = j;
            continue;
        }
        // Plain string (optionally b-prefixed).
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: `'a` keeps, `'x'` / `'\n'` blanks.
        if c == '\'' {
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)]` items (modules or
/// functions) via brace counting on the stripped text.
fn test_module_mask(stripped: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped.len()];
    let mut pending = false;
    let mut active = false;
    let mut depth: i64 = 0;
    for (i, line) in stripped.iter().enumerate() {
        if !pending && !active && line.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || active {
            mask[i] = true;
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        active = true;
                        pending = false;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if active && depth <= 0 {
                active = false;
                depth = 0;
            }
        }
    }
    mask
}

/// Every public field of a `*Stats` struct in `sim/src/stats.rs` must be
/// printed by that struct's `Display` impl.
fn check_stats_registration(root: &Path) -> Vec<Finding> {
    let rel = "crates/sim/src/stats.rs";
    let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
        return vec![Finding::new(
            "stats-registration",
            rel,
            1,
            "sim/src/stats.rs not found — the stats registry is gone",
        )];
    };
    let mut out = Vec::new();
    let lines: Vec<&str> = text.lines().collect();

    // Find each `pub struct FooStats {` and collect its pub fields.
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim();
        let header = t
            .strip_prefix("pub struct ")
            .and_then(|r| r.split_whitespace().next())
            .filter(|name| name.ends_with("Stats"));
        let Some(name) = header else {
            i += 1;
            continue;
        };
        let mut fields: Vec<(String, usize)> = Vec::new();
        let mut j = i + 1;
        while j < lines.len() && !lines[j].trim().starts_with('}') {
            let ft = lines[j].trim();
            if let Some(rest) = ft.strip_prefix("pub ") {
                if let Some((fname, _)) = rest.split_once(':') {
                    fields.push((fname.trim().to_string(), j + 1));
                }
            }
            j += 1;
        }

        // Extract the Display impl body for this struct.
        let display_body = extract_impl_block(&lines, &format!("Display for {name}"));
        match display_body {
            None => out.push(Finding::new(
                "stats-registration",
                rel,
                i + 1,
                format!("{name} has no Display impl — its counters are unreportable"),
            )),
            Some(body) => {
                for (fname, fline) in &fields {
                    if !body.contains(fname.as_str()) {
                        out.push(Finding::new(
                            "stats-registration",
                            rel,
                            *fline,
                            format!(
                                "counter `{fname}` of {name} is never printed by its Display \
                                 impl — the stat is collected but silently dropped from reports"
                            ),
                        ));
                    }
                }
            }
        }
        i = j + 1;
    }
    out
}

/// Returns the text of the brace-delimited block whose header line
/// contains `header_needle`.
fn extract_impl_block(lines: &[&str], header_needle: &str) -> Option<String> {
    let start = lines.iter().position(|l| l.contains(header_needle))?;
    let mut depth: i64 = 0;
    let mut body = String::new();
    let mut started = false;
    for line in &lines[start..] {
        body.push_str(line);
        body.push('\n');
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            break;
        }
    }
    Some(body)
}

/// Synthetic file for the `entropy` seeded-violation self-test.
pub fn synthetic_entropy_file() -> SyntheticFile {
    SyntheticFile {
        path: "crates/gpu/src/__audit_selftest_entropy.rs",
        text: "pub fn smuggled_clock() -> std::time::SystemTime {\n    \
               std::time::SystemTime::now()\n}\n"
            .to_string(),
    }
}

/// Synthetic file for the `unordered-map` seeded-violation self-test.
pub fn synthetic_unordered_map_file() -> SyntheticFile {
    SyntheticFile {
        path: "crates/mem/src/__audit_selftest_unordered.rs",
        text: "use std::collections::HashMap;\n\n\
               pub struct Sharers {\n    pub by_gpm: HashMap<u32, u64>,\n}\n"
            .to_string(),
    }
}

/// Synthetic file for the `dir-match` seeded-violation self-test: a
/// hand-rolled shadow of the transition table in engine territory.
pub fn synthetic_dir_match_file() -> SyntheticFile {
    SyntheticFile {
        path: "crates/gpu/src/__audit_selftest_dirmatch.rs",
        text: "use hmg_protocol::{DirEvent, DirState};\n\n\
               pub fn shadow_transition(s: DirState, e: DirEvent) -> DirState {\n    \
               match (s, e) {\n        \
               (DirState::Invalid, DirEvent::RemoteLoad) => DirState::Valid,\n        \
               _ => s,\n    }\n}\n"
            .to_string(),
    }
}

/// Synthetic file for the `hot-path-struct` seeded-violation self-test.
pub fn synthetic_hot_path_file() -> SyntheticFile {
    SyntheticFile {
        path: "crates/sim/src/__audit_selftest_hotpath.rs",
        text: "use std::collections::BTreeMap;\n\n\
               pub struct Calendar {\n    pub pending: BTreeMap<u64, u32>,\n}\n"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn the_tree_is_clean() {
        let (findings, scanned) = run(&root(), &[]);
        assert!(findings.is_empty(), "{findings:#?}");
        assert!(scanned > 20, "only scanned {scanned} files");
    }

    #[test]
    fn injected_entropy_is_reported_with_location() {
        let (findings, _) = run(&root(), &[synthetic_entropy_file()]);
        let f = findings
            .iter()
            .find(|f| f.rule == "entropy")
            .expect("entropy finding");
        assert!(f
            .file
            .to_string_lossy()
            .contains("__audit_selftest_entropy"));
        assert_eq!(f.line, 2, "the SystemTime::now() call is on line 2");
    }

    #[test]
    fn injected_unordered_map_is_reported_with_location() {
        let (findings, _) = run(&root(), &[synthetic_unordered_map_file()]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unordered-map")
            .collect();
        assert_eq!(hits.len(), 2, "import + field: {findings:?}");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 4);
    }

    #[test]
    fn injected_hot_path_struct_is_reported_with_location() {
        let (findings, _) = run(&root(), &[synthetic_hot_path_file()]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "hot-path-struct")
            .collect();
        assert_eq!(hits.len(), 2, "import + field: {findings:?}");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 4);
        assert!(hits[0]
            .file
            .to_string_lossy()
            .contains("__audit_selftest_hotpath"));
    }

    #[test]
    fn injected_dir_match_is_reported_with_location() {
        let (findings, _) = run(&root(), &[synthetic_dir_match_file()]);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == "dir-match").collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 5, "the shadow arm is on line 5");
        assert!(hits[0]
            .file
            .to_string_lossy()
            .contains("__audit_selftest_dirmatch"));
    }

    #[test]
    fn dir_match_rule_spares_the_spec_and_expression_uses() {
        // The same arm inside the spec itself is the source of truth,
        // not a shadow; and expression-position variants never fire.
        let in_spec = SyntheticFile {
            path: "crates/protocol/src/spec.rs",
            text: "fn f(s: DirState) -> &'static str {\n    \
                   match s {\n        DirState::Invalid => \"I\",\n        \
                   DirState::Valid => \"V\",\n    }\n}\n"
                .to_string(),
        };
        let expr_use = SyntheticFile {
            path: "crates/gpu/src/__audit_selftest_dirmatch_expr.rs",
            text: "pub fn g() {\n    let _ = hmg_protocol::DirEvent::RemoteLoad;\n}\n".to_string(),
        };
        let (findings, _) = run(&root(), &[in_spec, expr_use]);
        assert!(
            findings.iter().all(|f| f.rule != "dir-match"),
            "{findings:?}"
        );
    }

    #[test]
    fn hot_path_rule_is_scoped_to_the_designated_files() {
        // The same BTreeMap outside the designated file list is not a
        // hot-path violation (ordered trees are fine in cold code).
        let syn = SyntheticFile {
            path: "crates/plot/src/__audit_selftest_coldpath.rs",
            text: "use std::collections::BTreeMap;\n\
                   pub type Series = BTreeMap<u64, f64>;\n"
                .to_string(),
        };
        let (findings, _) = run(&root(), &[syn]);
        assert!(
            findings.iter().all(|f| f.rule != "hot-path-struct"),
            "{findings:?}"
        );
    }

    #[test]
    fn tokens_inside_strings_and_comments_do_not_fire() {
        let syn = SyntheticFile {
            path: "crates/sim/src/__audit_selftest_quiet.rs",
            text: "// HashMap in a comment is fine\n\
                   pub const DOC: &str = \"Instant::now() inside a string\";\n\
                   /* .unwrap() in a block comment */\n"
                .to_string(),
        };
        let (findings, _) = run(&root(), &[syn]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let syn = SyntheticFile {
            path: "crates/sim/src/__audit_selftest_testmod.rs",
            text: "pub fn fine() {}\n\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                   #[test]\n    fn t() {\n        let m: HashMap<u8, u8> = HashMap::new();\n        \
                   assert!(m.is_empty());\n        let _ = std::time::Instant::now();\n    }\n}\n"
                .to_string(),
        };
        let (findings, _) = run(&root(), &[syn]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_requires_a_justification() {
        let syn = SyntheticFile {
            path: "crates/sim/src/__audit_selftest_allow.rs",
            text: "// audit:allow(unordered-map)\n\
                   pub type M = std::collections::HashMap<u8, u8>;\n"
                .to_string(),
        };
        let (findings, _) = run(&root(), &[syn]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("justification"), "{findings:?}");
    }

    #[test]
    fn word_boundaries_protect_wrapper_types() {
        assert!(contains_word("let m: HashMap<u8, u8>;", "HashMap"));
        assert!(!contains_word("let m: OrderedHashMap<u8, u8>;", "HashMap"));
        assert!(!contains_word("let m: HashMapLike;", "HashMap"));
    }

    #[test]
    fn stats_fields_are_all_registered() {
        let findings = check_stats_registration(&root());
        assert!(findings.is_empty(), "{findings:?}");
    }
}
