//! Message-dependency / virtual-channel waits-for analysis.
//!
//! Builds the waits-for graph over the fabric's virtual channels
//! (`hmg_interconnect::MsgClass`) from the protocol message kinds in
//! `protocol/msg.rs` and the blocking behaviors of the engine and the
//! reliable transport (NACK flow control, retransmission, hierarchical
//! invalidation forwarding), then proves the *unbounded* part of the
//! graph acyclic.
//!
//! An edge `A -> B` means "completing the processing of a message on
//! channel A can require progress on channel B". Edges are **bounded**
//! when the dependency provably terminates on its own — an
//! attempt-capped retry loop, a retransmission counter, a forward that
//! strictly descends the two-level home hierarchy — and **unbounded**
//! when the wait lasts until the other channel actually delivers
//! (MSHR holds, fence drains). A deadlock requires a cycle of unbounded
//! edges; bounded edges cannot sustain infinite mutual waiting because
//! their caps eventually break the loop (escalating to a typed
//! `SimError` rather than silent blocking).

use std::path::Path;

use hmg_interconnect::MsgClass;

use crate::findings::{locate, Finding};

/// One dependency edge of the waits-for graph, with the source evidence
/// that justifies it.
#[derive(Debug, Clone, Copy)]
pub struct DepEdge {
    /// Channel whose message is blocked.
    pub from: MsgClass,
    /// Channel that must make progress to unblock it.
    pub to: MsgClass,
    /// Whether the dependency provably terminates on its own (caps,
    /// strictly decreasing hierarchy depth).
    pub bounded: bool,
    /// Why the dependency exists.
    pub why: &'static str,
    /// File the behavior lives in (workspace-relative).
    pub file: &'static str,
    /// Symbol to locate in that file for a `file:line` anchor.
    pub symbol: &'static str,
}

/// How each `protocol/msg.rs` message kind rides the fabric's virtual
/// channels (`header` is a size component, not a message kind).
pub const KIND_CLASSES: &[(&str, MsgClass)] = &[
    ("load_req", MsgClass::Request),
    ("atomic_req", MsgClass::Request),
    ("load_resp", MsgClass::Data),
    ("atomic_resp", MsgClass::Data),
    ("store", MsgClass::StoreData),
    ("inv", MsgClass::Inv),
    ("fence", MsgClass::Ctrl),
    ("nack", MsgClass::Ctrl),
];

/// The waits-for graph of the implemented protocol stack.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    edges: Vec<DepEdge>,
}

impl ChannelModel {
    /// The model of the in-tree engine + reliable transport.
    pub fn from_code() -> Self {
        let mut edges = vec![
            DepEdge {
                from: MsgClass::Request,
                to: MsgClass::Data,
                bounded: false,
                why: "an issuing SM holds its MSHR slot until the load/atomic response arrives",
                file: "crates/gpu/src/engine.rs",
                symbol: "mshr",
            },
            DepEdge {
                from: MsgClass::Request,
                to: MsgClass::Ctrl,
                bounded: false,
                why: "a request rejected by a busy home completes only when the NACK arrives",
                file: "crates/gpu/src/engine.rs",
                symbol: "home_nack_threshold",
            },
            DepEdge {
                from: MsgClass::Ctrl,
                to: MsgClass::Request,
                bounded: true,
                why: "a NACK re-issues the request after exponential backoff, attempt-capped \
                      (escalates to a typed SimError when exhausted)",
                file: "crates/gpu/src/engine.rs",
                symbol: "nack_attempt_cap",
            },
            DepEdge {
                from: MsgClass::Ctrl,
                to: MsgClass::StoreData,
                bounded: false,
                why: "a release fence waits for the GPM's outstanding write-throughs to drain",
                file: "crates/gpu/src/engine.rs",
                symbol: "fn check_fences",
            },
            DepEdge {
                from: MsgClass::Ctrl,
                to: MsgClass::Inv,
                bounded: false,
                why: "a release fence waits for store-caused invalidations to drain",
                file: "crates/gpu/src/engine.rs",
                symbol: "inv_pending_sys",
            },
            DepEdge {
                from: MsgClass::Inv,
                to: MsgClass::Inv,
                bounded: true,
                why: "an HMG GPU home forwards a system-home invalidation to its local GPM \
                      sharers — strictly down the two-level hierarchy, depth <= 2",
                file: "crates/gpu/src/engine.rs",
                symbol: "from_sys",
            },
        ];
        // The reliable transport may retransmit any class on delivery
        // timeout; bounded by the per-message retry cap.
        for class in MsgClass::ALL {
            edges.push(DepEdge {
                from: class,
                to: class,
                bounded: true,
                why: "reliable-transport retransmission on delivery timeout, capped by \
                      TransportConfig::max_retries",
                file: "crates/interconnect/src/fabric.rs",
                symbol: "max_retries",
            });
        }
        // A checksum-failed delivery (flip-msg corruption) is charged
        // like a lost one and replays through the same machinery: same
        // loop, same cap. Modeled as its own edge so corruption-recovery
        // traffic is explicitly accounted as bounded instead of riding
        // on the loss edge's evidence.
        for class in MsgClass::ALL {
            edges.push(DepEdge {
                from: class,
                to: class,
                bounded: true,
                why: "checksum-mismatch retransmission — a corrupt delivery replays like a \
                      lost one, capped by the same per-message retry budget",
                file: "crates/interconnect/src/fabric.rs",
                symbol: "checksums",
            });
        }
        ChannelModel { edges }
    }

    /// All edges of the model.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Self-test injection: an ack-style invalidation protocol — stores
    /// wait for invalidation acknowledgments, and invalidations hitting
    /// racy dirty copies wait on their flush write-throughs. This is the
    /// MESI-flavored design the paper's ack-free table deliberately
    /// avoids; it closes a `StoreData -> Inv -> StoreData` cycle the
    /// verifier must report.
    pub fn with_ack_style_invalidation(mut self) -> Self {
        self.edges.push(DepEdge {
            from: MsgClass::StoreData,
            to: MsgClass::Inv,
            bounded: false,
            why: "INJECTED: a store commit waits for its invalidation acknowledgments",
            file: "crates/gpu/src/engine.rs",
            symbol: "fn send_invs",
        });
        self.edges.push(DepEdge {
            from: MsgClass::Inv,
            to: MsgClass::StoreData,
            bounded: false,
            why: "INJECTED: an invalidation flushing a racy dirty copy waits on the write-through",
            file: "crates/gpu/src/engine.rs",
            symbol: "fn handle_inv",
        });
        self
    }
}

/// Verifies the waits-for graph: evidence freshness, message-kind
/// coverage, and acyclicity of the unbounded subgraph.
pub fn verify(root: &Path, model: &ChannelModel) -> Vec<Finding> {
    let mut out = Vec::new();

    // Every message kind of msg.rs must appear in the channel mapping
    // (and vice versa), so a new message type cannot silently skip the
    // deadlock analysis.
    let msg_rs = "crates/protocol/src/msg.rs";
    let msg_text = std::fs::read_to_string(root.join(msg_rs)).unwrap_or_default();
    for &(kind, _) in KIND_CLASSES {
        if !msg_text.contains(&format!("pub {kind}:")) {
            out.push(Finding::new(
                "waitsfor-evidence",
                msg_rs,
                1,
                format!("message kind `{kind}` in the channel model no longer exists in msg.rs"),
            ));
        }
    }
    let struct_body: Vec<&str> = msg_text
        .lines()
        .skip_while(|l| !l.contains("pub struct MsgSizes"))
        .skip(1)
        .take_while(|l| !l.trim_start().starts_with('}'))
        .collect();
    for line in struct_body {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub ") {
            if let Some((name, _)) = rest.split_once(':') {
                let name = name.trim();
                if name != "header" && KIND_CLASSES.iter().all(|&(k, _)| k != name) {
                    out.push(Finding::new(
                        "waitsfor-evidence",
                        msg_rs,
                        locate(root, Path::new(msg_rs), &format!("pub {name}:")),
                        format!(
                            "message kind `{name}` has no virtual-channel mapping in the \
                             waits-for model — add it to KIND_CLASSES so it is analyzed"
                        ),
                    ));
                }
            }
        }
    }

    // Evidence freshness: each modeled dependency must still point at
    // real code.
    for e in model.edges() {
        let ok = std::fs::read_to_string(root.join(e.file))
            .map(|t| t.contains(e.symbol))
            .unwrap_or(false);
        if !ok {
            out.push(Finding::new(
                "waitsfor-evidence",
                e.file,
                1,
                format!(
                    "edge {:?} -> {:?} cites `{}` which no longer exists in {} — the model \
                     is stale",
                    e.from, e.to, e.symbol, e.file
                ),
            ));
        }
    }

    // Deadlock freedom: the unbounded subgraph must be acyclic.
    if let Some(cycle) = find_unbounded_cycle(model) {
        let first = cycle[0];
        let line = locate(root, Path::new(first.file), first.symbol);
        let path: Vec<String> = cycle
            .iter()
            .map(|e| format!("{:?} -> {:?} ({})", e.from, e.to, e.why))
            .collect();
        out.push(Finding::new(
            "waitsfor-cycle",
            first.file,
            line,
            format!(
                "unbounded waits-for cycle across virtual channels — a message on every \
                 channel of the cycle can wait forever on the next: {}",
                path.join("; ")
            ),
        ));
    }

    out
}

/// DFS cycle detection over the unbounded edges only. Returns the edges
/// of one cycle if any exists.
fn find_unbounded_cycle(model: &ChannelModel) -> Option<Vec<DepEdge>> {
    let unbounded: Vec<DepEdge> = model
        .edges()
        .iter()
        .copied()
        .filter(|e| !e.bounded)
        .collect();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = [0u8; MsgClass::ALL.len()];
    let mut stack: Vec<DepEdge> = Vec::new();

    fn idx(c: MsgClass) -> usize {
        MsgClass::ALL.iter().position(|&x| x == c).unwrap_or(0)
    }

    fn dfs(
        node: MsgClass,
        unbounded: &[DepEdge],
        color: &mut [u8; 5],
        stack: &mut Vec<DepEdge>,
    ) -> Option<Vec<DepEdge>> {
        color[idx(node)] = 1;
        for &e in unbounded.iter().filter(|e| e.from == node) {
            match color[idx(e.to)] {
                1 => {
                    // Found a back edge: the cycle is the stack suffix
                    // from `e.to` plus this edge.
                    let start = stack.iter().position(|s| s.from == e.to).unwrap_or(0);
                    let mut cycle: Vec<DepEdge> = stack[start..].to_vec();
                    cycle.push(e);
                    return Some(cycle);
                }
                0 => {
                    stack.push(e);
                    if let Some(c) = dfs(e.to, unbounded, color, stack) {
                        return Some(c);
                    }
                    stack.pop();
                }
                _ => {}
            }
        }
        color[idx(node)] = 2;
        None
    }

    for &start in &MsgClass::ALL {
        if color[idx(start)] == 0 {
            if let Some(c) = dfs(start, &unbounded, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn the_implemented_stack_is_deadlock_free() {
        let findings = verify(&root(), &ChannelModel::from_code());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bounded_retry_loops_are_not_deadlocks() {
        // Request -> Ctrl (nack) -> Request (retry) is a cycle in the
        // full graph, but the retry edge is attempt-capped.
        let m = ChannelModel::from_code();
        assert!(m
            .edges()
            .iter()
            .any(|e| e.from == MsgClass::Ctrl && e.to == MsgClass::Request && e.bounded));
        assert!(find_unbounded_cycle(&m).is_none());
    }

    #[test]
    fn injected_ack_style_invalidation_cycle_is_reported() {
        let m = ChannelModel::from_code().with_ack_style_invalidation();
        let findings = verify(&root(), &m);
        let cycle = findings
            .iter()
            .find(|f| f.rule == "waitsfor-cycle")
            .expect("cycle finding");
        assert!(cycle.msg.contains("StoreData"), "{}", cycle.msg);
        assert!(cycle.msg.contains("Inv"), "{}", cycle.msg);
        assert!(cycle.line > 1, "should anchor to a real source line");
    }

    #[test]
    fn checksum_retransmits_are_bounded_self_edges() {
        // Corruption-recovery traffic (flip-msg + checksum mismatch)
        // must never read as a deadlock risk: every channel carries a
        // bounded self-edge anchored to the fabric's checksum logic,
        // and the unbounded subgraph stays acyclic with them present.
        let m = ChannelModel::from_code();
        for &class in &MsgClass::ALL {
            assert!(
                m.edges().iter().any(|e| e.from == class
                    && e.to == class
                    && e.bounded
                    && e.symbol == "checksums"),
                "{class:?} lacks a bounded checksum-retransmit edge"
            );
        }
        assert!(find_unbounded_cycle(&m).is_none());
    }

    #[test]
    fn every_msg_kind_is_mapped() {
        assert_eq!(KIND_CLASSES.len(), 8);
        let findings = verify(&root(), &ChannelModel::from_code());
        assert!(!findings.iter().any(|f| f.rule == "waitsfor-evidence"));
    }
}
