//! `hmg-audit`: static verification of the HMG/NHCC protocol stack and
//! a determinism/panic-hygiene lint pass.
//!
//! Four engines, all static (no simulation):
//!
//! * [`protocol_graph`] — proves the Table I transition function
//!   complete, deterministic, variant-contained, and conservative, and
//!   that everything it can emit has a declared consumer.
//! * [`waitsfor`] — builds the virtual-channel waits-for graph from
//!   `protocol/msg.rs` and the engine/transport blocking behaviors and
//!   proves its unbounded part acyclic (deadlock freedom).
//! * [`model`] — a Murphi-style explicit-state model checker that walks
//!   every configuration a small abstract multi-GPU system can reach
//!   under the guarded-action rows of `hmg_protocol::spec` and proves
//!   single-writer safety, sharer conservation, no stuck states, and
//!   waits-for acyclicity per protocol variant, with shortest
//!   counterexample traces on violation. Opt-in via
//!   [`AuditOptions::model`] (it is exhaustive but not free).
//! * [`lint`] — lexical source-hygiene rules: deterministic iteration,
//!   no smuggled entropy, no panics on hot paths, stats registration,
//!   no tree-based collections back on the rewritten DES hot path, no
//!   shadow DirState/DirEvent transition tables outside the spec.
//!
//! Each engine supports **seeded violations** ([`Inject`]) so the audit
//! can prove it actually detects what it claims to detect: CI runs the
//! clean audit (must exit 0) and one injected run per violation class
//! (must exit 1 with a `file:line` diagnostic).
//!
//! The runtime complement lives in `hmg_protocol::conformance`: the
//! engine replays every directory transition against the same static
//! table this crate verifies, and reports per-row coverage in
//! `RunMetrics::table`.

pub mod findings;
pub mod lint;
pub mod model;
pub mod protocol_graph;
pub mod waitsfor;

use std::path::{Path, PathBuf};

pub use findings::Finding;
use hmg_protocol::{DirEvent, DirState, ProtocolSpec, SpecVariant};

/// A seeded violation class for the audit's self-test mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Forget one transition-table cell (`(Valid, Replace)` under NHCC).
    IncompleteRow,
    /// Add ack-style invalidation edges, closing a waits-for cycle.
    WaitsForCycle,
    /// Smuggle a `SystemTime::now()` into a simulator-state crate.
    Entropy,
    /// Smuggle an iteration-order-sensitive `HashMap` into sim state.
    UnorderedMap,
    /// Smuggle a tree-based collection back into a DES hot-path file.
    HotPathStruct,
    /// Smuggle a hand-rolled DirState/DirEvent match (a shadow
    /// transition table) into engine territory.
    DirMatch,
    /// Drop the `ForwardInv` action from the HMG `(Valid, Invalidation)`
    /// spec row — a protocol bug only the model checker can see: the
    /// table stays complete and deterministic, but a remote sharer's
    /// copy is never invalidated.
    SpecDropForward,
}

impl Inject {
    /// CLI names of every violation class.
    pub const NAMES: &'static [&'static str] = &[
        "incomplete-row",
        "waitsfor-cycle",
        "entropy",
        "unordered-map",
        "hot-path-struct",
        "dir-match",
        "spec-drop-forward",
    ];

    /// All classes, matching [`Self::NAMES`] order.
    pub const ALL: [Inject; 7] = [
        Inject::IncompleteRow,
        Inject::WaitsForCycle,
        Inject::Entropy,
        Inject::UnorderedMap,
        Inject::HotPathStruct,
        Inject::DirMatch,
        Inject::SpecDropForward,
    ];

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Inject> {
        Self::NAMES
            .iter()
            .position(|&n| n == s)
            .map(|i| Self::ALL[i])
    }

    /// The rule id the injection must trip.
    pub fn expected_rule(self) -> &'static str {
        match self {
            Inject::IncompleteRow => "incomplete-row",
            Inject::WaitsForCycle => "waitsfor-cycle",
            Inject::Entropy => "entropy",
            Inject::UnorderedMap => "unordered-map",
            Inject::HotPathStruct => "hot-path-struct",
            Inject::DirMatch => "dir-match",
            Inject::SpecDropForward => "model-violation",
        }
    }
}

/// What to audit and how.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Optional seeded violation for self-testing the audit.
    pub inject: Option<Inject>,
    /// Run the explicit-state model checker over the spec variants.
    /// Off by default: it is exhaustive (thousands of configurations
    /// per variant) and the lexical/graph engines cover every commit.
    pub model: bool,
    /// BFS depth bound for the model checker; `None` explores the full
    /// reachable space (the invariants are then *proved*, not sampled).
    pub model_depth: Option<u32>,
    /// Restrict the model checker to one spec variant (by
    /// [`SpecVariant`] name); `None` checks all four.
    pub protocol: Option<SpecVariant>,
}

impl AuditOptions {
    /// The default audit over `root`: all static engines, no model
    /// checking, no seeded violation.
    pub fn new(root: PathBuf) -> AuditOptions {
        AuditOptions {
            root,
            inject: None,
            model: false,
            model_depth: None,
            protocol: None,
        }
    }
}

/// The outcome of one audit run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Every violation found, in engine order.
    pub findings: Vec<Finding>,
    /// Transition-table cells checked (state x event x variant).
    pub cells_checked: usize,
    /// Waits-for edges checked.
    pub edges_checked: usize,
    /// Source files linted.
    pub files_scanned: usize,
    /// Per-variant model-checking results (empty unless the model
    /// checker ran); their `[model]` reports belong in the audit output.
    pub model_runs: Vec<model::ModelRun>,
}

impl AuditReport {
    /// `true` when the audit found nothing.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary line.
    pub fn summary(&self) -> String {
        let model = if self.model_runs.is_empty() {
            String::new()
        } else {
            format!(
                ", {} model states",
                self.model_runs.iter().map(|r| r.reachable).sum::<u64>()
            )
        };
        format!(
            "hmg-audit: {} table cells, {} waits-for edges, {} source files{} -> {} finding(s)",
            self.cells_checked,
            self.edges_checked,
            self.files_scanned,
            model,
            self.findings.len()
        )
    }
}

/// Runs the full audit.
pub fn run_audit(opts: &AuditOptions) -> AuditReport {
    let root: &Path = &opts.root;
    let mut findings = Vec::new();

    // Protocol-graph verification.
    let mut spec = protocol_graph::TableSpec::from_code();
    if opts.inject == Some(Inject::IncompleteRow) {
        spec = spec.with_cell_undefined(DirState::Valid, DirEvent::Replace, false);
    }
    let cells_checked = spec.num_cells();
    findings.extend(protocol_graph::verify(root, &spec));

    // Waits-for deadlock analysis.
    let mut model = waitsfor::ChannelModel::from_code();
    if opts.inject == Some(Inject::WaitsForCycle) {
        model = model.with_ack_style_invalidation();
    }
    let edges_checked = model.edges().len();
    findings.extend(waitsfor::verify(root, &model));

    // Source-hygiene lints.
    let extra = match opts.inject {
        Some(Inject::Entropy) => vec![lint::synthetic_entropy_file()],
        Some(Inject::UnorderedMap) => vec![lint::synthetic_unordered_map_file()],
        Some(Inject::HotPathStruct) => vec![lint::synthetic_hot_path_file()],
        Some(Inject::DirMatch) => vec![lint::synthetic_dir_match_file()],
        _ => Vec::new(),
    };
    let (lint_findings, files_scanned) = lint::run(root, &extra);
    findings.extend(lint_findings);

    // Explicit-state model checking: opt-in, or forced by the
    // spec-drop-forward injection (the one bug class only reachability
    // can see — the broken spec is still complete and deterministic).
    let mut model_runs = Vec::new();
    if opts.model || opts.inject == Some(Inject::SpecDropForward) {
        if opts.inject == Some(Inject::SpecDropForward) {
            // The forward matters only under HMG, so the injection pins
            // the hierarchical variant regardless of `--protocol`.
            let broken = ProtocolSpec::for_variant(SpecVariant::Hmg).with_forward_dropped();
            model_runs.push(model::check_variant(broken, opts.model_depth));
        } else {
            model_runs = model::check_all(opts.protocol, opts.model_depth);
        }
        for run in &model_runs {
            for v in &run.violations {
                // Anchor at the spec's Invalidation rows: that is where
                // a protocol-semantics fix lands.
                let spec_rs = Path::new("crates/protocol/src/spec.rs");
                let line = findings::locate(root, spec_rs, "static ROWS");
                findings.push(Finding::new(
                    "model-violation",
                    spec_rs,
                    line,
                    format!(
                        "[{}] {} invariant violated under variant `{}`: {} \
                         (counterexample trace in the [model] report, {} steps)",
                        run.variant.name(),
                        v.invariant,
                        run.variant.name(),
                        v.detail,
                        v.trace.len()
                    ),
                ));
            }
        }
    }

    AuditReport {
        findings,
        cells_checked,
        edges_checked,
        files_scanned,
        model_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn clean_audit_passes() {
        let report = run_audit(&AuditOptions::new(root()));
        assert!(report.passed(), "{:#?}", report.findings);
        assert_eq!(report.cells_checked, 24);
        assert!(report.edges_checked >= 10);
        assert!(report.files_scanned > 20);
        assert!(report.model_runs.is_empty(), "model is opt-in");
    }

    #[test]
    fn clean_audit_with_model_proves_every_variant() {
        let report = run_audit(&AuditOptions {
            model: true,
            ..AuditOptions::new(root())
        });
        assert!(report.passed(), "{:#?}", report.findings);
        assert_eq!(report.model_runs.len(), SpecVariant::ALL.len());
        for run in &report.model_runs {
            assert!(run.passed() && !run.truncated, "{}", run.report());
        }
        assert!(report.summary().contains("model states"));
    }

    #[test]
    fn model_protocol_filter_checks_one_variant() {
        let report = run_audit(&AuditOptions {
            model: true,
            protocol: Some(SpecVariant::HmgPhase),
            model_depth: Some(4),
            ..AuditOptions::new(root())
        });
        assert_eq!(report.model_runs.len(), 1);
        assert_eq!(report.model_runs[0].variant, SpecVariant::HmgPhase);
        assert!(report.model_runs[0].truncated);
    }

    #[test]
    fn every_seeded_violation_class_is_caught_with_a_location() {
        for inject in Inject::ALL {
            let report = run_audit(&AuditOptions {
                inject: Some(inject),
                ..AuditOptions::new(root())
            });
            assert!(!report.passed(), "{inject:?} was not detected");
            let hit = report
                .findings
                .iter()
                .find(|f| f.rule == inject.expected_rule())
                .unwrap_or_else(|| panic!("{inject:?}: no {} finding", inject.expected_rule()));
            assert!(hit.line >= 1);
            assert!(
                !hit.file.as_os_str().is_empty(),
                "{inject:?} finding lacks a file"
            );
            // The diagnostic renders as file:line so it is jumpable.
            let shown = hit.to_string();
            assert!(
                shown.contains(&format!(":{}: [", hit.line)),
                "{inject:?}: {shown}"
            );
        }
    }

    #[test]
    fn inject_names_round_trip() {
        for (i, name) in Inject::NAMES.iter().enumerate() {
            assert_eq!(Inject::parse(name), Some(Inject::ALL[i]));
        }
        assert_eq!(Inject::parse("no-such-class"), None);
    }
}
