//! Audit findings: one rule violation, pinned to a source location.

use std::fmt;
use std::path::{Path, PathBuf};

/// One violation an audit engine found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`incomplete-row`, `waitsfor-cycle`, `entropy`,
    /// `unordered-map`, `panic-path`, `stats-registration`,
    /// `conservation`, `undeclared-consumer`).
    pub rule: String,
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-indexed line the finding anchors to.
    pub line: usize,
    /// Human-readable diagnosis.
    pub msg: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        rule: impl Into<String>,
        file: impl Into<PathBuf>,
        line: usize,
        msg: impl Into<String>,
    ) -> Self {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Locates `needle` in `file` under `root`, returning its 1-indexed line
/// so findings about *model-level* facts (table cells, waits-for edges)
/// still point at real source. Falls back to line 1 when the file or the
/// needle cannot be found (e.g. auditing a partial checkout).
pub fn locate(root: &Path, file: &Path, needle: &str) -> usize {
    let Ok(text) = std::fs::read_to_string(root.join(file)) else {
        return 1;
    };
    text.lines()
        .position(|l| l.contains(needle))
        .map_or(1, |i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_msg() {
        let f = Finding::new(
            "entropy",
            "crates/x/src/a.rs",
            7,
            "SystemTime::now() in sim state",
        );
        assert_eq!(
            f.to_string(),
            "crates/x/src/a.rs:7: [entropy] SystemTime::now() in sim state"
        );
    }

    #[test]
    fn locate_falls_back_to_line_one() {
        let tmp = std::env::temp_dir();
        assert_eq!(locate(&tmp, Path::new("no-such-file.rs"), "x"), 1);
    }
}
