//! Explicit-state model checking of the guarded-action protocol spec.
//!
//! A Murphi-style reachability checker: it enumerates every
//! configuration a small abstract system can reach under the rows of
//! [`hmg_protocol::spec`] and proves four invariants on the full
//! reachable set — *before a single cycle is simulated*. Where
//! [`crate::protocol_graph`] checks the table syntactically (complete,
//! deterministic, conservative), this module checks it *semantically*:
//! the rows, composed over an unbounded interleaving of loads, stores,
//! evictions, and in-flight invalidations, never lose a copy.
//!
//! # The abstraction
//!
//! One block, five protocol participants:
//!
//! * `S` — the system home GPM. Its own L2 is coherent by construction
//!   (it is the serialization point), so it carries no cached/stale bit.
//! * `P1`, `P2` — peer GPMs on the home GPU, tracked directly by `S`.
//!   They are fully symmetric; states are canonicalized under the
//!   `P1 ↔ P2` swap (symmetry reduction).
//! * `R` — a GPM on a remote GPU. Flat NHCC tracks it directly at `S`;
//!   hierarchical HMG tracks its GPU home node `G` at `S`, and `R` at
//!   `G` — the two-level structure whose `Invalidation` column the
//!   model exists to exercise.
//! * `G` — the remote GPU's home node (HMG variants only): a directory
//!   with one possible sharer (`R`) that must *forward* system-home
//!   invalidations downward.
//!
//! Messages are invalidations in flight, at most
//! [`MAX_INFLIGHT`] per target (the bounded-channel abstraction);
//! requests and fills apply atomically. Arbitration is modeled with a
//! nondeterministic home-busy bit plus a one-deep deferred-request slot,
//! so the guarded `HomeBusy` rows (NACK vs phase-priority defer) are
//! reached too.
//!
//! # The invariants
//!
//! 1. **SWMR-analog single-writer safety** — in every *quiescent*
//!    configuration (no messages in flight, no deferred request), no
//!    cache holds a stale copy: every store's invalidations eventually
//!    reach every prior sharer. This is the observable content of the
//!    paper's single-writer guarantee under a non-multi-copy-atomic
//!    memory model (stores never wait, but staleness must drain).
//! 2. **Sharer conservation** — in *every* configuration, each cached
//!    copy is either still tracked by the directory hierarchy or has an
//!    invalidation (chain) in flight toward it. A violated conservation
//!    is a leaked copy the protocol can never find again.
//! 3. **No stuck states** — every non-quiescent configuration has at
//!    least one enabled transition, and every deliverable message has a
//!    defined handler row (an invalidation arriving at a directory with
//!    no `Invalidation` row is a stuck message).
//! 4. **Waits-for acyclicity** — the message-emission graph derived
//!    from the spec's actions (who sends what while handling what) has
//!    no unbounded cycle. Bounded cycles (NACK retry capped by the
//!    attempt cap, phase-priority replay bounded by backlog drain) are
//!    reported, not failed.
//!
//! On violation the checker rebuilds the shortest event sequence from
//! the BFS parent pointers and reports it as a counterexample trace.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use hmg_protocol::spec::{Action, Guard, GuardCtx, ProtocolSpec, SpecVariant};
use hmg_protocol::{DirEvent, DirState};

/// Maximum in-flight invalidations per target (bounded channel).
pub const MAX_INFLIGHT: u8 = 2;

/// Caching agents, in bit order. `S` and `G` are directories, not
/// caching agents, so they do not appear here.
const AGENTS: [Agent; 3] = [Agent::P1, Agent::P2, Agent::R];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Agent {
    P1,
    P2,
    R,
}

impl Agent {
    fn bit(self) -> u32 {
        match self {
            Agent::P1 => 0,
            Agent::P2 => 1,
            Agent::R => 2,
        }
    }
    fn name(self) -> &'static str {
        match self {
            Agent::P1 => "P1",
            Agent::P2 => "P2",
            Agent::R => "R",
        }
    }
    fn swapped(self) -> Agent {
        match self {
            Agent::P1 => Agent::P2,
            Agent::P2 => Agent::P1,
            Agent::R => Agent::R,
        }
    }
}

/// Invalidation targets: the three caching agents plus the GPU home
/// node `G` (whose handler is the spec's `Invalidation` column).
const INV_TARGETS: usize = 4;
const G_TARGET: usize = 3;

/// One abstract configuration, decoded from its [`Cfg::encode`] image.
///
/// Field packing (u64): see `encode`. Everything is tiny on purpose —
/// the whole reachable space for any variant is a few thousand states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cfg {
    /// System-home directory: entry present?
    sys_valid: bool,
    /// Sys sharers: bit 0 = P1, bit 1 = P2, bit 2 = R (flat) or G (HMG).
    sys_sharers: u8,
    /// GPU home node directory (HMG only): entry present?
    gpu_valid: bool,
    /// GPU home sharers: bit 0 = R.
    gpu_sharers: u8,
    /// Cached-copy bits, indexed by [`Agent::bit`].
    cached: u8,
    /// Stale-copy bits (cached and known out of date).
    stale: u8,
    /// In-flight invalidations per target (P1, P2, R, G), each 0..=2.
    inv: [u8; INV_TARGETS],
    /// Home-busy arbitration bit (nondeterministic).
    busy: bool,
    /// Deferred request slot: `None` or `(agent, is_store)`.
    deferred: Option<(Agent, bool)>,
}

impl Cfg {
    const INITIAL: Cfg = Cfg {
        sys_valid: false,
        sys_sharers: 0,
        gpu_valid: false,
        gpu_sharers: 0,
        cached: 0,
        stale: 0,
        inv: [0; INV_TARGETS],
        busy: false,
        deferred: None,
    };

    fn encode(self) -> u64 {
        let mut x = 0u64;
        x |= self.sys_valid as u64;
        x |= (self.sys_sharers as u64) << 1;
        x |= (self.gpu_valid as u64) << 4;
        x |= (self.gpu_sharers as u64) << 5;
        x |= (self.cached as u64) << 6;
        x |= (self.stale as u64) << 9;
        for (i, &n) in self.inv.iter().enumerate() {
            x |= (n as u64) << (12 + 2 * i);
        }
        x |= (self.busy as u64) << 20;
        let d = match self.deferred {
            None => 0u64,
            Some((a, st)) => 1 + (a.bit() as u64) * 2 + st as u64,
        };
        x |= d << 21;
        x
    }

    fn decode(x: u64) -> Cfg {
        let mut inv = [0u8; INV_TARGETS];
        for (i, n) in inv.iter_mut().enumerate() {
            *n = ((x >> (12 + 2 * i)) & 0b11) as u8;
        }
        let d = (x >> 21) & 0b111;
        let deferred = if d == 0 {
            None
        } else {
            let a = AGENTS[((d - 1) / 2) as usize];
            Some((a, (d - 1) % 2 == 1))
        };
        Cfg {
            sys_valid: x & 1 != 0,
            sys_sharers: ((x >> 1) & 0b111) as u8,
            gpu_valid: (x >> 4) & 1 != 0,
            gpu_sharers: ((x >> 5) & 1) as u8,
            cached: ((x >> 6) & 0b111) as u8,
            stale: ((x >> 9) & 0b111) as u8,
            inv,
            busy: (x >> 20) & 1 != 0,
            deferred,
        }
    }

    /// The configuration with `P1` and `P2` exchanged.
    fn swapped(self) -> Cfg {
        let swap_bits = |b: u8| (b & !0b11) | ((b & 0b01) << 1) | ((b & 0b10) >> 1);
        Cfg {
            sys_sharers: swap_bits(self.sys_sharers),
            cached: swap_bits(self.cached),
            stale: swap_bits(self.stale),
            inv: [self.inv[1], self.inv[0], self.inv[2], self.inv[3]],
            deferred: self.deferred.map(|(a, st)| (a.swapped(), st)),
            ..self
        }
    }

    /// Symmetry reduction: the lexicographically smaller of the two
    /// `P1 ↔ P2` images represents the orbit.
    fn canonical(self) -> u64 {
        self.encode().min(self.swapped().encode())
    }

    /// No messages in flight and nothing deferred.
    fn quiescent(self) -> bool {
        self.inv.iter().all(|&n| n == 0) && self.deferred.is_none()
    }

    fn cached(self, a: Agent) -> bool {
        self.cached & (1 << a.bit()) != 0
    }
    fn stale(self, a: Agent) -> bool {
        self.stale & (1 << a.bit()) != 0
    }

    /// Human-readable one-line rendering for counterexample traces.
    fn show(self, hmg: bool) -> String {
        let set = |bits: u8, third: &str| {
            let mut s = String::new();
            for (i, n) in ["P1", "P2", third].iter().enumerate() {
                if bits & (1 << i) != 0 {
                    if !s.is_empty() {
                        s.push(',');
                    }
                    s.push_str(n);
                }
            }
            if s.is_empty() {
                s.push('-');
            }
            s
        };
        let mut out = format!(
            "sys={}{{{}}}",
            if self.sys_valid { "V" } else { "I" },
            set(self.sys_sharers, if hmg { "G" } else { "R" }),
        );
        if hmg {
            let _ = write!(
                out,
                " gpu={}{{{}}}",
                if self.gpu_valid { "V" } else { "I" },
                if self.gpu_sharers & 1 != 0 { "R" } else { "-" },
            );
        }
        let _ = write!(
            out,
            " cached={{{}}} stale={{{}}}",
            set(self.cached, "R"),
            set(self.stale, "R")
        );
        let inflight: Vec<String> = ["P1", "P2", "R", "G"]
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.inv[i] > 0)
            .map(|(i, n)| format!("{}x{}", n, self.inv[i]))
            .collect();
        let _ = write!(
            out,
            " inv={{{}}}",
            if inflight.is_empty() {
                "-".into()
            } else {
                inflight.join(",")
            }
        );
        if self.busy {
            out.push_str(" busy");
        }
        if let Some((a, st)) = self.deferred {
            let _ = write!(
                out,
                " deferred={}:{}",
                a.name(),
                if st { "St" } else { "Ld" }
            );
        }
        out
    }
}

/// One invariant violation, with the shortest counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke: `swmr`, `conservation`, `stuck`,
    /// or `waitsfor`.
    pub invariant: &'static str,
    /// What exactly is wrong in the violating configuration.
    pub detail: String,
    /// Event sequence from the initial configuration to the violation,
    /// one `rule -> configuration` line per step.
    pub trace: Vec<String>,
}

/// The result of model-checking one protocol variant.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// The variant checked.
    pub variant: SpecVariant,
    /// Reachable configurations after symmetry reduction.
    pub reachable: u64,
    /// Deepest BFS level reached.
    pub depth_reached: u32,
    /// Whether a `--depth` bound truncated the exploration (the
    /// invariants then hold only for the explored prefix).
    pub truncated: bool,
    /// Spec rows the exploration exercised (of the variant's total).
    pub rows_exercised: usize,
    /// Total rows the variant defines.
    pub rows_total: usize,
    /// Bounded waits-for edges (reported, not failed).
    pub bounded_edges: Vec<String>,
    /// Invariant violations, each with a counterexample trace.
    pub violations: Vec<Violation>,
}

impl ModelRun {
    /// `true` when every invariant held on the explored space.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The greppable `[model]` report: one summary line, plus
    /// counterexample traces for any violation.
    pub fn report(&self) -> String {
        let status = |inv: &str| {
            if self.violations.iter().any(|v| v.invariant == inv) {
                "VIOLATED"
            } else {
                "ok"
            }
        };
        let mut out = format!(
            "[model] variant={} reachable={} depth={}{} rows={}/{} \
             swmr={} conservation={} stuck={} waitsfor={}",
            self.variant.name(),
            self.reachable,
            self.depth_reached,
            if self.truncated { " (truncated)" } else { "" },
            self.rows_exercised,
            self.rows_total,
            status("swmr"),
            status("conservation"),
            status("stuck"),
            status("waitsfor"),
        );
        for e in &self.bounded_edges {
            let _ = write!(out, "\n[model]   bounded waits-for edge: {e}");
        }
        for v in &self.violations {
            let _ = write!(
                out,
                "\n[model] counterexample ({}: {}):",
                v.invariant, v.detail
            );
            for line in &v.trace {
                let _ = write!(out, "\n[model]   {line}");
            }
        }
        out
    }
}

/// The transition relation: everything one rule application needs.
struct Model {
    spec: ProtocolSpec,
    hmg: bool,
}

/// A successor configuration plus the rule that produced it, and the
/// spec rows the rule executed (for coverage accounting).
struct Step {
    rule: String,
    next: Cfg,
    rows: Vec<usize>,
    /// A message was deliverable but had no handler row (stuck).
    stuck: Option<String>,
}

impl Model {
    fn new(spec: ProtocolSpec) -> Model {
        Model {
            spec,
            hmg: spec.variant.hmg(),
        }
    }

    /// Index of a row within the variant's row list, for coverage.
    fn row_idx(&self, state: DirState, event: DirEvent, guard: Guard) -> Option<usize> {
        self.spec
            .rows()
            .position(|r| r.state == state && r.event == event && r.guard == guard)
    }

    fn sys_state(&self, c: Cfg) -> DirState {
        if c.sys_valid {
            DirState::Valid
        } else {
            DirState::Invalid
        }
    }
    fn gpu_state(&self, c: Cfg) -> DirState {
        if c.gpu_valid {
            DirState::Valid
        } else {
            DirState::Invalid
        }
    }

    /// Enqueues one invalidation; `None` when the channel is full
    /// (the generating rule is then disabled — bounded channels).
    fn enqueue(c: &mut Cfg, target: usize) -> Option<()> {
        if c.inv[target] >= MAX_INFLIGHT {
            return None;
        }
        c.inv[target] += 1;
        Some(())
    }

    /// Sends invalidations to every sys-tracked sharer except `keep`,
    /// untracking them; marks victims' cached copies stale.
    fn sys_invalidate(&self, c: &mut Cfg, keep: Option<u8>) -> Option<()> {
        for bit in 0..3u8 {
            if c.sys_sharers & (1 << bit) == 0 || Some(bit) == keep {
                continue;
            }
            // Bit 2 is R under flat NHCC and G under HMG.
            let target = if bit == 2 && self.hmg {
                G_TARGET
            } else {
                bit as usize
            };
            Self::enqueue(c, target)?;
            c.sys_sharers &= !(1 << bit);
        }
        Some(())
    }

    /// Marks every cached copy other than `writer` stale: a store just
    /// made their data old. The writer's own copy is fresh.
    fn mark_stale(c: &mut Cfg, writer: Option<Agent>) {
        for a in AGENTS {
            if Some(a) != writer && c.cached(a) {
                c.stale |= 1 << a.bit();
            }
        }
        if let Some(w) = writer {
            c.cached |= 1 << w.bit();
            c.stale &= !(1 << w.bit());
        }
    }

    /// Applies a load or store by `a` to the directories, assuming the
    /// home accepted it (the busy/defer decision already happened).
    /// Returns the executed row indices, or `None` when a bounded
    /// channel disables the rule.
    fn apply_request(&self, c: &mut Cfg, a: Agent, is_store: bool) -> Option<Vec<usize>> {
        let mut rows = Vec::new();
        let remote_ev = if is_store {
            DirEvent::RemoteStore
        } else {
            DirEvent::RemoteLoad
        };
        // The sys-home sharer identity: P1/P2 directly; R directly under
        // flat NHCC, via G under HMG.
        let sys_bit = match a {
            Agent::P1 => 0u8,
            Agent::P2 => 1,
            Agent::R => 2,
        };
        // HMG: R's request passes its GPU home node first.
        if a == Agent::R && self.hmg {
            let gs = self.gpu_state(*c);
            let row = self.spec.row(gs, remote_ev, GuardCtx::FREE)?;
            rows.push(self.row_idx(gs, remote_ev, Guard::Always)?);
            if row.has(Action::AddSharer) {
                c.gpu_sharers |= 1;
            }
            if row.has(Action::InvOtherSharers) {
                // G tracks only R; there are no others to invalidate.
            }
            c.gpu_valid = row.next == DirState::Valid;
        }
        let ss = self.sys_state(*c);
        let row = self.spec.row(ss, remote_ev, GuardCtx::FREE)?;
        rows.push(self.row_idx(ss, remote_ev, Guard::Always)?);
        if row.has(Action::InvOtherSharers) {
            self.sys_invalidate(c, Some(sys_bit))?;
        }
        if row.has(Action::InvAllSharers) {
            self.sys_invalidate(c, None)?;
        }
        if row.has(Action::AddSharer) {
            c.sys_sharers |= 1 << sys_bit;
        }
        c.sys_valid = row.next == DirState::Valid;
        c.cached |= 1 << a.bit();
        c.stale &= !(1 << a.bit());
        if is_store {
            Self::mark_stale(c, Some(a));
        }
        Some(rows)
    }

    /// All successors of `c`, each tagged with its rule name.
    fn successors(&self, c: Cfg) -> Vec<Step> {
        let mut out = Vec::new();
        let mut stuck_steps = Vec::new();
        let mut push = |rule: String, next: Cfg, rows: Vec<usize>| {
            out.push(Step {
                rule,
                next,
                rows,
                stuck: None,
            });
        };

        // Requests from the caching agents. The home's own accesses
        // (LocalLoad/LocalStore) are modeled separately below.
        for a in AGENTS {
            for is_store in [false, true] {
                let ev = if is_store {
                    DirEvent::RemoteStore
                } else {
                    DirEvent::RemoteLoad
                };
                let op = if is_store { "St" } else { "Ld" };
                if c.busy {
                    // Busy home: the guarded row decides. NACK bounces
                    // the request (a stutter at this abstraction);
                    // Defer parks it in the slot.
                    let ss = self.sys_state(c);
                    if let Some(row) = self.spec.row(ss, ev, GuardCtx::BUSY) {
                        if row.guard == Guard::HomeBusy && row.has(Action::Defer) {
                            if c.deferred.is_none() {
                                let mut n = c;
                                n.deferred = Some((a, is_store));
                                let rows =
                                    self.row_idx(ss, ev, Guard::HomeBusy).into_iter().collect();
                                push(format!("defer({}:{op})", a.name()), n, rows);
                            }
                            continue;
                        }
                        if row.guard == Guard::HomeBusy && row.has(Action::Nack) {
                            // Rejected and re-issued later: a stutter
                            // (no new configuration), recorded only so
                            // row coverage sees the Nack rows fire.
                            let rows = self.row_idx(ss, ev, Guard::HomeBusy).into_iter().collect();
                            push(format!("nack({}:{op})", a.name()), c, rows);
                            continue;
                        }
                    }
                }
                let mut n = c;
                if let Some(rows) = self.apply_request(&mut n, a, is_store) {
                    push(format!("{op}({})", a.name()), n, rows);
                }
            }
        }

        // The home GPM's own accesses: LocalLoad is quiet; LocalStore
        // invalidates every tracked sharer.
        {
            let ss = self.sys_state(c);
            if let Some(row) = self.spec.row(ss, DirEvent::LocalLoad, GuardCtx::FREE) {
                let mut n = c;
                n.sys_valid = row.next == DirState::Valid;
                let rows = self
                    .row_idx(ss, DirEvent::LocalLoad, Guard::Always)
                    .into_iter()
                    .collect();
                push("Ld(S)".into(), n, rows);
            }
            if let Some(row) = self.spec.row(ss, DirEvent::LocalStore, GuardCtx::FREE) {
                let mut n = c;
                let ok = if row.has(Action::InvAllSharers) {
                    self.sys_invalidate(&mut n, None).is_some()
                } else {
                    true
                };
                if ok {
                    if row.has(Action::RemoveAllSharers) {
                        n.sys_sharers = 0;
                    }
                    n.sys_valid = row.next == DirState::Valid;
                    Self::mark_stale(&mut n, None);
                    let rows = self
                        .row_idx(ss, DirEvent::LocalStore, Guard::Always)
                        .into_iter()
                        .collect();
                    push("St(S)".into(), n, rows);
                }
            }
        }

        // Directory replacements (capacity evictions).
        if c.sys_valid {
            if let Some(row) = self
                .spec
                .row(DirState::Valid, DirEvent::Replace, GuardCtx::FREE)
            {
                let mut n = c;
                let ok = if row.has(Action::InvAllSharers) {
                    self.sys_invalidate(&mut n, None).is_some()
                } else {
                    true
                };
                if ok {
                    if row.has(Action::RemoveAllSharers) {
                        n.sys_sharers = 0;
                    }
                    n.sys_valid = row.next == DirState::Valid;
                    let rows = self
                        .row_idx(DirState::Valid, DirEvent::Replace, Guard::Always)
                        .into_iter()
                        .collect();
                    push("Replace(S)".into(), n, rows);
                }
            }
        }
        if self.hmg && c.gpu_valid {
            if let Some(row) = self
                .spec
                .row(DirState::Valid, DirEvent::Replace, GuardCtx::FREE)
            {
                let mut n = c;
                let ok = if row.has(Action::InvAllSharers) && n.gpu_sharers & 1 != 0 {
                    Self::enqueue(&mut n, Agent::R.bit() as usize).is_some()
                } else {
                    true
                };
                if ok {
                    if row.has(Action::RemoveAllSharers) {
                        n.gpu_sharers = 0;
                    }
                    n.gpu_valid = row.next == DirState::Valid;
                    let rows = self
                        .row_idx(DirState::Valid, DirEvent::Replace, Guard::Always)
                        .into_iter()
                        .collect();
                    push("Replace(G)".into(), n, rows);
                }
            }
        }

        // Invalidation deliveries at caching agents.
        for a in AGENTS {
            let t = a.bit() as usize;
            if c.inv[t] > 0 {
                let mut n = c;
                n.inv[t] -= 1;
                n.cached &= !(1 << a.bit());
                n.stale &= !(1 << a.bit());
                push(format!("inv({})", a.name()), n, Vec::new());
            }
        }

        // Invalidation delivery at the GPU home node: the spec's
        // `Invalidation` column. A variant without the column that
        // still has such a message in flight is stuck.
        if c.inv[G_TARGET] > 0 {
            let gs = self.gpu_state(c);
            match self.spec.row(gs, DirEvent::Invalidation, GuardCtx::FREE) {
                Some(row) => {
                    let mut n = c;
                    n.inv[G_TARGET] -= 1;
                    let ok = if row.has(Action::ForwardInv) && n.gpu_sharers & 1 != 0 {
                        Self::enqueue(&mut n, Agent::R.bit() as usize).is_some()
                    } else {
                        true
                    };
                    if ok {
                        if row.has(Action::RemoveAllSharers) {
                            n.gpu_sharers = 0;
                        }
                        n.gpu_valid = row.next == DirState::Valid;
                        let rows = self
                            .row_idx(gs, DirEvent::Invalidation, Guard::Always)
                            .into_iter()
                            .collect();
                        push("inv(G)".into(), n, rows);
                    }
                }
                None => stuck_steps.push(Step {
                    rule: "inv(G)".into(),
                    next: c,
                    rows: Vec::new(),
                    stuck: Some(format!(
                        "invalidation in flight to a directory whose spec has no \
                         ({:?}, Invalidation) row",
                        gs
                    )),
                }),
            }
        }

        // Clean cache evictions: a copy may silently leave its cache.
        for a in AGENTS {
            if c.cached(a) {
                let mut n = c;
                n.cached &= !(1 << a.bit());
                n.stale &= !(1 << a.bit());
                push(format!("evict({})", a.name()), n, Vec::new());
            }
        }

        // Arbitration nondeterminism: the home's backlog crosses the
        // flow-control threshold in either direction.
        {
            let mut n = c;
            n.busy = !c.busy;
            push(
                if c.busy { "drain" } else { "congest" }.into(),
                n,
                Vec::new(),
            );
        }
        // A parked request replays once the home drains.
        if !c.busy {
            if let Some((a, is_store)) = c.deferred {
                let mut n = c;
                n.deferred = None;
                if let Some(rows) = self.apply_request(&mut n, a, is_store) {
                    let op = if is_store { "St" } else { "Ld" };
                    push(format!("replay({}:{op})", a.name()), n, rows);
                }
            }
        }

        out.extend(stuck_steps);
        out
    }

    /// Whether each cached copy is still reachable by the protocol:
    /// tracked by the directory hierarchy or owed an invalidation
    /// (possibly via the GPU home's pending forward).
    fn covered(&self, c: Cfg, a: Agent) -> bool {
        match a {
            Agent::P1 | Agent::P2 => {
                c.sys_sharers & (1 << a.bit()) != 0 || c.inv[a.bit() as usize] > 0
            }
            Agent::R => {
                let direct_inv = c.inv[Agent::R.bit() as usize] > 0;
                if !self.hmg {
                    return c.sys_sharers & 0b100 != 0 || direct_inv;
                }
                let tracked = c.gpu_sharers & 1 != 0 && c.sys_sharers & 0b100 != 0;
                let via_g = c.inv[G_TARGET] > 0 && c.gpu_sharers & 1 != 0;
                tracked || direct_inv || via_g
            }
        }
    }

    /// Invariant checks on one configuration. Returns
    /// `(invariant, detail)` for the first violation found.
    fn check(&self, c: Cfg) -> Option<(&'static str, String)> {
        // Sharer conservation, every configuration.
        for a in AGENTS {
            if c.cached(a) && !self.covered(c, a) {
                return Some((
                    "conservation",
                    format!(
                        "{}'s cached copy is neither tracked nor owed an invalidation",
                        a.name()
                    ),
                ));
            }
        }
        // Tracked sharers imply a Valid entry.
        if c.sys_sharers != 0 && !c.sys_valid {
            return Some((
                "conservation",
                "sys directory tracks sharers while Invalid".into(),
            ));
        }
        if self.hmg && c.gpu_sharers != 0 && !c.gpu_valid {
            return Some((
                "conservation",
                "gpu directory tracks sharers while Invalid".into(),
            ));
        }
        // SWMR-analog: staleness must have drained at quiescence.
        if c.quiescent() {
            for a in AGENTS {
                if c.stale(a) {
                    return Some((
                        "swmr",
                        format!("quiescent configuration with a stale copy at {}", a.name()),
                    ));
                }
            }
        }
        None
    }
}

/// Builds the waits-for edges the spec's actions imply and returns
/// `(bounded_edges, violations)` — an unbounded cycle is a violation.
fn waits_for(spec: ProtocolSpec) -> (Vec<String>, Vec<Violation>) {
    // Nodes are message classes at hierarchy levels; edges mean
    // "handling X can emit Y". Unbounded cycles deadlock.
    let mut unbounded: Vec<(&str, &str)> = Vec::new();
    let mut bounded: Vec<String> = Vec::new();
    for r in spec.rows() {
        let src = match r.event {
            DirEvent::Invalidation => "Inv@gpu",
            _ => "Req",
        };
        if r.has(Action::InvAllSharers) || r.has(Action::InvOtherSharers) {
            unbounded.push((src, "Inv@sys"));
        }
        if r.has(Action::ForwardInv) {
            unbounded.push((src, "Inv@cache"));
        }
        if r.has(Action::Nack) {
            // Req -> Nack -> Req(retry): bounded by the attempt cap.
            bounded.push("Req -> Nack -> Req (bounded: nack_attempt_cap)".into());
        }
        if r.has(Action::Defer) {
            // Req -> Req(replay): bounded by backlog drain + watchdog.
            bounded.push("Req -> Req replay (bounded: backlog drain)".into());
        }
    }
    // Sys-emitted invalidations land either at caches (terminal) or at
    // the GPU home, which may forward (Inv@gpu edge above).
    if spec.legal(DirState::Valid, DirEvent::Invalidation) {
        unbounded.push(("Inv@sys", "Inv@gpu"));
    }
    unbounded.sort_unstable();
    unbounded.dedup();
    bounded.sort_unstable();
    bounded.dedup();

    // Cycle detection over the unbounded edges (tiny graph: DFS).
    let nodes: Vec<&str> = {
        let mut v: Vec<&str> = unbounded.iter().flat_map(|&(a, b)| [a, b]).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut violations = Vec::new();
    let mut state: HashMap<&str, u8> = HashMap::new(); // 1 = on stack, 2 = done
    fn dfs(
        n: &'static str,
        edges: &[(&'static str, &'static str)],
        state: &mut HashMap<&'static str, u8>,
        path: &mut Vec<&'static str>,
    ) -> Option<Vec<&'static str>> {
        state.insert(n, 1);
        path.push(n);
        for &(a, b) in edges {
            if a != n {
                continue;
            }
            match state.get(b) {
                Some(1) => {
                    let start = path.iter().position(|&x| x == b).unwrap_or(0);
                    let mut cycle = path[start..].to_vec();
                    cycle.push(b);
                    return Some(cycle);
                }
                Some(_) => {}
                None => {
                    if let Some(cyc) = dfs(b, edges, state, path) {
                        return Some(cyc);
                    }
                }
            }
        }
        path.pop();
        state.insert(n, 2);
        None
    }
    // The edge labels are 'static string literals, so the graph borrows
    // nothing; leak-free because no allocation is involved.
    let edges: Vec<(&'static str, &'static str)> = unbounded;
    for &n in &nodes {
        if !state.contains_key(n) {
            let mut path = Vec::new();
            if let Some(cycle) = dfs(n, &edges, &mut state, &mut path) {
                violations.push(Violation {
                    invariant: "waitsfor",
                    detail: format!("unbounded emission cycle: {}", cycle.join(" -> ")),
                    trace: Vec::new(),
                });
                break;
            }
        }
    }
    (bounded, violations)
}

/// Model-checks one variant: BFS over the abstract state space with
/// symmetry reduction, invariants checked on every reachable
/// configuration, shortest counterexamples on violation.
pub fn check_variant(spec: ProtocolSpec, depth: Option<u32>) -> ModelRun {
    let m = Model::new(spec);
    let rows_total = spec.rows().count();
    let mut rows_hit = vec![false; rows_total];

    // canonical -> (parent canonical, rule); the root is its own parent.
    let mut seen: HashMap<u64, (u64, String)> = HashMap::new();
    let mut frontier = VecDeque::new();
    let root = Cfg::INITIAL.canonical();
    seen.insert(root, (root, String::new()));
    frontier.push_back((root, 0u32));

    let mut violations: Vec<Violation> = Vec::new();
    let mut seen_invariants: Vec<&'static str> = Vec::new();
    let mut depth_reached = 0u32;
    let mut truncated = false;

    let trace_to = |seen: &HashMap<u64, (u64, String)>, mut at: u64, hmg: bool| {
        let mut lines = VecDeque::new();
        loop {
            let (parent, rule) = &seen[&at];
            if rule.is_empty() {
                lines.push_front(format!("init            {}", Cfg::decode(at).show(hmg)));
                break;
            }
            lines.push_front(format!("{:<15} {}", rule, Cfg::decode(at).show(hmg)));
            at = *parent;
        }
        lines.into()
    };

    while let Some((enc, d)) = frontier.pop_front() {
        depth_reached = depth_reached.max(d);
        if let Some(bound) = depth {
            if d >= bound {
                truncated = true;
                continue;
            }
        }
        let cfg = Cfg::decode(enc);
        for step in m.successors(cfg) {
            for &ri in &step.rows {
                rows_hit[ri] = true;
            }
            if let Some(what) = step.stuck {
                if !seen_invariants.contains(&"stuck") {
                    seen_invariants.push("stuck");
                    let mut trace = trace_to(&seen, enc, m.hmg);
                    let tv: &mut Vec<String> = &mut trace;
                    tv.push(format!("{:<15} (no handler)", step.rule));
                    violations.push(Violation {
                        invariant: "stuck",
                        detail: what,
                        trace,
                    });
                }
                continue;
            }
            let canon = step.next.canonical();
            if seen.contains_key(&canon) {
                continue;
            }
            seen.insert(canon, (enc, step.rule));
            // Check invariants on the canonical representative; both
            // orbit members violate iff one does (the checks are
            // symmetric in P1/P2).
            if let Some((invariant, detail)) = m.check(Cfg::decode(canon)) {
                if !seen_invariants.contains(&invariant) {
                    seen_invariants.push(invariant);
                    violations.push(Violation {
                        invariant,
                        detail,
                        trace: trace_to(&seen, canon, m.hmg),
                    });
                }
            }
            frontier.push_back((canon, d + 1));
        }
    }

    let (bounded_edges, wf_violations) = waits_for(spec);
    violations.extend(wf_violations);

    ModelRun {
        variant: spec.variant,
        reachable: seen.len() as u64,
        depth_reached,
        truncated,
        rows_exercised: rows_hit.iter().filter(|&&h| h).count(),
        rows_total,
        bounded_edges,
        violations,
    }
}

/// Model-checks every variant (or just `only`, when given).
pub fn check_all(only: Option<SpecVariant>, depth: Option<u32>) -> Vec<ModelRun> {
    SpecVariant::ALL
        .into_iter()
        .filter(|v| only.is_none_or(|o| o == *v))
        .map(|v| check_variant(ProtocolSpec::for_variant(v), depth))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_is_safe_and_exhaustively_explored() {
        for run in check_all(None, None) {
            assert!(
                run.passed(),
                "{}: {:#?}",
                run.variant.name(),
                run.violations
            );
            assert!(!run.truncated, "unbounded run must exhaust the space");
            assert!(
                run.reachable > 100,
                "{}: suspiciously small space ({})",
                run.variant.name(),
                run.reachable
            );
            assert_eq!(
                run.rows_exercised,
                run.rows_total,
                "{}: rows uncovered by the model",
                run.variant.name()
            );
            let r = run.report();
            assert!(r.contains("[model]"), "{r}");
            assert!(r.contains(&format!("variant={}", run.variant.name())));
        }
    }

    #[test]
    fn phase_variants_have_no_nack_edge_and_larger_spaces() {
        let nack = check_variant(ProtocolSpec::for_variant(SpecVariant::Hmg), None);
        let phase = check_variant(ProtocolSpec::for_variant(SpecVariant::HmgPhase), None);
        assert!(nack.bounded_edges.iter().any(|e| e.contains("Nack")));
        assert!(phase.bounded_edges.iter().all(|e| !e.contains("Nack")));
        assert!(
            phase.reachable > nack.reachable,
            "the defer slot adds configurations ({} vs {})",
            phase.reachable,
            nack.reachable
        );
    }

    #[test]
    fn dropped_forward_yields_a_counterexample() {
        let broken = ProtocolSpec::for_variant(SpecVariant::Hmg).with_forward_dropped();
        let run = check_variant(broken, None);
        assert!(!run.passed(), "dropping ForwardInv must be caught");
        let v = &run.violations[0];
        assert!(
            v.invariant == "conservation" || v.invariant == "swmr",
            "{v:?}"
        );
        assert!(!v.trace.is_empty(), "violations carry a trace");
        assert!(run.report().contains("counterexample"), "{}", run.report());
        // The flat variants never exercise the forward, so the same
        // injection is invisible there — the bug is HMG-specific.
        let flat = ProtocolSpec::for_variant(SpecVariant::Nhcc).with_forward_dropped();
        assert!(check_variant(flat, None).passed());
    }

    #[test]
    fn depth_bound_truncates_and_reports_it() {
        let run = check_variant(ProtocolSpec::for_variant(SpecVariant::Hmg), Some(2));
        assert!(run.truncated);
        assert!(run.depth_reached <= 2);
        assert!(run.report().contains("(truncated)"));
    }

    #[test]
    fn symmetry_reduction_at_least_halves_the_asymmetric_space() {
        // Counting without canonicalization must reach more states:
        // the P1/P2 orbit collapse is real.
        let spec = ProtocolSpec::for_variant(SpecVariant::Nhcc);
        let m = Model::new(spec);
        let mut seen = std::collections::HashSet::new();
        let mut frontier = VecDeque::new();
        seen.insert(Cfg::INITIAL.encode());
        frontier.push_back(Cfg::INITIAL.encode());
        while let Some(enc) = frontier.pop_front() {
            for step in m.successors(Cfg::decode(enc)) {
                if step.stuck.is_none() && seen.insert(step.next.encode()) {
                    frontier.push_back(step.next.encode());
                }
            }
        }
        let reduced = check_variant(spec, None).reachable;
        assert!(
            (seen.len() as u64) > reduced,
            "raw {} vs reduced {reduced}",
            seen.len()
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut c = Cfg::INITIAL;
        c.sys_valid = true;
        c.sys_sharers = 0b101;
        c.gpu_valid = true;
        c.gpu_sharers = 1;
        c.cached = 0b011;
        c.stale = 0b010;
        c.inv = [2, 0, 1, 2];
        c.busy = true;
        c.deferred = Some((Agent::P2, true));
        assert_eq!(Cfg::decode(c.encode()), c);
        assert_eq!(c.swapped().swapped(), c);
        assert_eq!(c.canonical(), c.swapped().canonical());
    }
}
