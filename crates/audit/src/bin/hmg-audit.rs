//! `hmg-audit` — static protocol verifier and source-hygiene linter.
//!
//! Usage:
//!
//! ```text
//! hmg-audit [--root DIR] [--inject CLASS] [--model] [--depth N] [--protocol VARIANT]
//! ```
//!
//! Exits 0 when the audit is clean, 1 when it found violations (each
//! printed as `file:line: [rule] message`), 2 on usage errors.
//! `--inject` seeds one known violation class (self-test mode; CI runs
//! these with inverted exit expectations): `incomplete-row`,
//! `waitsfor-cycle`, `entropy`, `unordered-map`, `hot-path-struct`,
//! `dir-match`, `spec-drop-forward`.
//!
//! `--model` additionally runs the explicit-state model checker over
//! the guarded-action spec variants, printing one greppable `[model]`
//! line per variant (and counterexample traces on violation).
//! `--depth N` bounds the BFS (default: exhaustive); `--protocol`
//! restricts to one variant (`nhcc`, `hmg`, `nhcc-phase`, `hmg-phase`).

use std::path::PathBuf;
use std::process::ExitCode;

use hmg_audit::{run_audit, AuditOptions, Inject};
use hmg_protocol::SpecVariant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hmg-audit [--root DIR] [--inject CLASS] [--model] [--depth N] \
         [--protocol VARIANT]\n       CLASS: {}\n       VARIANT: {}",
        Inject::NAMES.join(" | "),
        SpecVariant::ALL.map(|v| v.name()).join(" | ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut opts_inject = None;
    let mut model = false;
    let mut model_depth = None;
    let mut protocol = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--inject" => match args.next().as_deref().and_then(Inject::parse) {
                Some(class) => opts_inject = Some(class),
                None => return usage(),
            },
            "--model" => model = true,
            "--depth" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => model_depth = Some(n),
                None => return usage(),
            },
            "--protocol" => match args.next().as_deref().and_then(SpecVariant::from_name) {
                Some(v) => protocol = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "hmg-audit: {} does not look like the workspace root (no crates/ directory); \
             pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = run_audit(&AuditOptions {
        inject: opts_inject,
        model,
        model_depth,
        protocol,
        ..AuditOptions::new(root)
    });
    for run in &report.model_runs {
        println!("{}", run.report());
    }
    for f in &report.findings {
        println!("{f}");
    }
    println!("{}", report.summary());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
