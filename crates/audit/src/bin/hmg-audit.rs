//! `hmg-audit` — static protocol verifier and source-hygiene linter.
//!
//! Usage:
//!
//! ```text
//! hmg-audit [--root DIR] [--inject CLASS]
//! ```
//!
//! Exits 0 when the audit is clean, 1 when it found violations (each
//! printed as `file:line: [rule] message`), 2 on usage errors.
//! `--inject` seeds one known violation class (self-test mode; CI runs
//! these with inverted exit expectations): `incomplete-row`,
//! `waitsfor-cycle`, `entropy`, `unordered-map`.

use std::path::PathBuf;
use std::process::ExitCode;

use hmg_audit::{run_audit, AuditOptions, Inject};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hmg-audit [--root DIR] [--inject CLASS]\n       CLASS: {}",
        Inject::NAMES.join(" | ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut inject = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--inject" => match args.next().as_deref().and_then(Inject::parse) {
                Some(class) => inject = Some(class),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "hmg-audit: {} does not look like the workspace root (no crates/ directory); \
             pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = run_audit(&AuditOptions { root, inject });
    for f in &report.findings {
        println!("{f}");
    }
    println!("{}", report.summary());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
