//! Static verification of the NHCC/HMG transition table.
//!
//! Consumes `hmg_protocol::try_transition` — the single declarative
//! source of Table I — and proves, with no simulation:
//!
//! * **Completeness**: every `(DirState, DirEvent)` cell is defined for
//!   both the NHCC and HMG variants, except exactly the cells the paper
//!   declares N/A (`(Invalid, Replace)`, and the whole `Invalidation`
//!   column under flat NHCC).
//! * **Determinism**: each cell maps to exactly one `Outcome` (the table
//!   is a pure function; re-evaluation must agree).
//! * **Variant containment**: HMG differs from NHCC only in the
//!   `Invalidation` column (§V-A: "adds the single extra transition").
//! * **Conservation**: no outcome both records the sender as a sharer
//!   and invalidates it; sharer-count deltas are bounded (at most +1 per
//!   transition, and every invalidating outcome that keeps no sharers
//!   deallocates); two-stable-state structure (no outcome can park an
//!   entry in a transient state — `Outcome` has no wait capability).
//! * **Declared consumers**: every message class an outcome can emit
//!   (only `Inv` — the table is ack-free) has a declared consumer in the
//!   engine.

use std::path::Path;

use hmg_protocol::{try_transition, DirEvent, DirState, Outcome};

use crate::findings::{locate, Finding};

/// Source anchor for table-level findings.
const TABLE_RS: &str = "crates/protocol/src/table.rs";

/// The declarative view of Table I: every `(state, event, hmg)` cell and
/// whether the paper declares it N/A.
#[derive(Debug, Clone)]
pub struct TableSpec {
    cells: Vec<(DirState, DirEvent, bool, Option<Outcome>)>,
}

/// Whether the paper's Table I declares the cell undefined: an absent
/// entry cannot be evicted, and flat NHCC homes never receive
/// hierarchical invalidations.
pub fn declared_na(state: DirState, event: DirEvent, hmg: bool) -> bool {
    (state, event) == (DirState::Invalid, DirEvent::Replace)
        || (event == DirEvent::Invalidation && !hmg)
}

impl TableSpec {
    /// Builds the spec by evaluating the in-tree transition function
    /// over its whole domain.
    pub fn from_code() -> Self {
        let mut cells = Vec::new();
        for hmg in [false, true] {
            for state in DirState::ALL {
                for event in DirEvent::ALL {
                    cells.push((state, event, hmg, try_transition(state, event, hmg)));
                }
            }
        }
        TableSpec { cells }
    }

    /// Number of `(state, event, variant)` cells in the spec.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Self-test injection: forget the outcome of one cell, simulating
    /// an incomplete table row. The verifier must report it.
    pub fn with_cell_undefined(mut self, state: DirState, event: DirEvent, hmg: bool) -> Self {
        for c in &mut self.cells {
            if (c.0, c.1, c.2) == (state, event, hmg) {
                c.3 = None;
            }
        }
        self
    }

    fn get(&self, state: DirState, event: DirEvent, hmg: bool) -> Option<Outcome> {
        self.cells
            .iter()
            .find(|c| (c.0, c.1, c.2) == (state, event, hmg))
            .and_then(|c| c.3)
    }
}

/// Message classes a Table I outcome can emit, with their declared
/// consumers. The table is ack-free: invalidations are the only
/// protocol-visible emission, consumed by the engine's invalidation
/// handler (which never generates a reply).
const EMITTED_CONSUMERS: &[(&str, &str, &str)] =
    &[("Inv", "crates/gpu/src/engine.rs", "fn handle_inv")];

/// Runs every static table check; returns the violations found.
pub fn verify(root: &Path, spec: &TableSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    let anchor = locate(root, Path::new(TABLE_RS), "pub fn try_transition");

    // Completeness: defined XOR declared-N/A, per variant.
    for &(state, event, hmg, cell) in &spec.cells {
        let variant = if hmg { "HMG" } else { "NHCC" };
        match (cell, declared_na(state, event, hmg)) {
            (None, false) => out.push(Finding::new(
                "incomplete-row",
                TABLE_RS,
                anchor,
                format!(
                    "({state:?}, {event:?}) has no outcome under {variant} and is not a \
                     declared-N/A cell — the directory would take an unspecified action"
                ),
            )),
            (Some(_), true) => out.push(Finding::new(
                "incomplete-row",
                TABLE_RS,
                anchor,
                format!(
                    "({state:?}, {event:?}) is declared N/A under {variant} but the code \
                     defines an outcome for it"
                ),
            )),
            _ => {}
        }
    }

    // Determinism: the function is pure — re-evaluating the live code
    // must reproduce the captured spec wherever the spec was not
    // deliberately perturbed by an injection.
    for &(state, event, hmg, cell) in &spec.cells {
        if let (Some(a), Some(b)) = (cell, try_transition(state, event, hmg)) {
            if a != b {
                out.push(Finding::new(
                    "incomplete-row",
                    TABLE_RS,
                    anchor,
                    format!(
                        "({state:?}, {event:?}) maps to two different outcomes: {a:?} vs {b:?}"
                    ),
                ));
            }
        }
    }

    // Variant containment: outside the Invalidation column NHCC and HMG
    // must be the same protocol.
    for state in DirState::ALL {
        for event in DirEvent::ALL {
            if event == DirEvent::Invalidation {
                continue;
            }
            let (n, h) = (spec.get(state, event, false), spec.get(state, event, true));
            if n != h {
                out.push(Finding::new(
                    "incomplete-row",
                    TABLE_RS,
                    anchor,
                    format!(
                        "({state:?}, {event:?}) differs between NHCC ({n:?}) and HMG ({h:?}) — \
                         HMG may only add the Invalidation column"
                    ),
                ));
            }
        }
    }

    // Conservation.
    for &(state, event, hmg, cell) in &spec.cells {
        let Some(o) = cell else { continue };
        let cell_name = format!("({state:?}, {event:?}, hmg={hmg})");
        if o.add_sharer && o.inv_all_sharers {
            out.push(Finding::new(
                "conservation",
                TABLE_RS,
                anchor,
                format!(
                    "{cell_name}: adds the sender as a sharer and invalidates all sharers — \
                         the new sharer would be invalidated in the same transition"
                ),
            ));
        }
        if o.inv_all_sharers && o.inv_other_sharers {
            out.push(Finding::new(
                "conservation",
                TABLE_RS,
                anchor,
                format!("{cell_name}: requests both all-sharer and other-sharer invalidation"),
            ));
        }
        if o.add_sharer && o.next != DirState::Valid {
            out.push(Finding::new(
                "conservation",
                TABLE_RS,
                anchor,
                format!(
                    "{cell_name}: records a sharer but leaves the entry {:?} — the sharer \
                         list of an absent entry is meaningless",
                    o.next
                ),
            ));
        }
        if o.inv_all_sharers && o.next != DirState::Invalid {
            out.push(Finding::new(
                "conservation",
                TABLE_RS,
                anchor,
                format!(
                    "{cell_name}: invalidates every sharer yet keeps the entry Valid — a \
                         Valid entry with a forcibly emptied sharer list protects nothing"
                ),
            ));
        }
        if o.next == DirState::Invalid && o.add_sharer {
            out.push(Finding::new(
                "conservation",
                TABLE_RS,
                anchor,
                format!("{cell_name}: deallocates while adding a sharer"),
            ));
        }
    }

    // Declared consumers for everything the table can emit. The Outcome
    // type structurally bounds emissions to invalidations (no ack, no
    // data, no transient-state message exists to emit).
    let emits_inv = spec.cells.iter().any(|c| {
        c.3.is_some_and(|o| o.inv_all_sharers || o.inv_other_sharers)
    });
    if emits_inv {
        for &(class, file, symbol) in EMITTED_CONSUMERS {
            let line = locate(root, Path::new(file), symbol);
            if !root.join(file).exists() || !file_contains(root, file, symbol) {
                out.push(Finding::new(
                    "undeclared-consumer",
                    file,
                    line,
                    format!(
                        "the table emits {class} messages but the declared consumer `{symbol}` \
                         was not found in {file}"
                    ),
                ));
            }
        }
    }

    out
}

fn file_contains(root: &Path, file: &str, needle: &str) -> bool {
    std::fs::read_to_string(root.join(file))
        .map(|t| t.contains(needle))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        // crates/audit -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn clean_table_verifies() {
        let findings = verify(&root(), &TableSpec::from_code());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn spec_covers_both_variants_of_every_cell() {
        assert_eq!(TableSpec::from_code().num_cells(), 24);
    }

    #[test]
    fn injected_incomplete_row_is_reported_with_location() {
        let spec =
            TableSpec::from_code().with_cell_undefined(DirState::Valid, DirEvent::Replace, false);
        let findings = verify(&root(), &spec);
        assert!(
            findings.iter().any(|f| f.rule == "incomplete-row"
                && f.file == Path::new(TABLE_RS)
                && f.line > 1
                && f.msg.contains("Replace")),
            "{findings:?}"
        );
    }

    #[test]
    fn na_cells_are_exactly_the_papers() {
        let mut na = 0;
        for hmg in [false, true] {
            for s in DirState::ALL {
                for e in DirEvent::ALL {
                    if declared_na(s, e, hmg) {
                        na += 1;
                    }
                }
            }
        }
        // (I, Replace) x 2 variants + Invalidation column (2 states) under NHCC.
        assert_eq!(na, 4);
    }
}
