//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Section VII). Each function returns a structured result
//! with a `print` method; the `experiments` binary in `hmg-bench` wires
//! them to the command line, and EXPERIMENTS.md records paper-measured
//! comparisons.

use hmg_gpu::{Engine, EngineConfig, RunMetrics};
use hmg_protocol::{ProtocolKind, WorkloadTrace};
use hmg_sim::{stats, FaultPlan, SimError};
use hmg_workloads::micro::{correlation_suite, MachineParams, Micro};
use hmg_workloads::suite::{by_abbrev, table3};
use hmg_workloads::{Scale, WorkloadSpec};

use crate::report::{f2, f3, pct, Table};
use crate::runner::{parallel_map, SweepCheckpoint};
use crate::supervisor::{self, Attempt, CellCommand, CellStatus, Isolation, SupervisorConfig};

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Experiment scale (default [`Scale::Small`]).
    pub scale: Scale,
    /// Workload-generation seed.
    pub seed: u64,
    /// Restrict to these workload abbreviations (None = whole suite).
    pub filter: Option<Vec<String>>,
    /// Fault-injection plan applied to every engine run (None = no
    /// faults).
    pub faults: Option<FaultPlan>,
    /// Graceful degradation: isolate per-run failures and report a
    /// partial result with a failure table instead of aborting the
    /// whole sweep on the first deadlocked workload.
    pub keep_going: bool,
    /// Checkpoint file for speedup sweeps: every completed cell is
    /// appended as it finishes, so an interrupted sweep can be resumed.
    /// `None` disables checkpointing.
    pub checkpoint: Option<std::path::PathBuf>,
    /// With a checkpoint file: reuse its completed cells and re-run
    /// only failed or missing ones. The final report is identical to an
    /// uninterrupted sweep.
    pub resume: bool,
    /// Livelock-watchdog budget override: `None` arms the
    /// workload-scaled default, `Some(0)` disarms the watchdog, any
    /// other value is the budget in cycles.
    pub livelock_budget: Option<u64>,
    /// Supervised-sweep worker pool size (0 = all cores).
    pub jobs: usize,
    /// Per-cell wall-clock budget in seconds for process-isolated
    /// cells; a cell exceeding it is killed and reported as `timeout`.
    /// `None` disables the budget. Ignored under thread isolation
    /// (threads cannot be killed).
    pub cell_timeout_secs: Option<u64>,
    /// Retry cap for transient cell failures (crash/timeout): after
    /// this many re-attempts the cell is quarantined.
    pub retries: u32,
    /// Cell isolation mode: `Process` re-executes the experiments
    /// binary per cell (crash/hang-proof), `Thread` runs cells
    /// in-process (panic-safe only).
    pub isolation: Isolation,
    /// Directory for per-cell crash-consistent snapshot stores. When
    /// set, every cell periodically captures its complete simulation
    /// state there, and a crashed/killed/timed-out cell's retry resumes
    /// from the latest valid snapshot instead of re-simulating from
    /// cycle zero. `None` disables snapshotting.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Cycles between periodic snapshot captures when `snapshot_dir` is
    /// set (0 = resume-only: no periodic capture, but a retry still
    /// resumes from whatever an earlier attempt left behind).
    pub snapshot_interval: u64,
}

/// Default cycles between periodic snapshot captures. A capture costs
/// roughly serialize + write of the full live state (~10-15 MB at
/// small scale), so the default trades a few percent of throughput for
/// losing at most ~100k cycles of progress to a preemption; lower it
/// for expensive cells on flaky hosts, raise it (or pass 0 for
/// resume-only) when capture overhead matters more than lost work.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 100_000;

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: Scale::Small,
            seed: 2020,
            filter: None,
            faults: None,
            keep_going: false,
            checkpoint: None,
            resume: false,
            livelock_budget: None,
            jobs: 0,
            cell_timeout_secs: None,
            retries: 2,
            isolation: Isolation::Thread,
            snapshot_dir: None,
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
        }
    }
}

impl ExpOptions {
    /// The Table III specs selected by the filter, in figure order.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        table3()
            .into_iter()
            .filter(|s| match &self.filter {
                None => true,
                Some(list) => list.iter().any(|a| a == s.abbrev),
            })
            .collect()
    }

    /// The supervisor configuration these options select.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            jobs: self.jobs,
            cell_timeout: self.cell_timeout_secs.map(std::time::Duration::from_secs),
            retries: self.retries,
            isolation: self.isolation,
            keep_going: self.keep_going,
        }
    }

    /// The engine configuration these options select for in-process
    /// (non-supervised) drivers like Figs. 3 and 7.
    fn base_config(&self, protocol: ProtocolKind) -> EngineConfig {
        let mut cfg = match self.scale {
            Scale::Tiny => EngineConfig::small_test(protocol),
            Scale::Small | Scale::Full => EngineConfig::paper_default(protocol),
        };
        if let Some(f) = &self.faults {
            cfg.faults = f.clone();
        }
        cfg
    }

    /// Builds the cell context for one (workload, protocol) run.
    fn cell(&self, key: String, workload: &str, protocol: ProtocolKind, tweak: &str) -> CellCtx {
        let snapshot_path = self
            .snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{}.snap", key.replace(['/', ' '], "_"))));
        CellCtx {
            key,
            workload: workload.to_string(),
            protocol,
            tweak: tweak.to_string(),
            scale: self.scale,
            seed: self.seed,
            faults: self.faults.clone(),
            livelock_budget: self.livelock_budget,
            snapshot_path,
            snapshot_interval: self.snapshot_interval,
        }
    }
}

// ---------------------------------------------------------------------
// Sweep cells: serializable units of work the supervisor can re-exec
// in a child process (`experiments __run-cell ...`) or run in-process.
// ---------------------------------------------------------------------

/// Applies a serialized configuration tweak to `cfg`.
///
/// Tweaks are `+`-separated clauses, so a figure's configuration can
/// cross the process boundary to a `__run-cell` child:
///
/// | clause              | effect                                       |
/// |---------------------|----------------------------------------------|
/// | `bw=G`              | inter-GPU bandwidth in GB/s (Fig. 12)        |
/// | `l2mb=M`            | L2 capacity per GPU in MB (Fig. 13)          |
/// | `dirk=K`            | directory entries per GPM in K (Fig. 14)     |
/// | `grain=G`           | lines per directory entry, fixed coverage    |
/// | `gpus=N`            | N-GPU topology, 4 GPMs each                  |
/// | `zero-cost-fences`  | free release fences (ablation)               |
/// | `write-policy=wt/wb`| L2 write policy (ablation)                   |
/// | `downgrades=on/off` | sharer-downgrade messages (ablation)         |
/// | `placement=ft/il`   | first-touch / interleaved pages (ablation)   |
/// | `ecc=off/parity/secded` | cache/directory error coding (integrity) |
/// | `checksums=on/off`  | per-message checksum verification            |
/// | `scrub=N`           | background scrubber period in cycles         |
/// | `double-bit=F`      | SEC-DED uncorrectable-flip fraction in [0,1] |
/// | `nack-thr=N`        | busy-home flow-control threshold in cycles   |
/// | `arbitration=nack/phase` | busy-home discipline: NACK/retry or phase-priority |
pub fn apply_tweak(spec: &str, cfg: &mut EngineConfig) -> Result<(), SimError> {
    for clause in spec.split('+').filter(|c| !c.is_empty()) {
        let (key, value) = match clause.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (clause, None),
        };
        let bad = || SimError::config(format!("bad tweak clause `{clause}`"));
        match (key, value) {
            ("bw", Some(v)) => cfg.fabric.inter_gpu_gbps = v.parse().map_err(|_| bad())?,
            ("l2mb", Some(v)) => {
                let mb: u64 = v.parse().map_err(|_| bad())?;
                let lines_per_gpm = mb * 1024 * 1024 / 4 / cfg.geometry.line_bytes() as u64;
                cfg.l2 = hmg_mem::CacheConfig::new(lines_per_gpm as u32, 16);
            }
            ("dirk", Some(v)) => {
                let k: u32 = v.parse().map_err(|_| bad())?;
                cfg.dir = hmg_mem::DirectoryConfig::new(k * 1024, 16);
            }
            ("grain", Some(v)) => {
                let g: u32 = v
                    .parse()
                    .ok()
                    .filter(|&g| g >= 1 && u32::is_power_of_two(g))
                    .ok_or_else(bad)?;
                let coverage_lines = cfg.dir.entries as u64 * 4; // Table II coverage
                let entries = (coverage_lines / g as u64) as u32;
                cfg.geometry = hmg_mem::MemGeometry::new(
                    cfg.geometry.line_bytes(),
                    g,
                    cfg.geometry.page_bytes(),
                );
                cfg.dir = hmg_mem::DirectoryConfig::new(entries.max(16) / 16 * 16, 16);
            }
            ("gpus", Some(v)) => {
                let n: u16 = v.parse().map_err(|_| bad())?;
                cfg.topo = hmg_interconnect::Topology::new(n, 4);
            }
            ("zero-cost-fences", None) => cfg.zero_cost_fences = true,
            ("write-policy", Some("wt")) => {
                cfg.l2_write_policy = hmg_gpu::WritePolicy::WriteThrough;
            }
            ("write-policy", Some("wb")) => cfg.l2_write_policy = hmg_gpu::WritePolicy::WriteBack,
            ("downgrades", Some("on")) => cfg.sharer_downgrades = true,
            ("downgrades", Some("off")) => cfg.sharer_downgrades = false,
            ("placement", Some("ft")) => cfg.placement = hmg_mem::PagePlacement::FirstTouch,
            ("placement", Some("il")) => cfg.placement = hmg_mem::PagePlacement::Interleaved,
            ("ecc", Some("off")) => cfg.ecc = hmg_gpu::EccMode::None,
            ("ecc", Some("parity")) => cfg.ecc = hmg_gpu::EccMode::Parity,
            ("ecc", Some("secded")) => cfg.ecc = hmg_gpu::EccMode::SecDed,
            ("checksums", Some("on")) => cfg.checksums = true,
            ("checksums", Some("off")) => cfg.checksums = false,
            ("scrub", Some(v)) => {
                cfg.scrub_interval = hmg_sim::Cycle(v.parse().map_err(|_| bad())?);
            }
            ("double-bit", Some(v)) => {
                let f: f64 = v.parse().map_err(|_| bad())?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(bad());
                }
                cfg.ecc_double_bit_fraction = f;
            }
            ("nack-thr", Some(v)) => {
                cfg.home_nack_threshold = Some(v.parse().map_err(|_| bad())?);
            }
            ("arbitration", Some(v)) => {
                cfg.arbitration = hmg_protocol::Arbitration::from_name(v).ok_or_else(bad)?;
            }
            _ => return Err(bad()),
        }
    }
    Ok(())
}

/// Everything needed to run one sweep cell, small enough to serialize
/// across the `__run-cell` process boundary.
#[derive(Debug, Clone)]
pub struct CellCtx {
    /// Unique cell key within the sweep (`workload/protocol`, or
    /// `point/workload/protocol` for sensitivity sweeps).
    pub key: String,
    /// Workload abbreviation (Table III).
    pub workload: String,
    /// Protocol configuration to run.
    pub protocol: ProtocolKind,
    /// Serialized configuration tweak (see [`apply_tweak`]).
    pub tweak: String,
    /// Experiment scale.
    pub scale: Scale,
    /// Workload-generation seed.
    pub seed: u64,
    /// Fault-injection plan, if any.
    pub faults: Option<FaultPlan>,
    /// Livelock-watchdog budget override.
    pub livelock_budget: Option<u64>,
    /// Base path of this cell's double-buffered snapshot store (`None`
    /// disables snapshotting).
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Cycles between periodic snapshot captures (0 = resume-only).
    pub snapshot_interval: u64,
}

/// The result of one completed sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct CellOutcome {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed-memory state digest ([`RunMetrics::state_digest`]).
    pub digest: u64,
    /// DES events executed (throughput accounting).
    pub events: u64,
    /// Cycle this cell resumed from (a snapshot left by an interrupted
    /// earlier attempt), or `None` for a cold start.
    pub resumed_from: Option<u64>,
}

/// Runs one sweep cell from scratch: trace generation, configuration,
/// watchdog arming, isolated execution. This is the single code path
/// shared by thread-isolated cells and `__run-cell` children, so both
/// isolation modes produce bit-identical results.
pub fn run_cell(ctx: &CellCtx) -> Result<CellOutcome, SimError> {
    run_cell_attempt(ctx, 1, false)
}

/// Stable identity hash of everything that defines a cell's result,
/// stamped into its snapshot headers so a snapshot from a different
/// cell — or the same cell under different semantics — is refused as
/// stale rather than silently resumed.
fn snapshot_identity(ctx: &CellCtx) -> u64 {
    let faults = ctx
        .faults
        .as_ref()
        .map(FaultPlan::to_spec)
        .unwrap_or_default();
    let id = format!(
        "{}|{}|{}|{}|{}|{}|{}|{:?}",
        ctx.key,
        ctx.workload,
        ctx.protocol.name(),
        ctx.tweak,
        scale_name(ctx.scale),
        ctx.seed,
        faults,
        ctx.livelock_budget,
    );
    crate::runner::fnv1a64(id.as_bytes())
}

/// [`run_cell`] with the supervisor context it cannot see: the attempt
/// number and whether this is a `__run-cell` child process. The
/// [`supervisor::ENV_SNAPSHOT_KILL`] preemption knob only arms on the
/// first attempt of a process-isolated cell — later attempts must
/// resume and finish, and an in-process abort would take the whole
/// sweep down.
fn run_cell_attempt(
    ctx: &CellCtx,
    attempt: u32,
    process_child: bool,
) -> Result<CellOutcome, SimError> {
    let spec = by_abbrev(&ctx.workload)
        .ok_or_else(|| SimError::config(format!("unknown workload `{}`", ctx.workload)))?;
    let trace = spec.generate(ctx.scale, ctx.seed);
    let mut cfg = match ctx.scale {
        Scale::Tiny => EngineConfig::small_test(ctx.protocol),
        Scale::Small | Scale::Full => EngineConfig::paper_default(ctx.protocol),
    };
    if let Some(f) = &ctx.faults {
        cfg.faults = f.clone();
    }
    apply_tweak(&ctx.tweak, &mut cfg)?;
    crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(ctx.scale));
    crate::runner::arm_watchdog(&mut cfg, &trace, ctx.livelock_budget);
    let (m, resumed_from) = match &ctx.snapshot_path {
        None => (crate::runner::run_isolated(cfg, &trace)?, None),
        Some(path) => {
            // Best-effort: a missing store directory degrades to
            // cold-start-plus-write-errors, never a failed cell.
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                let _ = std::fs::create_dir_all(dir);
            }
            let mut policy = hmg_gpu::SnapshotPolicy::periodic(
                path.clone(),
                snapshot_identity(ctx),
                ctx.snapshot_interval,
            );
            if process_child && attempt == 1 {
                policy.kill_at = supervisor::snapshot_kill_cycle(&ctx.key);
            }
            let (m, rep) = crate::runner::run_preemptible(cfg, &trace, &policy)?;
            // Greppable snapshot accounting, mirroring the
            // `[fail-in-place]`/`[integrity]` contract: silent on
            // snapshot-free cold runs.
            for (p, e) in &rep.rejected {
                println!("[snapshot] cell {} refused {}: {e}", ctx.key, p.display());
            }
            if let Some(c) = rep.resumed_from {
                println!("[snapshot] cell {} resumed from cycle {c}", ctx.key);
            }
            (m, rep.resumed_from)
        }
    };
    // Per-epoch fail-in-place accounting, greppable from sweep logs
    // (all-zero on fault-free runs, so print nothing).
    if m.reconfig.epochs > 0 {
        println!(
            "[fail-in-place] workload={} protocol={} {}",
            ctx.workload,
            ctx.protocol.name(),
            m.reconfig
        );
    }
    // Soft-error accounting, same contract: silent on fault-free runs.
    if !m.integrity.is_zero() {
        println!(
            "[integrity] workload={} protocol={} {}",
            ctx.workload,
            ctx.protocol.name(),
            m.integrity
        );
    }
    Ok(CellOutcome {
        cycles: m.total_cycles.as_u64(),
        digest: m.state_digest,
        events: m.events,
        resumed_from,
    })
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("unknown error")
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Entry point of the hidden `__run-cell` mode the `experiments`
/// binary dispatches before normal argument parsing. Parses the cell
/// spec from `args`, runs the cell, and reports the outcome as the
/// final stdout line (`__hmg_cell_v1 ok ...` on success, `__hmg_cell_v1
/// err ...` with exit code 2 on a typed simulation error). Any other
/// exit — a panic, a kill — is classified by the parent as a crash.
pub fn cell_main(args: &[String]) -> i32 {
    let (ctx, attempt) = match parse_cell_args(args) {
        Ok(v) => v,
        Err(e) => {
            println!(
                "{} err {}",
                supervisor::CELL_MARKER,
                first_line(&e.to_string())
            );
            return supervisor::CELL_FAULT_EXIT;
        }
    };
    supervisor::apply_test_knobs(&ctx.key, attempt);
    match run_cell_attempt(&ctx, attempt, true) {
        Ok(out) => {
            let resumed = out
                .resumed_from
                .map(|c| format!(" resumed={c}"))
                .unwrap_or_default();
            println!(
                "{} ok cycles={} digest={:016x} events={}{}",
                supervisor::CELL_MARKER,
                out.cycles,
                out.digest,
                out.events,
                resumed
            );
            0
        }
        Err(e) => {
            println!(
                "{} err {}",
                supervisor::CELL_MARKER,
                first_line(&e.to_string())
            );
            supervisor::CELL_FAULT_EXIT
        }
    }
}

fn parse_cell_args(args: &[String]) -> Result<(CellCtx, u32), SimError> {
    let mut ctx = CellCtx {
        key: String::new(),
        workload: String::new(),
        protocol: ProtocolKind::Hmg,
        tweak: String::new(),
        scale: Scale::Tiny,
        seed: 0,
        faults: None,
        livelock_budget: None,
        snapshot_path: None,
        snapshot_interval: 0,
    };
    let mut attempt = 1u32;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| SimError::config(format!("{flag} needs a value")))?;
        let bad = || SimError::config(format!("bad {flag} value `{value}`"));
        match flag {
            "--key" => ctx.key = value.clone(),
            "--workload" => ctx.workload = value.clone(),
            "--protocol" => ctx.protocol = ProtocolKind::from_name(value).ok_or_else(bad)?,
            "--tweak" => ctx.tweak = value.clone(),
            "--scale" => ctx.scale = parse_scale(value).ok_or_else(bad)?,
            "--seed" => ctx.seed = value.parse().map_err(|_| bad())?,
            "--attempt" => attempt = value.parse().map_err(|_| bad())?,
            "--faults" => ctx.faults = Some(FaultPlan::parse(value)?),
            "--livelock-budget" => ctx.livelock_budget = Some(value.parse().map_err(|_| bad())?),
            "--snapshot-path" => ctx.snapshot_path = Some(std::path::PathBuf::from(value)),
            "--snapshot-interval" => ctx.snapshot_interval = value.parse().map_err(|_| bad())?,
            other => return Err(SimError::config(format!("unknown cell flag `{other}`"))),
        }
        i += 2;
    }
    if ctx.workload.is_empty() {
        return Err(SimError::config(
            "__run-cell requires --workload".to_string(),
        ));
    }
    if ctx.key.is_empty() {
        ctx.key = format!("{}/{}", ctx.workload, ctx.protocol.name());
    }
    Ok((ctx, attempt))
}

/// Builds the `__run-cell` re-exec command for `ctx`.
fn cell_command(ctx: &CellCtx, attempt: u32) -> Result<CellCommand, SimError> {
    let exe = std::env::current_exe()
        .map_err(|e| SimError::config(format!("cannot locate the experiments binary: {e}")))?;
    let mut args: Vec<String> = vec![
        "__run-cell".into(),
        "--key".into(),
        ctx.key.clone(),
        "--workload".into(),
        ctx.workload.clone(),
        "--protocol".into(),
        ctx.protocol.name().to_string(),
        "--tweak".into(),
        ctx.tweak.clone(),
        "--scale".into(),
        scale_name(ctx.scale).to_string(),
        "--seed".into(),
        ctx.seed.to_string(),
        "--attempt".into(),
        attempt.to_string(),
    ];
    if let Some(f) = &ctx.faults {
        args.push("--faults".into());
        args.push(f.to_spec());
    }
    if let Some(b) = ctx.livelock_budget {
        args.push("--livelock-budget".into());
        args.push(b.to_string());
    }
    if let Some(p) = &ctx.snapshot_path {
        args.push("--snapshot-path".into());
        args.push(p.display().to_string());
        args.push("--snapshot-interval".into());
        args.push(ctx.snapshot_interval.to_string());
    }
    Ok(CellCommand { exe, args })
}

/// Parses the `__hmg_cell_v1 ok` marker payload a child printed.
fn parse_cell_payload(payload: &str) -> Option<CellOutcome> {
    let (mut cycles, mut digest, mut events) = (None, None, None);
    let mut resumed_from = None;
    for tok in payload.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        match k {
            "cycles" => cycles = Some(v.parse().ok()?),
            "digest" => digest = Some(u64::from_str_radix(v, 16).ok()?),
            "events" => events = Some(v.parse().ok()?),
            "resumed" => resumed_from = Some(v.parse().ok()?),
            _ => return None,
        }
    }
    Some(CellOutcome {
        cycles: cycles?,
        digest: digest?,
        events: events?,
        resumed_from,
    })
}

/// One attempt of a cell in-process: panics (from the injection knob or
/// residual engine bugs outside [`crate::runner::run_isolated`]) are
/// caught and classified as crashes so the supervisor can retry.
fn thread_attempt(cell: &CellCtx, attempt_no: u32) -> Attempt<CellOutcome> {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        supervisor::apply_test_knobs(&cell.key, attempt_no);
        run_cell_attempt(cell, attempt_no, false)
    }));
    match r {
        Ok(Ok(out)) => Attempt::Ok(out),
        Ok(Err(e)) => Attempt::Fault(e),
        Err(payload) => Attempt::Crashed(format!(
            "cell panicked: {}",
            supervisor::panic_message(payload.as_ref())
        )),
    }
}

/// One attempt of a cell in a child process via `__run-cell` re-exec.
fn process_cell_attempt(
    cell: &CellCtx,
    attempt_no: u32,
    sup: &SupervisorConfig,
) -> Attempt<CellOutcome> {
    let cmd = match cell_command(cell, attempt_no) {
        Ok(cmd) => cmd,
        Err(e) => return Attempt::Fault(e),
    };
    match supervisor::process_attempt(&cmd, sup.cell_timeout) {
        Attempt::Ok(payload) => match parse_cell_payload(&payload) {
            Some(out) => Attempt::Ok(out),
            None => Attempt::Crashed(format!("unparseable cell marker payload `{payload}`")),
        },
        Attempt::Fault(e) => Attempt::Fault(e),
        Attempt::Crashed(m) => Attempt::Crashed(m),
        Attempt::Timeout(m) => Attempt::Timeout(m),
    }
}

/// Per-cell merged outcome of a supervised sweep.
enum CellResult {
    /// The cell completed (this run, or reused from the checkpoint).
    Done { outcome: CellOutcome },
    /// The cell failed: a typed error, a quarantined crash, or a
    /// timeout-kill.
    Failed(SimError),
    /// The cell was drained unrun after a hard failure stopped the
    /// sweep (no `--keep-going`).
    Skipped,
}

/// Runs `cells` through the supervisor: checkpointed cells are reused,
/// the rest execute under the configured isolation with retry/backoff
/// and timeout-kill, completed cells are checkpointed as they finish,
/// and results merge back in input order.
fn run_cells(
    opts: &ExpOptions,
    cells: &[CellCtx],
    ckpt: Option<&SweepCheckpoint>,
) -> Vec<CellResult> {
    let mut merged: Vec<Option<CellResult>> = cells
        .iter()
        .map(|c| {
            ckpt.and_then(|k| k.lookup(&c.key))
                .map(|rec| CellResult::Done {
                    outcome: CellOutcome {
                        cycles: rec.cycles,
                        digest: rec.digest,
                        events: 0,
                        resumed_from: None,
                    },
                })
        })
        .collect();
    let reused = merged.iter().filter(|m| m.is_some()).count();
    let pending: Vec<CellCtx> = cells
        .iter()
        .zip(&merged)
        .filter(|(_, m)| m.is_none())
        .map(|(c, _)| c.clone())
        .collect();
    let sup = opts.supervisor_config();
    let resumed_cells = std::sync::atomic::AtomicU64::new(0);
    let report = supervisor::supervise(
        &pending,
        |c: &CellCtx| c.key.clone(),
        &sup,
        |cell, attempt_no| {
            let a = match sup.isolation {
                Isolation::Thread => thread_attempt(cell, attempt_no),
                Isolation::Process => process_cell_attempt(cell, attempt_no, &sup),
            };
            // Record final outcomes immediately, so an interrupt loses
            // at most the in-flight cells. Crashes/timeouts may still
            // be retried; they are recorded post-merge instead.
            match &a {
                Attempt::Ok(out) => {
                    supervisor::tally_events(out.events);
                    if out.resumed_from.is_some() {
                        resumed_cells.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    if let Some(k) = ckpt {
                        k.record_ok(&cell.key, out.cycles, out.digest);
                    }
                }
                Attempt::Fault(e) => {
                    if let Some(k) = ckpt {
                        k.record_failure(&cell.key, &e.to_string());
                    }
                }
                Attempt::Crashed(_) | Attempt::Timeout(_) => {}
            }
            a
        },
    );
    println!(
        "{}",
        report.summary_line(reused, ckpt.map_or(0, |c| c.stale_rows()))
    );
    let resumed = resumed_cells.load(std::sync::atomic::Ordering::Relaxed);
    if resumed > 0 {
        println!("[snapshot] resumed_cells={resumed}");
    }
    let mut live = report.cells.into_iter();
    for slot in merged.iter_mut() {
        if slot.is_some() {
            continue;
        }
        let Some(cr) = live.next() else { break };
        *slot = Some(match cr.status {
            CellStatus::Ok => match cr.outcome {
                Some(outcome) => CellResult::Done { outcome },
                None => CellResult::Failed(SimError::protocol(
                    "cell reported ok without an outcome".to_string(),
                )),
            },
            CellStatus::Failed(e) => CellResult::Failed(e),
            CellStatus::Crashed(m) => {
                let e = SimError::protocol(format!("cell crashed: {m}"));
                if let Some(k) = ckpt {
                    k.record_failure(&cr.key, &e.to_string());
                }
                CellResult::Failed(e)
            }
            CellStatus::Timeout(m) => {
                let e = SimError::protocol(format!("cell timed out: {m}"));
                if let Some(k) = ckpt {
                    k.record_failure(&cr.key, &e.to_string());
                }
                CellResult::Failed(e)
            }
            CellStatus::Skipped => CellResult::Skipped,
        });
    }
    merged
        .into_iter()
        .map(|m| m.unwrap_or(CellResult::Skipped))
        .collect()
}

// ---------------------------------------------------------------------
// Speedup suites (Figs. 2, 8, 12, 13, 14)
// ---------------------------------------------------------------------

/// One failed run inside a `--keep-going` sweep.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Workload abbreviation.
    pub workload: String,
    /// Protocol configuration that failed.
    pub protocol: ProtocolKind,
    /// The full error, including cycle/agent/address context and the
    /// machine-state dump.
    pub error: SimError,
}

/// Per-workload speedups of several protocols over the no-peer-caching
/// baseline.
#[derive(Debug, Clone)]
pub struct SpeedupResult {
    /// The protocols compared, in column order.
    pub protocols: Vec<ProtocolKind>,
    /// Workload abbreviations, in figure order. Workloads with a failed
    /// run are excluded here and listed in `failures` instead.
    pub workloads: Vec<String>,
    /// `rows[w][p]` = speedup of protocol `p` on workload `w`.
    pub rows: Vec<Vec<f64>>,
    /// Geomean per protocol (over the surviving workloads).
    pub geomeans: Vec<f64>,
    /// Runs that failed under `--keep-going` (empty otherwise).
    pub failures: Vec<RunFailure>,
}

impl SpeedupResult {
    /// Renders the figure as a table.
    pub fn print(&self, title: &str) {
        println!("== {title} ==");
        let mut headers = vec!["workload".to_string()];
        headers.extend(self.protocols.iter().map(|p| p.name().to_string()));
        let mut t = Table::new(headers);
        for (w, row) in self.workloads.iter().zip(&self.rows) {
            let mut cells = vec![w.clone()];
            cells.extend(row.iter().map(|&v| f2(v)));
            t.row(cells);
        }
        let mut cells = vec!["GeoMean".to_string()];
        cells.extend(self.geomeans.iter().map(|&v| f2(v)));
        t.row(cells);
        println!("{}", t.render());
        if !self.failures.is_empty() {
            println!(
                "-- {} failed run(s); partial result --",
                self.failures.len()
            );
            let mut ft = Table::new(vec![
                "workload".to_string(),
                "protocol".to_string(),
                "error".to_string(),
            ]);
            for f in &self.failures {
                let first_line = f
                    .error
                    .to_string()
                    .lines()
                    .next()
                    .unwrap_or_default()
                    .to_string();
                ft.row(vec![
                    f.workload.clone(),
                    f.protocol.name().to_string(),
                    first_line,
                ]);
            }
            println!("{}", ft.render());
        }
    }

    /// Renders the figure as an SVG grouped-bar chart.
    pub fn to_svg(&self, title: &str) -> String {
        let mut chart = hmg_plot::GroupedBars::new(title)
            .subtitle("speedup over the no-peer-caching baseline")
            .series(
                self.protocols
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect(),
            )
            .y_label("speedup")
            .reference_line(1.0)
            .label_last_group();
        for (w, row) in self.workloads.iter().zip(&self.rows) {
            chart = chart.group(w.clone(), row.clone());
        }
        chart = chart.group("GeoMean", self.geomeans.clone());
        chart.to_svg()
    }

    /// Geomean speedup of one protocol.
    ///
    /// # Panics
    ///
    /// Panics if the protocol was not part of this result.
    pub fn geomean_of(&self, p: ProtocolKind) -> f64 {
        let i = self
            .protocols
            .iter()
            .position(|&q| q == p)
            .expect("protocol in result");
        self.geomeans[i]
    }
}

/// Runs the suite under `protocols` (plus the baseline) with the
/// serialized `tweak` applied to every configuration; returns speedups
/// over the baseline.
///
/// Every (workload, protocol) cell runs under the sweep supervisor:
/// process- or thread-isolated, retried with backoff on transient
/// failure, timeout-killed when over budget, and checkpointed as it
/// finishes so `--resume` reuses completed cells. Without
/// `keep_going`, the first hard failure drains the sweep and comes
/// back as `Err`; with it, failures land in the result's failure
/// table.
pub fn speedup_suite(
    opts: &ExpOptions,
    protocols: &[ProtocolKind],
    tweak: &str,
) -> Result<SpeedupResult, SimError> {
    let specs = opts.specs();
    // Sweep supervisor: completed cells are checkpointed to disk as
    // they finish; `--resume` reuses them and re-runs only failed,
    // stale, or missing cells.
    let identity = sweep_identity(opts, protocols, &specs, tweak);
    let ckpt = crate::runner::open_checkpoint(opts.checkpoint.as_ref(), &identity, opts.resume)?;
    // One cell per (workload, protocol-or-baseline).
    let mut cells: Vec<CellCtx> = Vec::new();
    for spec in &specs {
        for p in std::iter::once(ProtocolKind::NoPeerCaching).chain(protocols.iter().copied()) {
            let key = format!("{}/{}", spec.abbrev, p.name());
            cells.push(opts.cell(key, spec.abbrev, p, tweak));
        }
    }
    let results = run_cells(opts, &cells, ckpt.as_ref());
    let per_run = protocols.len() + 1;
    let mut rows = Vec::with_capacity(specs.len());
    let mut workloads = Vec::with_capacity(specs.len());
    let mut failures = Vec::new();
    for (w, spec) in specs.iter().enumerate() {
        let chunk = &results[w * per_run..(w + 1) * per_run];
        if chunk.iter().all(|c| matches!(c, CellResult::Done { .. })) {
            let cycles_of = |c: &CellResult| match c {
                CellResult::Done { outcome, .. } => outcome.cycles,
                _ => 1,
            };
            let base = cycles_of(&chunk[0]) as f64;
            let row: Vec<f64> = (0..protocols.len())
                .map(|p| base / cycles_of(&chunk[1 + p]) as f64)
                .collect();
            rows.push(row);
            workloads.push(spec.abbrev.to_string());
            continue;
        }
        for (i, c) in chunk.iter().enumerate() {
            if let CellResult::Failed(e) = c {
                let protocol = if i == 0 {
                    ProtocolKind::NoPeerCaching
                } else {
                    protocols[i - 1]
                };
                failures.push(RunFailure {
                    workload: spec.abbrev.to_string(),
                    protocol,
                    error: e.clone(),
                });
            }
        }
    }
    if !opts.keep_going {
        if let Some(f) = failures.first() {
            return Err(f.error.clone());
        }
    }
    let geomeans: Vec<f64> = (0..protocols.len())
        .map(|p| stats::geomean(&rows.iter().map(|r| r[p]).collect::<Vec<_>>()))
        .collect();
    Ok(SpeedupResult {
        protocols: protocols.to_vec(),
        workloads,
        rows,
        geomeans,
        failures,
    })
}

/// The shape of a speedup sweep, pinned into its checkpoint header so
/// cells from a different sweep are never silently mixed in. The
/// serialized tweak and fault plan are part of the identity, so the
/// same protocol/workload sets under different configurations or
/// fault schedules are still told apart.
fn sweep_identity(
    opts: &ExpOptions,
    protocols: &[ProtocolKind],
    specs: &[WorkloadSpec],
    tweak: &str,
) -> String {
    let protos: Vec<&str> = protocols.iter().map(|p| p.name()).collect();
    let loads: Vec<&str> = specs.iter().map(|s| s.abbrev).collect();
    format!(
        "scale={:?} seed={} protocols={} workloads={} tweak={} faults={}",
        opts.scale,
        opts.seed,
        protos.join(","),
        loads.join(","),
        tweak,
        opts.faults
            .as_ref()
            .map(FaultPlan::to_spec)
            .unwrap_or_default(),
    )
}

/// Fig. 8: all five configurations on the 4-GPU Table II machine.
pub fn fig8(opts: &ExpOptions) -> Result<SpeedupResult, SimError> {
    speedup_suite(opts, &ProtocolKind::FIG8, "")
}

/// Fig. 2: the motivating subset (non-hierarchical SW, non-hierarchical
/// HW, idealized caching).
pub fn fig2(opts: &ExpOptions) -> Result<SpeedupResult, SimError> {
    speedup_suite(
        opts,
        &[
            ProtocolKind::SwNonHier,
            ProtocolKind::Nhcc,
            ProtocolKind::Ideal,
        ],
        "",
    )
}

/// Prior-work comparison: the CARVE-like broadcast-filtered protocol
/// [14] against NHCC and HMG (Section II-A's motivation for precise,
/// hierarchical sharer tracking).
pub fn carve_comparison(opts: &ExpOptions) -> Result<SpeedupResult, SimError> {
    speedup_suite(
        opts,
        &[
            ProtocolKind::Nhcc,
            ProtocolKind::CarveLike,
            ProtocolKind::Hmg,
            ProtocolKind::Ideal,
        ],
        "",
    )
}

/// §VII-D scaling discussion: geomean speedups as the system grows from
/// 2 to 8 GPUs (4 GPMs each). Directory capacity per GPM is held at the
/// Table II value; the paper argues HMG has headroom here (Fig. 14
/// showed a 50% smaller directory still performs).
pub fn scale_study(opts: &ExpOptions) -> Result<SweepResult, SimError> {
    // Persistent-kernel grids are sized for the 4-GPU machine; smaller
    // topologies cannot make them resident.
    let opts = &exclude_persistent_kernels(opts);
    let points: Vec<SweepPoint> = [2u16, 4, 8]
        .into_iter()
        .map(|gpus| (format!("{gpus} GPUs"), format!("gpus={gpus}")))
        .collect();
    // Per-point normalization here (a bigger machine changes the
    // baseline too); the interesting output is HMG's gap at each size.
    let specs = opts.specs();
    let protocols = SWEEP_PROTOCOLS;
    let per_run = protocols.len() + 1;
    let mut cells: Vec<CellCtx> = Vec::new();
    for (label, tweak) in &points {
        for spec in &specs {
            for p in std::iter::once(ProtocolKind::NoPeerCaching).chain(protocols) {
                let key = format!("{label}/{}/{}", spec.abbrev, p.name());
                cells.push(opts.cell(key, spec.abbrev, p, tweak));
            }
        }
    }
    let results = run_cells(opts, &cells, None);
    let (failures, first_error) = sweep_failures(&cells, &results);
    if !opts.keep_going {
        if let Some(e) = first_error {
            return Err(e);
        }
    }
    let per_point = specs.len() * per_run;
    let geomeans: Vec<Vec<f64>> = (0..points.len())
        .map(|pt| {
            (0..protocols.len())
                .map(|pi| {
                    let speedups: Vec<f64> = (0..specs.len())
                        .filter_map(|w| {
                            let base = done_cycles(&results[pt * per_point + w * per_run])?;
                            let c = done_cycles(&results[pt * per_point + w * per_run + 1 + pi])?;
                            Some(base as f64 / c as f64)
                        })
                        .collect();
                    stats::geomean(&speedups)
                })
                .collect()
        })
        .collect();
    Ok(SweepResult {
        parameter: "system size",
        points: points.into_iter().map(|(l, _)| l).collect(),
        protocols: protocols.to_vec(),
        geomeans,
        failures,
    })
}

/// §VII-A single-GPU check: on one GPU, protocols should be close.
///
/// Persistent-kernel workloads are excluded: their resident grids are
/// sized for the full Table II machine and cannot co-schedule on one
/// GPU (see `WorkloadSpec::uses_persistent_kernel`).
pub fn single_gpu(opts: &ExpOptions) -> Result<SpeedupResult, SimError> {
    let opts = exclude_persistent_kernels(opts);
    speedup_suite(&opts, &ProtocolKind::FIG8, "gpus=1")
}

/// The completed cycle count of a merged cell, if it completed.
fn done_cycles(r: &CellResult) -> Option<u64> {
    match r {
        CellResult::Done { outcome, .. } => Some(outcome.cycles),
        _ => None,
    }
}

/// Collects the failure table of a supervised sweep (keyed by cell,
/// since sensitivity sweeps run each workload at several points) and
/// the first failure in input order.
fn sweep_failures(
    cells: &[CellCtx],
    results: &[CellResult],
) -> (Vec<RunFailure>, Option<SimError>) {
    let mut failures = Vec::new();
    for (cell, r) in cells.iter().zip(results) {
        if let CellResult::Failed(e) = r {
            failures.push(RunFailure {
                workload: cell
                    .key
                    .strip_suffix(&format!("/{}", cell.protocol.name()))
                    .unwrap_or(&cell.key)
                    .to_string(),
                protocol: cell.protocol,
                error: e.clone(),
            });
        }
    }
    let first = failures.first().map(|f| f.error.clone());
    (failures, first)
}

/// Drops persistent-kernel workloads from the selection (they require
/// the default machine's SM count to be fully resident).
fn exclude_persistent_kernels(opts: &ExpOptions) -> ExpOptions {
    let keep: Vec<String> = opts
        .specs()
        .into_iter()
        .filter(|s| !s.uses_persistent_kernel())
        .map(|s| s.abbrev.to_string())
        .collect();
    ExpOptions {
        filter: Some(keep),
        ..opts.clone()
    }
}

/// A sensitivity sweep: geomean speedups per sweep point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Label of the swept parameter.
    pub parameter: &'static str,
    /// Sweep point labels.
    pub points: Vec<String>,
    /// Protocols, in column order.
    pub protocols: Vec<ProtocolKind>,
    /// `geomeans[point][protocol]`, over the workloads whose cells all
    /// completed.
    pub geomeans: Vec<Vec<f64>>,
    /// Cells that failed under `--keep-going` (empty otherwise); the
    /// `workload` field carries the `point/workload` cell prefix.
    pub failures: Vec<RunFailure>,
}

impl SweepResult {
    /// Renders the sweep as a table.
    pub fn print(&self, title: &str) {
        println!("== {title} ==");
        let mut headers = vec![self.parameter.to_string()];
        headers.extend(self.protocols.iter().map(|p| p.name().to_string()));
        let mut t = Table::new(headers);
        for (pt, row) in self.points.iter().zip(&self.geomeans) {
            let mut cells = vec![pt.clone()];
            cells.extend(row.iter().map(|&v| f2(v)));
            t.row(cells);
        }
        println!("{}", t.render());
        if !self.failures.is_empty() {
            println!(
                "-- {} failed cell(s); partial result --",
                self.failures.len()
            );
            let mut ft = Table::new(vec!["cell".to_string(), "error".to_string()]);
            for f in &self.failures {
                let first_line = f
                    .error
                    .to_string()
                    .lines()
                    .next()
                    .unwrap_or_default()
                    .to_string();
                ft.row(vec![
                    format!("{}/{}", f.workload, f.protocol.name()),
                    first_line,
                ]);
            }
            println!("{}", ft.render());
        }
    }
}

impl SweepResult {
    /// Renders the sweep as an SVG line chart.
    pub fn to_svg(&self, title: &str) -> String {
        let mut chart = hmg_plot::LineChart::new(title)
            .subtitle(format!("geomean speedup vs {}", self.parameter))
            .x_points(self.points.clone())
            .y_label("geomean speedup");
        for (i, p) in self.protocols.iter().enumerate() {
            let series: Vec<f64> = self.geomeans.iter().map(|row| row[i]).collect();
            chart = chart.line(p.name(), series);
        }
        chart.to_svg()
    }
}

/// One sweep point: its axis label and the serialized configuration
/// tweak it applies (see [`apply_tweak`]).
pub type SweepPoint = (String, String);

/// The four configurations the sensitivity figures plot.
const SWEEP_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Nhcc,
    ProtocolKind::SwHier,
    ProtocolKind::Hmg,
    ProtocolKind::Ideal,
];

/// Runs a sensitivity sweep the way the paper's Figs. 12–14 are
/// normalized: the no-peer-caching baseline is measured **once, on the
/// Table II configuration**, and every sweep point's protocols are
/// compared against it ("baseline is no caching with configurations of
/// Table II"). All cells — baseline and points — run under the sweep
/// supervisor.
fn sweep_fixed_baseline(
    opts: &ExpOptions,
    parameter: &'static str,
    points: Vec<SweepPoint>,
    protocols: &[ProtocolKind],
) -> Result<SweepResult, SimError> {
    let specs = opts.specs();
    // The fixed Table II baseline once per workload, then every
    // (point, workload, protocol) cell.
    let mut cells: Vec<CellCtx> = Vec::new();
    for spec in &specs {
        let p = ProtocolKind::NoPeerCaching;
        let key = format!("table2/{}/{}", spec.abbrev, p.name());
        cells.push(opts.cell(key, spec.abbrev, p, ""));
    }
    for (label, tweak) in &points {
        for spec in &specs {
            for &p in protocols {
                let key = format!("{label}/{}/{}", spec.abbrev, p.name());
                cells.push(opts.cell(key, spec.abbrev, p, tweak));
            }
        }
    }
    let results = run_cells(opts, &cells, None);
    let (failures, first_error) = sweep_failures(&cells, &results);
    if !opts.keep_going {
        if let Some(e) = first_error {
            return Err(e);
        }
    }
    let per_point = specs.len() * protocols.len();
    let geomeans: Vec<Vec<f64>> = (0..points.len())
        .map(|pt| {
            (0..protocols.len())
                .map(|pi| {
                    let speedups: Vec<f64> = (0..specs.len())
                        .filter_map(|w| {
                            let base = done_cycles(&results[w])?;
                            let c = done_cycles(
                                &results[specs.len() + pt * per_point + w * protocols.len() + pi],
                            )?;
                            Some(base as f64 / c as f64)
                        })
                        .collect();
                    stats::geomean(&speedups)
                })
                .collect()
        })
        .collect();
    Ok(SweepResult {
        parameter,
        points: points.into_iter().map(|(l, _)| l).collect(),
        protocols: protocols.to_vec(),
        geomeans,
        failures,
    })
}

/// Fig. 12: sensitivity to inter-GPU bandwidth (100–400 GB/s per link).
pub fn fig12(opts: &ExpOptions) -> Result<SweepResult, SimError> {
    let points: Vec<SweepPoint> = [100.0f64, 200.0, 300.0, 400.0]
        .into_iter()
        .map(|bw| (format!("{bw:.0}GB/s"), format!("bw={bw}")))
        .collect();
    sweep_fixed_baseline(opts, "inter-GPU BW", points, &SWEEP_PROTOCOLS)
}

/// Fig. 13: sensitivity to L2 capacity (6/12/24 MB per GPU).
pub fn fig13(opts: &ExpOptions) -> Result<SweepResult, SimError> {
    let points: Vec<SweepPoint> = [6u32, 12, 24]
        .into_iter()
        .map(|mb| (format!("{mb}MB/GPU"), format!("l2mb={mb}")))
        .collect();
    sweep_fixed_baseline(opts, "L2 per GPU", points, &SWEEP_PROTOCOLS)
}

/// Fig. 14: sensitivity to coherence directory capacity
/// (3K/6K/12K entries per GPM).
pub fn fig14(opts: &ExpOptions) -> Result<SweepResult, SimError> {
    let points: Vec<SweepPoint> = [3u32, 6, 12]
        .into_iter()
        .map(|k| (format!("{k}K/GPM"), format!("dirk={k}")))
        .collect();
    sweep_fixed_baseline(opts, "dir entries", points, &SWEEP_PROTOCOLS)
}

/// §VII-B (not pictured): directory tracking granularity at constant
/// coverage — `lines_per_entry` in {1, 2, 4, 8} with the entry count
/// adjusted so total covered bytes stay fixed.
pub fn grain_sweep(opts: &ExpOptions) -> Result<SweepResult, SimError> {
    let points: Vec<SweepPoint> = [1u32, 2, 4, 8]
        .into_iter()
        .map(|g| (format!("{g}x128B"), format!("grain={g}")))
        .collect();
    sweep_fixed_baseline(opts, "lines/entry", points, &[ProtocolKind::Hmg])
}

// ---------------------------------------------------------------------
// Fig. 3: inter-GPU load redundancy
// ---------------------------------------------------------------------

/// Fig. 3 result: per workload, the fraction of inter-GPU loads whose
/// line another GPM of the same GPU had already accessed.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// `(workload, redundancy)`; `None` when no inter-GPU loads occur.
    pub rows: Vec<(String, Option<f64>)>,
    /// Mean over workloads with inter-GPU loads.
    pub average: f64,
}

impl Fig3Result {
    /// Renders the figure as a table.
    pub fn print(&self) {
        println!("== Fig. 3: % of inter-GPU loads redundant within the GPU ==");
        let mut t = Table::new(vec!["workload".into(), "redundant".into()]);
        for (w, v) in &self.rows {
            t.row(vec![w.clone(), v.map(pct).unwrap_or_else(|| "n/a".into())]);
        }
        t.row(vec!["Avg".into(), pct(self.average)]);
        println!("{}", t.render());
    }
}

impl Fig3Result {
    /// Renders the figure as an SVG bar chart (percent per workload).
    pub fn to_svg(&self) -> String {
        let mut chart =
            hmg_plot::GroupedBars::new("Fig. 3: inter-GPU loads redundant within the GPU")
                .subtitle("measured on the no-peer-caching baseline")
                .series(vec!["redundant share".into()])
                .y_label("% of inter-GPU loads");
        for (w, v) in &self.rows {
            chart = chart.group(w.clone(), vec![v.unwrap_or(0.0) * 100.0]);
        }
        chart = chart.group("Avg", vec![self.average * 100.0]);
        chart.label_last_group().to_svg()
    }
}

/// Fig. 3: measured on the no-peer-caching baseline, where every remote
/// load crosses the inter-GPU network.
pub fn fig3(opts: &ExpOptions) -> Fig3Result {
    let specs = opts.specs();
    let rows: Vec<(String, Option<f64>)> = parallel_map(&specs, |spec| {
        let trace = spec.generate(opts.scale, opts.seed);
        let mut cfg = opts.base_config(ProtocolKind::NoPeerCaching);
        cfg.track_peer_redundancy = true;
        crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(opts.scale));
        let m = Engine::new(cfg).run(&trace);
        (spec.abbrev.to_string(), m.peer_redundancy())
    });
    let vals: Vec<f64> = rows.iter().filter_map(|(_, v)| *v).collect();
    Fig3Result {
        average: stats::mean(&vals),
        rows,
    }
}

// ---------------------------------------------------------------------
// Fig. 7: simulator correlation
// ---------------------------------------------------------------------

/// One Fig. 7 scatter point.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Microbenchmark name.
    pub name: String,
    /// Analytically predicted cycles.
    pub predicted: f64,
    /// Simulated cycles.
    pub simulated: f64,
}

/// Fig. 7 result: correlation of the DES against the analytical model.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The scatter points.
    pub points: Vec<Fig7Point>,
    /// Pearson correlation of log10(cycles).
    pub r_log: f64,
    /// Mean absolute relative error.
    pub mean_abs_rel_err: f64,
    /// Simulation throughput in events per second of wall time.
    pub events_per_second: f64,
}

impl Fig7Result {
    /// Renders the figure as a table.
    pub fn print(&self) {
        println!("== Fig. 7: simulator correlation vs analytical model ==");
        let mut t = Table::new(vec![
            "microbenchmark".into(),
            "predicted".into(),
            "simulated".into(),
            "ratio".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.name.clone(),
                format!("{:.0}", p.predicted),
                format!("{:.0}", p.simulated),
                f2(p.simulated / p.predicted),
            ]);
        }
        println!("{}", t.render());
        println!("correlation (log10): r = {}", f3(self.r_log));
        println!("mean abs rel err:    {}", f3(self.mean_abs_rel_err));
        println!(
            "simulator speed:     {:.1}M events/s",
            self.events_per_second / 1e6
        );
    }
}

impl Fig7Result {
    /// Renders the correlation scatter as SVG.
    pub fn to_svg(&self) -> String {
        let mut chart = hmg_plot::LogLogScatter::new(
            "Fig. 7: simulator correlation",
            "analytically predicted cycles",
            "simulated cycles",
        )
        .subtitle(format!(
            "r(log10) = {:.3}, mean abs rel err = {:.3}",
            self.r_log, self.mean_abs_rel_err
        ));
        for p in &self.points {
            chart = chart.point(p.name.clone(), p.predicted, p.simulated);
        }
        chart.to_svg()
    }
}

/// Fig. 7 with the default microbenchmark suite.
pub fn fig7() -> Fig7Result {
    fig7_with(correlation_suite())
}

/// Fig. 7 over a caller-supplied microbenchmark set (the Table II
/// machine is always used; the micros assume its 16-GPM shape).
pub fn fig7_with(suite: Vec<Micro>) -> Fig7Result {
    let cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
    let params = MachineParams {
        issue_cycles: cfg.issue_cycles as f64,
        l1_latency: cfg.l1_latency.as_u64() as f64,
        l2_latency: cfg.l2_latency.as_u64() as f64,
        dram_latency: cfg.dram_latency.as_u64() as f64,
        dram_bytes_per_cycle: cfg.dram_bytes_per_cycle,
        inter_gpu_bytes_per_cycle: cfg.fabric.inter_gpu_gbps / cfg.fabric.freq_ghz,
        line_bytes: cfg.geometry.line_bytes() as f64,
        resp_bytes: cfg.msg.load_resp as f64,
        kernel_launch: cfg.kernel_launch_overhead.as_u64() as f64,
        num_gpms: cfg.topo.num_gpms() as f64,
        num_gpus: cfg.topo.num_gpus() as f64,
    };
    // audit:allow(entropy): wall-clock runtime measurement (Fig. 7);
    // never feeds simulated state.
    let start = std::time::Instant::now();
    let results: Vec<(String, f64, f64, u64)> = parallel_map(&suite, |m| {
        let sim = Engine::new(EngineConfig::paper_default(ProtocolKind::Hmg)).run(&m.trace);
        (
            m.name.clone(),
            (m.predict)(&params),
            sim.total_cycles.as_u64() as f64,
            sim.events,
        )
    });
    let wall = start.elapsed().as_secs_f64();
    let total_events: u64 = results.iter().map(|r| r.3).sum();
    let points: Vec<Fig7Point> = results
        .into_iter()
        .map(|(name, predicted, simulated, _)| Fig7Point {
            name,
            predicted,
            simulated,
        })
        .collect();
    let logp: Vec<f64> = points.iter().map(|p| p.predicted.log10()).collect();
    let logs: Vec<f64> = points.iter().map(|p| p.simulated.log10()).collect();
    let sims: Vec<f64> = points.iter().map(|p| p.simulated).collect();
    let preds: Vec<f64> = points.iter().map(|p| p.predicted).collect();
    Fig7Result {
        r_log: stats::pearson(&logp, &logs),
        mean_abs_rel_err: stats::mean_abs_rel_err(&sims, &preds),
        events_per_second: total_events as f64 / wall.max(1e-9),
        points,
    }
}

// ---------------------------------------------------------------------
// Figs. 9, 10, 11: invalidation cost profile of HMG
// ---------------------------------------------------------------------

/// Per-workload invalidation costs under HMG.
#[derive(Debug, Clone)]
pub struct InvCostRow {
    /// Workload abbreviation.
    pub workload: String,
    /// Fig. 9: avg lines invalidated per invalidation-triggering store.
    pub lines_per_store_inv: Option<f64>,
    /// Fig. 10: avg lines invalidated per directory eviction.
    pub lines_per_eviction_inv: Option<f64>,
    /// Fig. 11: invalidation-message bandwidth in GB/s.
    pub inv_gbps: f64,
}

/// Figs. 9–11 result.
#[derive(Debug, Clone)]
pub struct InvCostResult {
    /// One row per workload.
    pub rows: Vec<InvCostRow>,
    /// Averages across workloads (where defined).
    pub avg_store: f64,
    /// Average lines per eviction.
    pub avg_evict: f64,
    /// Average invalidation bandwidth.
    pub avg_gbps: f64,
}

impl InvCostResult {
    /// Renders the three figures as one table.
    pub fn print(&self) {
        println!("== Figs. 9-11: HMG invalidation costs ==");
        let mut t = Table::new(vec![
            "workload".into(),
            "lines/store-inv".into(),
            "lines/dir-evict".into(),
            "inv GB/s".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.lines_per_store_inv.map(f2).unwrap_or_else(|| "0".into()),
                r.lines_per_eviction_inv
                    .map(f2)
                    .unwrap_or_else(|| "0".into()),
                f2(r.inv_gbps),
            ]);
        }
        t.row(vec![
            "Avg".into(),
            f2(self.avg_store),
            f2(self.avg_evict),
            f2(self.avg_gbps),
        ]);
        println!("{}", t.render());
    }
}

impl InvCostResult {
    /// Renders Figs. 9–11 as three single-series SVG bar charts,
    /// concatenated vertically is left to the caller; this returns the
    /// three documents in figure order.
    pub fn to_svgs(&self) -> [String; 3] {
        let mk = |title: &str, sub: &str, vals: Vec<(String, f64)>, avg: f64| {
            let mut chart = hmg_plot::GroupedBars::new(title)
                .subtitle(sub)
                .series(vec!["HMG".into()]);
            for (w, v) in vals {
                chart = chart.group(w, vec![v]);
            }
            chart
                .group("Avg".to_string(), vec![avg])
                .label_last_group()
                .to_svg()
        };
        let fig9 = mk(
            "Fig. 9: lines invalidated per store",
            "stores that triggered invalidations",
            self.rows
                .iter()
                .map(|r| (r.workload.clone(), r.lines_per_store_inv.unwrap_or(0.0)))
                .collect(),
            self.avg_store,
        );
        let fig10 = mk(
            "Fig. 10: lines invalidated per directory eviction",
            "evictions that triggered invalidations",
            self.rows
                .iter()
                .map(|r| (r.workload.clone(), r.lines_per_eviction_inv.unwrap_or(0.0)))
                .collect(),
            self.avg_evict,
        );
        let fig11 = mk(
            "Fig. 11: invalidation-message bandwidth",
            "GB/s across both network tiers",
            self.rows
                .iter()
                .map(|r| (r.workload.clone(), r.inv_gbps))
                .collect(),
            self.avg_gbps,
        );
        [fig9, fig10, fig11]
    }
}

/// Runs HMG over the suite and extracts the Figs. 9–11 statistics.
pub fn fig9_10_11(opts: &ExpOptions) -> InvCostResult {
    let specs = opts.specs();
    let rows: Vec<InvCostRow> = parallel_map(&specs, |spec| {
        let trace = spec.generate(opts.scale, opts.seed);
        let mut cfg = opts.base_config(ProtocolKind::Hmg);
        crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(opts.scale));
        let freq = cfg.fabric.freq_ghz;
        let m = Engine::new(cfg).run(&trace);
        InvCostRow {
            workload: spec.abbrev.to_string(),
            lines_per_store_inv: m.lines_per_store_inv(),
            lines_per_eviction_inv: m.lines_per_eviction_inv(),
            inv_gbps: m.inv_bandwidth_gbps(freq),
        }
    });
    let stores: Vec<f64> = rows.iter().filter_map(|r| r.lines_per_store_inv).collect();
    let evicts: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.lines_per_eviction_inv)
        .collect();
    let gbps: Vec<f64> = rows.iter().map(|r| r.inv_gbps).collect();
    InvCostResult {
        avg_store: stats::mean(&stores),
        avg_evict: stats::mean(&evicts),
        avg_gbps: stats::mean(&gbps),
        rows,
    }
}

// ---------------------------------------------------------------------
// §VII-C storage cost, and the DESIGN.md ablations
// ---------------------------------------------------------------------

/// §VII-C: directory storage arithmetic for the Table II machine.
pub fn storage_cost() -> (u32, u64, f64) {
    let cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
    let dir = hmg_mem::Directory::new(cfg.dir, cfg.topo);
    let cost = dir.storage_cost(48);
    let l2_slice_bytes = cfg.l2.lines as u64 * cfg.geometry.line_bytes() as u64;
    let frac = cost.total_bytes as f64 / l2_slice_bytes as f64;
    (cost.bits_per_entry, cost.total_bytes, frac)
}

/// Prints the §VII-C hardware-cost numbers.
pub fn print_storage_cost() {
    let (bits, bytes, frac) = storage_cost();
    println!("== §VII-C: HMG directory hardware cost ==");
    println!("bits per entry:      {bits} (48 tag + 1 state + 6 sharers)");
    println!(
        "bytes per GPM:       {bytes} ({:.0} KB)",
        bytes as f64 / 1024.0
    );
    println!("fraction of L2 data: {}", pct(frac));
}

/// Result of a two-point ablation.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// What was ablated.
    pub name: &'static str,
    /// `(label, geomean speedup over baseline)`.
    pub variants: Vec<(String, f64)>,
}

impl AblationResult {
    /// Renders the ablation.
    pub fn print(&self) {
        println!("== Ablation: {} ==", self.name);
        let mut t = Table::new(vec!["variant".into(), "geomean speedup".into()]);
        for (label, v) in &self.variants {
            t.row(vec![label.clone(), f2(*v)]);
        }
        println!("{}", t.render());
    }
}

/// Ablation: HMG with real (acked, drained) release fences vs
/// zero-cost fences.
pub fn ablate_fences(opts: &ExpOptions) -> Result<AblationResult, SimError> {
    let real = speedup_suite(opts, &[ProtocolKind::Hmg], "")?;
    let free = speedup_suite(opts, &[ProtocolKind::Hmg], "zero-cost-fences")?;
    Ok(AblationResult {
        name: "release fence cost (HMG)",
        variants: vec![
            ("acked fences (paper)".into(), real.geomeans[0]),
            ("zero-cost fences".into(), free.geomeans[0]),
        ],
    })
}

/// Ablation: §IV-B's write-back option vs the evaluated write-through
/// configuration, under HMG.
pub fn ablate_writeback(opts: &ExpOptions) -> Result<AblationResult, SimError> {
    let wt = speedup_suite(opts, &[ProtocolKind::Hmg], "write-policy=wt")?;
    let wb = speedup_suite(opts, &[ProtocolKind::Hmg], "write-policy=wb")?;
    Ok(AblationResult {
        name: "L2 write policy (HMG)",
        variants: vec![
            ("write-through (paper)".into(), wt.geomeans[0]),
            ("write-back (§IV-B option)".into(), wb.geomeans[0]),
        ],
    })
}

/// Ablation: §IV-B's optional sharer-downgrade messages, under HMG.
pub fn ablate_downgrades(opts: &ExpOptions) -> Result<AblationResult, SimError> {
    let without = speedup_suite(opts, &[ProtocolKind::Hmg], "downgrades=off")?;
    let with = speedup_suite(opts, &[ProtocolKind::Hmg], "downgrades=on")?;
    Ok(AblationResult {
        name: "sharer downgrades (HMG)",
        variants: vec![
            ("silent clean evictions (paper)".into(), without.geomeans[0]),
            ("downgrade messages".into(), with.geomeans[0]),
        ],
    })
}

/// Ablation: first-touch vs interleaved page placement under HMG.
pub fn ablate_placement(opts: &ExpOptions) -> Result<AblationResult, SimError> {
    let ft = speedup_suite(opts, &[ProtocolKind::Hmg], "placement=ft")?;
    let il = speedup_suite(opts, &[ProtocolKind::Hmg], "placement=il")?;
    Ok(AblationResult {
        name: "page placement (HMG)",
        variants: vec![
            ("first-touch (paper)".into(), ft.geomeans[0]),
            ("interleaved".into(), il.geomeans[0]),
        ],
    })
}

/// Prints Table III (the workload inventory) with generated-trace sizes.
pub fn print_table3(opts: &ExpOptions) {
    println!("== Table III: benchmarks ==");
    let mut t = Table::new(vec![
        "benchmark".into(),
        "abbrev".into(),
        "paper footprint".into(),
        "generated accesses".into(),
        "kernels".into(),
    ]);
    let specs = opts.specs();
    let traces: Vec<WorkloadTrace> = parallel_map(&specs, |s| s.generate(opts.scale, opts.seed));
    for (s, tr) in specs.iter().zip(&traces) {
        let fp = if s.paper_footprint_mb >= 1000.0 {
            format!("{:.2} GB", s.paper_footprint_mb / 1024.0)
        } else {
            format!("{:.0} MB", s.paper_footprint_mb)
        };
        t.row(vec![
            s.name.to_string(),
            s.abbrev.to_string(),
            fp,
            tr.num_accesses().to_string(),
            tr.num_kernels().to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// One protocol's traffic/locality profile on one workload — the raw
/// characterization behind the figures.
#[derive(Debug, Clone)]
pub struct CharacterizationRow {
    /// Protocol profiled.
    pub protocol: ProtocolKind,
    /// Total execution cycles.
    pub cycles: u64,
    /// L1 hit rate over loads.
    pub l1_hit_rate: f64,
    /// Fraction of loads served by any L2 level.
    pub l2_serve_rate: f64,
    /// DRAM accesses per load.
    pub dram_per_load: f64,
    /// Inter-GPU bytes moved (all classes).
    pub inter_bytes: u64,
    /// Invalidation messages (store- plus eviction-caused).
    pub invalidations: u64,
    /// Median / 99th-percentile miss latency.
    pub lat_p50_p99: (u64, u64),
}

/// Characterizes one workload under every protocol (the `characterize`
/// CLI command) — a drill-down companion to Fig. 8.
pub fn characterize(opts: &ExpOptions, abbrev: &str) -> Option<Vec<CharacterizationRow>> {
    let spec = opts.specs().into_iter().find(|s| s.abbrev == abbrev)?;
    let trace = spec.generate(opts.scale, opts.seed);
    let protocols: Vec<ProtocolKind> = ProtocolKind::ALL.to_vec();
    let rows = parallel_map(&protocols, |&p| {
        let mut cfg = opts.base_config(p);
        crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(opts.scale));
        let m = Engine::new(cfg).run(&trace);
        let inter: u64 = hmg_interconnect::MsgClass::ALL
            .iter()
            .map(|&c| m.fabric.inter_bytes(c))
            .sum();
        CharacterizationRow {
            protocol: p,
            cycles: m.total_cycles.as_u64(),
            l1_hit_rate: m.l1_hit_rate(),
            l2_serve_rate: if m.loads == 0 {
                0.0
            } else {
                (m.local_l2_hits + m.gpu_home_hits + m.sys_home_hits) as f64 / m.loads as f64
            },
            dram_per_load: if m.loads == 0 {
                0.0
            } else {
                m.dram_accesses as f64 / m.loads as f64
            },
            inter_bytes: inter,
            invalidations: m.invs_from_stores + m.invs_from_evictions,
            lat_p50_p99: (
                m.miss_latency_percentile(0.5),
                m.miss_latency_percentile(0.99),
            ),
        }
    });
    Some(rows)
}

/// Prints a characterization as a table.
pub fn print_characterization(abbrev: &str, rows: &[CharacterizationRow]) {
    println!("== Characterization: {abbrev} ==");
    let mut t = Table::new(vec![
        "protocol".into(),
        "cycles".into(),
        "L1 hit".into(),
        "L2 serve".into(),
        "DRAM/load".into(),
        "inter MB".into(),
        "invs".into(),
        "p50/p99 lat".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.protocol.name().into(),
            r.cycles.to_string(),
            pct(r.l1_hit_rate),
            pct(r.l2_serve_rate),
            f2(r.dram_per_load),
            format!("{:.1}", r.inter_bytes as f64 / 1e6),
            r.invalidations.to_string(),
            format!("{}/{}", r.lat_p50_p99.0, r.lat_p50_p99.1),
        ]);
    }
    println!("{}", t.render());
}

/// Convenience: the headline numbers of the abstract, computed from a
/// Fig. 8 result — HMG's improvement over SW coherence and NHCC, and the
/// fraction of idealized caching it reaches.
pub fn headline(fig8: &SpeedupResult) -> (f64, f64, f64) {
    let hmg = fig8.geomean_of(ProtocolKind::Hmg);
    let sw = fig8.geomean_of(ProtocolKind::SwNonHier);
    let nhcc = fig8.geomean_of(ProtocolKind::Nhcc);
    let ideal = fig8.geomean_of(ProtocolKind::Ideal);
    (hmg / sw - 1.0, hmg / nhcc - 1.0, hmg / ideal)
}

/// Summary metrics of one run, used by the examples.
pub fn describe_run(m: &RunMetrics) -> String {
    format!(
        "{} cycles, {} loads ({} L1 hits), {} stores, {} invs, {} DRAM reads",
        m.total_cycles.as_u64(),
        m.loads,
        m.l1_hits,
        m.stores,
        m.invs_from_stores + m.invs_from_evictions,
        m.dram_accesses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            scale: Scale::Tiny,
            seed: 1,
            filter: Some(vec!["bfs".into(), "lstm".into(), "CoMD".into()]),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig8_runs_on_tiny_subset() {
        let r = fig8(&tiny()).expect("fig8");
        assert_eq!(r.workloads.len(), 3);
        assert_eq!(r.protocols.len(), 5);
        for row in &r.rows {
            for &v in row {
                assert!(v > 0.1 && v < 100.0, "speedup {v} out of range");
            }
        }
        assert!(r.geomean_of(ProtocolKind::Ideal) >= r.geomean_of(ProtocolKind::Hmg) * 0.7);
    }

    #[test]
    fn fig2_is_a_subset_of_protocols() {
        let r = fig2(&tiny()).expect("fig2");
        assert_eq!(r.protocols.len(), 3);
    }

    #[test]
    fn fig3_reports_redundancy() {
        let r = fig3(&tiny());
        assert_eq!(r.rows.len(), 3);
        assert!(r.average >= 0.0 && r.average <= 1.0);
    }

    #[test]
    fn storage_cost_matches_paper() {
        let (bits, bytes, frac) = storage_cost();
        assert_eq!(bits, 55);
        assert_eq!(bytes, 84_480);
        assert!((frac - 0.027).abs() < 0.002);
    }

    #[test]
    fn headline_computes_ratios() {
        let r = fig8(&tiny()).expect("fig8");
        let (vs_sw, vs_nhcc, of_ideal) = headline(&r);
        assert!(vs_sw > -0.9 && vs_nhcc > -0.9);
        assert!(of_ideal > 0.1 && of_ideal <= 1.5);
    }

    #[test]
    fn fixed_baseline_sweeps_share_one_baseline() {
        // Fig. 12-14 semantics: the same sweep run twice with an
        // identity point must reproduce the plain suite speedups.
        let opts = ExpOptions {
            filter: Some(vec!["bfs".into()]),
            ..tiny()
        };
        let plain = speedup_suite(&opts, &[ProtocolKind::Hmg], "").expect("plain suite");
        // The 200 GB/s point of fig12 leaves the machine at its default
        // bandwidth, so it must reproduce the plain suite's speedup.
        let sweep = fig12(&opts).expect("fig12");
        let identity = sweep
            .points
            .iter()
            .position(|p| p == "200GB/s")
            .expect("200GB/s point");
        let hmg_col = sweep
            .protocols
            .iter()
            .position(|&p| p == ProtocolKind::Hmg)
            .expect("hmg in sweep");
        let a = sweep.geomeans[identity][hmg_col];
        let b = plain.geomean_of(ProtocolKind::Hmg);
        assert!(
            (a - b).abs() < 1e-9,
            "identity sweep point must match the plain run: {a} vs {b}"
        );
    }

    #[test]
    fn orderings_do_not_collapse_across_seeds() {
        // Tiny-scale runs are noisy; the sanity requirement is that HMG
        // never collapses far below the software baseline for any seed.
        for seed in [3, 99] {
            let opts = ExpOptions {
                scale: Scale::Tiny,
                seed,
                filter: Some(vec!["bfs".into(), "RNN_FW".into()]),
                ..ExpOptions::default()
            };
            let r = fig8(&opts).expect("fig8");
            let hmg = r.geomean_of(ProtocolKind::Hmg);
            let sw = r.geomean_of(ProtocolKind::SwNonHier);
            assert!(
                hmg >= sw * 0.8,
                "seed {seed}: hmg {hmg} collapsed below sw {sw}"
            );
        }
    }

    #[test]
    fn characterization_covers_all_protocols() {
        let opts = ExpOptions {
            filter: Some(vec!["bfs".into()]),
            ..tiny()
        };
        let rows = characterize(&opts, "bfs").expect("bfs known");
        assert_eq!(rows.len(), ProtocolKind::ALL.len());
        for r in &rows {
            assert!(r.cycles > 0);
            assert!((0.0..=1.0).contains(&r.l1_hit_rate));
        }
        assert!(characterize(&opts, "nope").is_none());
    }

    #[test]
    fn checkpointed_sweep_resumes_to_identical_report() {
        let dir = std::env::temp_dir().join("hmg-exp-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig8.ckpt");
        let opts = ExpOptions {
            filter: Some(vec!["bfs".into(), "lstm".into()]),
            checkpoint: Some(path.clone()),
            ..tiny()
        };
        let full = fig8(&opts).expect("full sweep");

        // Simulate an interrupted sweep: drop some completed cells from
        // the checkpoint, then resume. The resumed sweep re-runs only
        // the missing cells and must reproduce the full report.
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().filter(|l| !l.contains("lstm/")).collect();
        std::fs::write(&path, kept.join("\n") + "\n").unwrap();
        let resumed = fig8(&ExpOptions {
            resume: true,
            ..opts.clone()
        })
        .expect("resumed sweep");
        assert_eq!(resumed.workloads, full.workloads);
        assert_eq!(resumed.rows, full.rows, "resumed report must be identical");
        assert_eq!(resumed.geomeans, full.geomeans);

        // A second resume with the now-complete file reuses every cell.
        let resumed_again = fig8(&ExpOptions {
            resume: true,
            ..opts.clone()
        })
        .expect("second resume");
        assert_eq!(resumed_again.rows, full.rows);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_structures_are_complete() {
        let opts = ExpOptions {
            filter: Some(vec!["bfs".into()]),
            ..tiny()
        };
        let s = fig12(&opts).expect("fig12");
        assert_eq!(s.points.len(), 4);
        assert_eq!(s.geomeans.len(), 4);
        assert_eq!(s.geomeans[0].len(), 4);
    }

    #[test]
    fn apply_tweak_parses_every_clause() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        apply_tweak(
            "bw=150+l2mb=12+dirk=6+grain=4+gpus=2+zero-cost-fences\
             +write-policy=wb+downgrades=off+placement=il\
             +ecc=parity+checksums=off+scrub=250+double-bit=0.5",
            &mut cfg,
        )
        .expect("valid tweak spec");
        assert!((cfg.fabric.inter_gpu_gbps - 150.0).abs() < 1e-9);
        assert_eq!(cfg.geometry.lines_per_block(), 4);
        assert_eq!(cfg.topo.num_gpus(), 2);
        assert!(cfg.zero_cost_fences);
        assert_eq!(cfg.l2_write_policy, hmg_gpu::WritePolicy::WriteBack);
        assert!(!cfg.sharer_downgrades);
        assert_eq!(cfg.placement, hmg_mem::PagePlacement::Interleaved);
        assert_eq!(cfg.ecc, hmg_gpu::EccMode::Parity);
        assert!(!cfg.checksums);
        assert_eq!(cfg.scrub_interval, hmg_sim::Cycle(250));
        assert!((cfg.ecc_double_bit_fraction - 0.5).abs() < 1e-9);
        apply_tweak("ecc=off", &mut cfg).expect("ecc off");
        assert_eq!(cfg.ecc, hmg_gpu::EccMode::None);
        apply_tweak("ecc=secded+checksums=on", &mut cfg).expect("secded");
        assert_eq!(cfg.ecc, hmg_gpu::EccMode::SecDed);
        assert!(cfg.checksums);
        apply_tweak("nack-thr=32+arbitration=phase", &mut cfg).expect("arbitration");
        assert_eq!(cfg.home_nack_threshold, Some(32));
        assert_eq!(cfg.arbitration, hmg_protocol::Arbitration::PhasePriority);
        apply_tweak("arbitration=nack", &mut cfg).expect("nack");
        assert_eq!(cfg.arbitration, hmg_protocol::Arbitration::NackRetry);
    }

    #[test]
    fn apply_tweak_rejects_garbage() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        assert!(apply_tweak("bw=fast", &mut cfg).is_err());
        assert!(apply_tweak("grain=0", &mut cfg).is_err());
        assert!(apply_tweak("grain=3", &mut cfg).is_err());
        assert!(apply_tweak("warp-speed", &mut cfg).is_err());
        assert!(apply_tweak("ecc=hamming", &mut cfg).is_err());
        assert!(apply_tweak("checksums=maybe", &mut cfg).is_err());
        assert!(apply_tweak("scrub=soon", &mut cfg).is_err());
        assert!(apply_tweak("double-bit=1.5", &mut cfg).is_err());
        assert!(apply_tweak("arbitration=lottery", &mut cfg).is_err());
        assert!(apply_tweak("nack-thr=soon", &mut cfg).is_err());
        assert!(apply_tweak("", &mut cfg).is_ok(), "empty spec is a no-op");
    }

    #[test]
    fn cell_command_round_trips_through_cell_args() {
        let opts = tiny();
        let ctx = opts.cell("fig12/bfs/hmg".into(), "bfs", ProtocolKind::Hmg, "bw=100");
        let cmd = cell_command(&ctx, 1).expect("command");
        let (parsed, attempt) = parse_cell_args(&cmd.args[1..]).expect("parse back");
        assert_eq!(attempt, 1);
        assert_eq!(parsed.key, ctx.key);
        assert_eq!(parsed.workload, ctx.workload);
        assert_eq!(parsed.protocol, ctx.protocol);
        assert_eq!(parsed.tweak, ctx.tweak);
        assert_eq!(parsed.scale, ctx.scale);
        assert_eq!(parsed.seed, ctx.seed);
    }

    #[test]
    fn cell_payload_round_trips() {
        let line = "ok cycles=1234 digest=00ff00ff00ff00ff events=99";
        let out = parse_cell_payload(line.strip_prefix("ok ").unwrap()).expect("payload");
        assert_eq!(out.cycles, 1234);
        assert_eq!(out.digest, 0x00ff00ff00ff00ff);
        assert_eq!(out.events, 99);
        assert!(parse_cell_payload("cycles=x digest=y events=z").is_none());
    }
}
