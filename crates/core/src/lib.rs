#![warn(missing_docs)]

//! # HMG: Hierarchical Multi-GPU Cache Coherence
//!
//! A from-scratch reproduction of *HMG: Extending Cache Coherence
//! Protocols Across Modern Hierarchical Multi-GPU Systems* (HPCA 2020):
//! the NHCC and HMG coherence protocols, the scoped software-coherence
//! baselines, a trace-driven timing model of the Table II machine, the
//! Table III synthetic workload suite, and drivers that regenerate every
//! table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the subsystem crates and adds
//! the experiment runner ([`runner`]), the per-figure experiment drivers
//! ([`experiments`]), and plain-text report formatting ([`report`]).
//!
//! # Quickstart
//!
//! ```
//! use hmg::prelude::*;
//!
//! // Simulate one workload under two protocols and compare.
//! let spec = hmg::workloads::suite::by_abbrev("bfs").expect("known workload");
//! let trace = spec.generate(Scale::Tiny, 42);
//! let mut runner = Runner::new(Scale::Tiny);
//! let base = runner.run(&trace, ProtocolKind::NoPeerCaching);
//! let hmg = runner.run(&trace, ProtocolKind::Hmg);
//! assert!(hmg.total_cycles <= base.total_cycles);
//! ```

pub mod bench;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod supervisor;

/// Re-export of the GPU timing-model crate.
pub use hmg_gpu as gpu;
/// Re-export of the interconnect crate.
pub use hmg_interconnect as interconnect;
/// Re-export of the memory-substrate crate.
pub use hmg_mem as mem;
/// Re-export of the SVG figure-rendering crate.
pub use hmg_plot as plot;
/// Re-export of the protocol crate (the paper's contribution).
pub use hmg_protocol as protocol;
/// Re-export of the DES kernel crate.
pub use hmg_sim as sim;
/// Re-export of the workload-generator crate.
pub use hmg_workloads as workloads;

/// The types most users need.
pub mod prelude {
    pub use crate::runner::Runner;
    pub use hmg_gpu::{Engine, EngineConfig, RunMetrics};
    pub use hmg_protocol::{ProtocolKind, Scope};
    pub use hmg_sim::{FaultPlan, SimError, SimErrorKind};
    pub use hmg_workloads::{Scale, WorkloadSpec};
}
