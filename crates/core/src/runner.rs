//! Runs workload traces through engine configurations, with the
//! scale-appropriate Table II machine and per-experiment overrides.

use hmg_gpu::{Engine, EngineConfig, RunMetrics};
use hmg_protocol::{ProtocolKind, WorkloadTrace};
use hmg_sim::SimError;
use hmg_workloads::Scale;

/// Builds engine configurations matched to an experiment scale and runs
/// traces through them.
///
/// `Scale::Tiny` pairs with the small test machine; `Small` and `Full`
/// pair with the paper's Table II machine. Overrides (for the
/// sensitivity sweeps) are applied through [`Runner::configure`].
#[derive(Debug)]
pub struct Runner {
    scale: Scale,
    /// Mutation applied to every configuration before running.
    overrides: Vec<fn(&mut EngineConfig)>,
}

impl Runner {
    /// Creates a runner for `scale` with no overrides.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            overrides: Vec::new(),
        }
    }

    /// The scale this runner was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Registers a configuration override applied to every run (e.g. a
    /// sweep point setting the inter-GPU bandwidth).
    pub fn configure(&mut self, f: fn(&mut EngineConfig)) -> &mut Self {
        self.overrides.push(f);
        self
    }

    /// The engine configuration this runner uses for `protocol`.
    pub fn config(&self, protocol: ProtocolKind) -> EngineConfig {
        let mut cfg = match self.scale {
            Scale::Tiny => EngineConfig::small_test(protocol),
            Scale::Small | Scale::Full => EngineConfig::paper_default(protocol),
        };
        for f in &self.overrides {
            f(&mut cfg);
        }
        cfg
    }

    /// Runs `trace` under `protocol` and returns the metrics.
    pub fn run(&mut self, trace: &WorkloadTrace, protocol: ProtocolKind) -> RunMetrics {
        Engine::new(self.config(protocol)).run(trace)
    }

    /// Runs `trace` under `protocol` with an additional one-off
    /// configuration tweak.
    pub fn run_with(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
        tweak: impl FnOnce(&mut EngineConfig),
    ) -> RunMetrics {
        let mut cfg = self.config(protocol);
        tweak(&mut cfg);
        Engine::new(cfg).run(trace)
    }

    /// Fallible variant of [`Runner::run`]: deadlocks, livelocks and
    /// protocol violations come back as typed errors instead of
    /// panics. See [`run_isolated`] for the sweep-grade wrapper that
    /// also contains panics.
    pub fn try_run(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
    ) -> Result<RunMetrics, SimError> {
        run_isolated(self.config(protocol), trace)
    }
}

/// Runs one simulation with full failure isolation: typed errors come
/// back as `Err`, and any residual panic inside the engine (an
/// invariant `assert!`, an arithmetic underflow from a corrupted
/// counter) is caught and converted to a [`SimError`] rather than
/// taking down the whole sweep. Used by `--keep-going` sweeps.
pub fn run_isolated(cfg: EngineConfig, trace: &WorkloadTrace) -> Result<RunMetrics, SimError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::try_new(cfg)?.try_run(trace)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("engine panicked (non-string payload)");
            Err(SimError::protocol(format!("engine panicked: {msg}")))
        }
    }
}

/// Speedup of `measured` relative to `baseline` execution time.
///
/// # Panics
///
/// Panics if `measured` reports zero cycles.
pub fn speedup(baseline: &RunMetrics, measured: &RunMetrics) -> f64 {
    assert!(measured.total_cycles.as_u64() > 0, "empty run");
    baseline.total_cycles.as_u64() as f64 / measured.total_cycles.as_u64() as f64
}

/// Shrinks a machine's cache/directory capacities — and the OS page
/// size — by `factor`, keeping associativities and line/block sizes.
/// Used by the experiment drivers so that a workload whose footprint was
/// scaled down by N runs on a machine whose capacities are scaled down
/// by the same N, preserving both the footprint-to-cache ratios and the
/// pages-per-region ratios (home-node distribution) that the paper's
/// results depend on (DESIGN.md).
pub fn scale_capacities(cfg: &mut EngineConfig, factor: f64) {
    assert!(factor >= 1.0, "capacity factor must be >= 1, got {factor}");
    let shrink = |c: hmg_mem::CacheConfig| {
        let sets = ((c.lines / c.ways) as f64 / factor).round().max(1.0) as u32;
        hmg_mem::CacheConfig::new(sets * c.ways, c.ways)
    };
    cfg.l1 = shrink(cfg.l1);
    cfg.l2 = shrink(cfg.l2);
    let dir_sets = ((cfg.dir.entries / cfg.dir.ways) as f64 / factor)
        .round()
        .max(1.0) as u32;
    cfg.dir = hmg_mem::DirectoryConfig::new(dir_sets * cfg.dir.ways, cfg.dir.ways);
    let block_bytes =
        (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
    let page = ((cfg.geometry.page_bytes() as f64 / factor) as u64)
        .next_multiple_of(block_bytes)
        .max(16 * 1024);
    cfg.geometry = hmg_mem::MemGeometry::new(
        cfg.geometry.line_bytes(),
        cfg.geometry.lines_per_block(),
        page,
    );
    // Kernel launch overhead amortizes over kernel duration on the real
    // machine; scaled-down kernels get proportionally scaled overhead.
    cfg.kernel_launch_overhead =
        hmg_sim::Cycle(((cfg.kernel_launch_overhead.as_u64() as f64 / factor) as u64).max(200));
}

/// Maps `f` over `items` on all available cores, preserving order.
/// Simulation runs are independent, so the experiment drivers use this
/// to fan whole sweeps out across the machine.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmg_workloads::suite::by_abbrev;

    #[test]
    fn tiny_scale_uses_small_machine() {
        let r = Runner::new(Scale::Tiny);
        let cfg = r.config(ProtocolKind::Hmg);
        assert_eq!(cfg.topo.num_gpus(), 2);
        let r = Runner::new(Scale::Small);
        assert_eq!(r.config(ProtocolKind::Hmg).topo.num_gpus(), 4);
    }

    #[test]
    fn overrides_apply() {
        let mut r = Runner::new(Scale::Small);
        r.configure(|c| c.fabric.inter_gpu_gbps = 400.0);
        assert_eq!(r.config(ProtocolKind::Nhcc).fabric.inter_gpu_gbps, 400.0);
    }

    #[test]
    fn scale_capacities_identity_at_factor_one() {
        let base = EngineConfig::paper_default(ProtocolKind::Hmg);
        let mut scaled = base.clone();
        scale_capacities(&mut scaled, 1.0);
        assert_eq!(scaled.l1, base.l1);
        assert_eq!(scaled.l2, base.l2);
        assert_eq!(scaled.dir, base.dir);
        assert_eq!(scaled.geometry.page_bytes(), base.geometry.page_bytes());
        assert_eq!(scaled.kernel_launch_overhead, base.kernel_launch_overhead);
    }

    #[test]
    fn scale_capacities_shrinks_proportionally() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 16.0);
        // 1024-line L1 -> 64 lines; 24576-line L2 -> 1536; 12K dir -> 768.
        assert_eq!(cfg.l1.lines, 64);
        assert_eq!(cfg.l2.lines, 1536);
        assert_eq!(cfg.dir.entries, 768);
        // Associativities preserved.
        assert_eq!(cfg.l1.ways, 8);
        assert_eq!(cfg.l2.ways, 16);
        // Page shrinks and stays a multiple of the directory block.
        assert_eq!(cfg.geometry.page_bytes(), 128 * 1024);
        let block = (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
        assert_eq!(cfg.geometry.page_bytes() % block, 0);
        // Launch overhead scales with a floor.
        assert!(cfg.kernel_launch_overhead.as_u64() >= 187);
    }

    #[test]
    fn scale_capacities_has_floors() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 1e6);
        assert!(cfg.l1.lines >= cfg.l1.ways);
        assert!(cfg.l2.lines >= cfg.l2.ways);
        assert!(cfg.dir.entries >= cfg.dir.ways);
        assert!(cfg.geometry.page_bytes() >= 16 * 1024);
        assert!(cfg.kernel_launch_overhead.as_u64() >= 200);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn scale_capacities_rejects_expansion() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 0.5);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn runs_produce_metrics_and_speedup() {
        let spec = by_abbrev("bfs").unwrap();
        let trace = spec.generate(Scale::Tiny, 7);
        let mut r = Runner::new(Scale::Tiny);
        let base = r.run(&trace, ProtocolKind::NoPeerCaching);
        let hmg = r.run(&trace, ProtocolKind::Hmg);
        assert!(base.total_cycles.as_u64() > 0);
        let s = speedup(&base, &hmg);
        assert!(s > 0.5, "speedup {s} implausible");
    }
}
