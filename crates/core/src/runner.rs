//! Runs workload traces through engine configurations, with the
//! scale-appropriate Table II machine and per-experiment overrides.

use hmg_gpu::{Engine, EngineConfig, RunMetrics, SnapshotPolicy, SnapshotReport};
use hmg_protocol::{ProtocolKind, TraceOp, WorkloadTrace};
use hmg_sim::SimError;
use hmg_workloads::Scale;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Builds engine configurations matched to an experiment scale and runs
/// traces through them.
///
/// `Scale::Tiny` pairs with the small test machine; `Small` and `Full`
/// pair with the paper's Table II machine. Overrides (for the
/// sensitivity sweeps) are applied through [`Runner::configure`].
#[derive(Debug)]
pub struct Runner {
    scale: Scale,
    /// Mutation applied to every configuration before running.
    overrides: Vec<fn(&mut EngineConfig)>,
}

impl Runner {
    /// Creates a runner for `scale` with no overrides.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            overrides: Vec::new(),
        }
    }

    /// The scale this runner was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Registers a configuration override applied to every run (e.g. a
    /// sweep point setting the inter-GPU bandwidth).
    pub fn configure(&mut self, f: fn(&mut EngineConfig)) -> &mut Self {
        self.overrides.push(f);
        self
    }

    /// The engine configuration this runner uses for `protocol`.
    pub fn config(&self, protocol: ProtocolKind) -> EngineConfig {
        let mut cfg = match self.scale {
            Scale::Tiny => EngineConfig::small_test(protocol),
            Scale::Small | Scale::Full => EngineConfig::paper_default(protocol),
        };
        for f in &self.overrides {
            f(&mut cfg);
        }
        cfg
    }

    /// Runs `trace` under `protocol` and returns the metrics.
    pub fn run(&mut self, trace: &WorkloadTrace, protocol: ProtocolKind) -> RunMetrics {
        Engine::new(self.config(protocol)).run(trace)
    }

    /// Runs `trace` under `protocol` with an additional one-off
    /// configuration tweak.
    pub fn run_with(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
        tweak: impl FnOnce(&mut EngineConfig),
    ) -> RunMetrics {
        let mut cfg = self.config(protocol);
        tweak(&mut cfg);
        Engine::new(cfg).run(trace)
    }

    /// Fallible variant of [`Runner::run`]: deadlocks, livelocks and
    /// protocol violations come back as typed errors instead of
    /// panics. See [`run_isolated`] for the sweep-grade wrapper that
    /// also contains panics.
    pub fn try_run(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
    ) -> Result<RunMetrics, SimError> {
        run_isolated(self.config(protocol), trace)
    }
}

/// Runs one simulation with full failure isolation: typed errors come
/// back as `Err`, and any residual panic inside the engine (an
/// invariant `assert!`, an arithmetic underflow from a corrupted
/// counter) is caught and converted to a [`SimError`] rather than
/// taking down the whole sweep. Used by `--keep-going` sweeps.
pub fn run_isolated(cfg: EngineConfig, trace: &WorkloadTrace) -> Result<RunMetrics, SimError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::try_new(cfg)?.try_run(trace)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("engine panicked (non-string payload)");
            Err(SimError::protocol(format!("engine panicked: {msg}")))
        }
    }
}

/// [`run_isolated`] for preemptible cells: resumes from the most
/// recent valid snapshot in `policy.path` (if any), captures new
/// snapshots as the policy directs, and contains residual panics the
/// same way. A resumed run is bit-identical to an uninterrupted one.
pub fn run_preemptible(
    cfg: EngineConfig,
    trace: &WorkloadTrace,
    policy: &SnapshotPolicy,
) -> Result<(RunMetrics, SnapshotReport), SimError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::try_new(cfg)?.try_run_preemptible(trace, policy)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("engine panicked (non-string payload)");
            Err(SimError::protocol(format!("engine panicked: {msg}")))
        }
    }
}

/// A livelock-watchdog budget scaled to the workload: the sum of every
/// programmed delay in the trace (a legitimate global quiet period in
/// the worst case), per-kernel launch and synchronization slack, and a
/// large fixed margin for queueing. Deliberately generous — the
/// watchdog exists to turn an *unbounded* hang into a typed diagnostic,
/// not to police tail latency.
pub fn auto_livelock_budget(cfg: &EngineConfig, trace: &WorkloadTrace) -> u64 {
    let total_delays: u64 = trace
        .kernels
        .iter()
        .flat_map(|k| k.ctas.iter())
        .flat_map(|c| c.ops.iter())
        .map(|op| match op {
            TraceOp::Delay(d) => u64::from(*d),
            _ => 0,
        })
        .sum();
    let per_kernel = cfg.kernel_launch_overhead.as_u64()
        + cfg.dram_latency.as_u64()
        + 4 * cfg.flag_latency.as_u64();
    total_delays + per_kernel * trace.kernels.len().max(1) as u64 + 2_000_000
}

/// Arms the engine's progress watchdog for a sweep run. `override_budget`
/// is the CLI knob: `None` arms the workload-scaled default budget,
/// `Some(0)` disarms the watchdog entirely, and any other value is used
/// verbatim.
pub fn arm_watchdog(cfg: &mut EngineConfig, trace: &WorkloadTrace, override_budget: Option<u64>) {
    cfg.livelock_budget = match override_budget {
        Some(0) => None,
        Some(n) => Some(n),
        None => Some(auto_livelock_budget(cfg, trace)),
    };
}

/// A completed cell reusable from a checkpoint: its cycle count and the
/// committed-memory `state_digest` the supervisor verifies on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRecord {
    /// Total simulated cycles of the completed run.
    pub cycles: u64,
    /// `RunMetrics::state_digest` of the completed run.
    pub digest: u64,
}

/// 64-bit FNV-1a over `bytes` — the std-only per-row checksum of the
/// v2 checkpoint format.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only checkpoint of a sweep's per-cell results, enabling
/// `--resume` to re-run only failed or missing cells after a crash or
/// interruption.
///
/// The on-disk format (v2) is a line-oriented text file where every
/// row carries an FNV-1a checksum of its payload, so torn or corrupt
/// rows are detected rather than silently parsed:
///
/// ```text
/// #hmg-sweep v2 <identity>
/// <fnv1a64 hex16>\t<cell key>\tok\t<cycles>\t<state_digest hex16>
/// <fnv1a64 hex16>\t<cell key>\tfailed\t<first error line>
/// ```
///
/// The identity line pins the sweep's shape (figure, scale, seed,
/// protocol set, workload list, fault plan); resuming against a file
/// written by a different sweep is rejected rather than silently
/// mixing results. Only `ok` cells are reused on resume — failed
/// cells re-run, so a transient failure (an injected fault, a killed
/// cell process) heals on the next invocation and the final report is
/// identical to an uninterrupted sweep. If the file holds two `ok`
/// rows for the same key with conflicting results, both are dropped
/// and the cell re-runs (counted as `stale`). On resume the compacted
/// file is written to `<path>.tmp` and renamed over the original, so
/// an interrupt mid-rewrite can no longer lose completed cells.
#[derive(Debug)]
pub struct SweepCheckpoint {
    file: Mutex<File>,
    done: HashMap<String, CellRecord>,
    corrupt_rows: usize,
    stale_rows: usize,
}

const CHECKPOINT_MAGIC: &str = "#hmg-sweep v2";

impl SweepCheckpoint {
    /// Opens (or creates) the checkpoint at `path`.
    ///
    /// With `resume` set, an existing file is validated against
    /// `identity` and its completed cells become reusable; without it,
    /// any existing file is truncated and the sweep starts fresh.
    pub fn open(path: &Path, identity: &str, resume: bool) -> Result<Self, SimError> {
        let expected = format!("{CHECKPOINT_MAGIC} {identity}");
        if !(resume && path.exists()) {
            let mut file = File::create(path).map_err(|e| {
                SimError::config(format!("cannot write checkpoint {}: {e}", path.display()))
            })?;
            writeln!(file, "{expected}")
                .map_err(|e| SimError::config(format!("checkpoint write error: {e}")))?;
            return Ok(SweepCheckpoint {
                file: Mutex::new(file),
                done: HashMap::new(),
                corrupt_rows: 0,
                stale_rows: 0,
            });
        }

        let reader = BufReader::new(File::open(path).map_err(|e| {
            SimError::config(format!("cannot read checkpoint {}: {e}", path.display()))
        })?);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .transpose()
            .map_err(|e| SimError::config(format!("checkpoint read error: {e}")))?
            .unwrap_or_default();
        if header != expected {
            return Err(SimError::config(format!(
                "checkpoint {} belongs to a different sweep\n  file:     {header}\n  expected: {expected}",
                path.display()
            )));
        }
        let mut done: HashMap<String, CellRecord> = HashMap::new();
        // Keys whose rows disagreed with each other: every copy is
        // suspect, so none may be reused.
        let mut poisoned: Vec<String> = Vec::new();
        let mut corrupt_rows = 0usize;
        let mut stale_rows = 0usize;
        for line in lines {
            let line = line.map_err(|e| SimError::config(format!("checkpoint read error: {e}")))?;
            let Some(record) = parse_row(&line) else {
                corrupt_rows += 1; // torn/corrupt row from a crashed run
                continue;
            };
            let (key, cell) = match record {
                (key, Some(cell)) => (key, cell),
                (_, None) => continue, // failed cell: re-run on resume
            };
            if poisoned.iter().any(|k| k == &key) {
                continue;
            }
            match done.get(&key) {
                Some(prev) if *prev != cell => {
                    // Two completed rows disagree on the result: the
                    // sweep's inputs changed under the checkpoint.
                    // Trust neither; the cell re-runs.
                    done.remove(&key);
                    poisoned.push(key);
                    stale_rows += 1;
                }
                _ => {
                    done.insert(key, cell);
                }
            }
        }
        // Compact reusable cells into a fresh file, atomically: write
        // to `<path>.tmp` and rename over the original, so a crash
        // mid-rewrite leaves the old (still valid) file in place. The
        // handle keeps pointing at the renamed inode, so subsequent
        // appends land in the live file.
        let tmp = checkpoint_tmp_path(path);
        let mut file = File::create(&tmp).map_err(|e| {
            SimError::config(format!("cannot write checkpoint {}: {e}", tmp.display()))
        })?;
        writeln!(file, "{expected}")
            .and_then(|()| {
                let mut keys: Vec<&String> = done.keys().collect();
                keys.sort();
                for k in keys {
                    writeln!(file, "{}", ok_row(k, done[k]))?;
                }
                file.flush()
            })
            .map_err(|e| SimError::config(format!("checkpoint write error: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            SimError::config(format!("cannot replace checkpoint {}: {e}", path.display()))
        })?;
        Ok(SweepCheckpoint {
            file: Mutex::new(file),
            done,
            corrupt_rows,
            stale_rows,
        })
    }

    /// The completed result for `key`, if a prior run finished it.
    pub fn lookup(&self, key: &str) -> Option<CellRecord> {
        self.done.get(key).copied()
    }

    /// Number of cells reusable from the prior run.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Torn or checksum-invalid rows dropped while resuming.
    pub fn corrupt_rows(&self) -> usize {
        self.corrupt_rows
    }

    /// Cells dropped on resume because duplicate rows disagreed on the
    /// result (the sweep changed under the checkpoint); they re-run.
    pub fn stale_rows(&self) -> usize {
        self.stale_rows
    }

    /// Records a successful cell; flushed immediately so a crash loses
    /// at most the in-flight cells.
    pub fn record_ok(&self, key: &str, cycles: u64, digest: u64) {
        self.append(&ok_row(&sanitize(key), CellRecord { cycles, digest }));
    }

    /// Records a failed cell (kept for the report; re-run on resume).
    pub fn record_failure(&self, key: &str, error: &str) {
        let first_line = error.lines().next().unwrap_or("unknown error");
        let payload = format!("{}\tfailed\t{}", sanitize(key), sanitize(first_line));
        self.append(&checksummed(&payload));
    }

    fn append(&self, line: &str) {
        // A panic cannot unwind while this lock is held (formatting
        // happened before acquisition), so poisoning is unreachable;
        // recover instead of double-panicking and aborting the sweep.
        let mut f = self.file.lock().unwrap_or_else(|p| p.into_inner());
        // Checkpointing is best-effort durability; the sweep's own
        // result does not depend on the write landing.
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

/// The sibling tempfile a resume compaction writes before renaming
/// over the checkpoint (same directory, so the rename stays atomic).
pub fn checkpoint_tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Formats a checksummed `ok` row for `key`.
fn ok_row(key: &str, cell: CellRecord) -> String {
    let payload = format!("{key}\tok\t{}\t{:016x}", cell.cycles, cell.digest);
    checksummed(&payload)
}

/// Prefixes `payload` with its FNV-1a checksum.
fn checksummed(payload: &str) -> String {
    format!("{:016x}\t{payload}", fnv1a64(payload.as_bytes()))
}

/// Parses one checkpoint row. Returns `None` for torn or corrupt rows,
/// `Some((key, Some(record)))` for verified `ok` rows, and
/// `Some((key, None))` for verified `failed` rows.
fn parse_row(line: &str) -> Option<(String, Option<CellRecord>)> {
    let (sum, payload) = line.split_once('\t')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if sum != fnv1a64(payload.as_bytes()) {
        return None;
    }
    let mut parts = payload.splitn(4, '\t');
    let key = parts.next()?;
    match parts.next()? {
        "ok" => {
            let cycles = parts.next()?.parse::<u64>().ok()?;
            let digest = u64::from_str_radix(parts.next()?, 16).ok()?;
            Some((key.to_string(), Some(CellRecord { cycles, digest })))
        }
        "failed" => Some((key.to_string(), None)),
        _ => None,
    }
}

fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Convenience wrapper: opens a checkpoint from optional CLI-style
/// settings. Returns `Ok(None)` when no checkpoint path was requested,
/// and the typed error if the checkpoint cannot be opened or belongs
/// to a different sweep — both are configuration mistakes the user
/// must resolve.
pub fn open_checkpoint(
    path: Option<&PathBuf>,
    identity: &str,
    resume: bool,
) -> Result<Option<SweepCheckpoint>, SimError> {
    path.map(|p| SweepCheckpoint::open(p, identity, resume))
        .transpose()
}

/// Speedup of `measured` relative to `baseline` execution time.
///
/// # Panics
///
/// Panics if `measured` reports zero cycles.
pub fn speedup(baseline: &RunMetrics, measured: &RunMetrics) -> f64 {
    assert!(measured.total_cycles.as_u64() > 0, "empty run");
    baseline.total_cycles.as_u64() as f64 / measured.total_cycles.as_u64() as f64
}

/// Shrinks a machine's cache/directory capacities — and the OS page
/// size — by `factor`, keeping associativities and line/block sizes.
/// Used by the experiment drivers so that a workload whose footprint was
/// scaled down by N runs on a machine whose capacities are scaled down
/// by the same N, preserving both the footprint-to-cache ratios and the
/// pages-per-region ratios (home-node distribution) that the paper's
/// results depend on (DESIGN.md).
pub fn scale_capacities(cfg: &mut EngineConfig, factor: f64) {
    assert!(factor >= 1.0, "capacity factor must be >= 1, got {factor}");
    let shrink = |c: hmg_mem::CacheConfig| {
        let sets = ((c.lines / c.ways) as f64 / factor).round().max(1.0) as u32;
        hmg_mem::CacheConfig::new(sets * c.ways, c.ways)
    };
    cfg.l1 = shrink(cfg.l1);
    cfg.l2 = shrink(cfg.l2);
    let dir_sets = ((cfg.dir.entries / cfg.dir.ways) as f64 / factor)
        .round()
        .max(1.0) as u32;
    cfg.dir = hmg_mem::DirectoryConfig::new(dir_sets * cfg.dir.ways, cfg.dir.ways);
    let block_bytes = (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
    let page = ((cfg.geometry.page_bytes() as f64 / factor) as u64)
        .next_multiple_of(block_bytes)
        .max(16 * 1024);
    cfg.geometry = hmg_mem::MemGeometry::new(
        cfg.geometry.line_bytes(),
        cfg.geometry.lines_per_block(),
        page,
    );
    // Kernel launch overhead amortizes over kernel duration on the real
    // machine; scaled-down kernels get proportionally scaled overhead.
    cfg.kernel_launch_overhead =
        hmg_sim::Cycle(((cfg.kernel_launch_overhead.as_u64() as f64 / factor) as u64).max(200));
}

/// Maps `f` over `items` on all available cores, preserving order.
/// Simulation runs are independent, so the experiment drivers use this
/// to fan whole sweeps out across the machine.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    // Each worker catches panics from `f` and stores them in the slot,
    // so the mutex is never poisoned mid-panic and a single failing
    // item cannot abort the process via a double panic. The first
    // panicking slot (in input order) is re-raised exactly once below.
    let results: Mutex<Vec<Option<std::thread::Result<R>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i])));
                results.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(r);
            });
        }
    });
    let slots = results.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("every claimed slot is filled before the scope ends") {
            Ok(r) => out.push(r),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmg_workloads::suite::by_abbrev;

    #[test]
    fn tiny_scale_uses_small_machine() {
        let r = Runner::new(Scale::Tiny);
        let cfg = r.config(ProtocolKind::Hmg);
        assert_eq!(cfg.topo.num_gpus(), 2);
        let r = Runner::new(Scale::Small);
        assert_eq!(r.config(ProtocolKind::Hmg).topo.num_gpus(), 4);
    }

    #[test]
    fn overrides_apply() {
        let mut r = Runner::new(Scale::Small);
        r.configure(|c| c.fabric.inter_gpu_gbps = 400.0);
        assert_eq!(r.config(ProtocolKind::Nhcc).fabric.inter_gpu_gbps, 400.0);
    }

    #[test]
    fn scale_capacities_identity_at_factor_one() {
        let base = EngineConfig::paper_default(ProtocolKind::Hmg);
        let mut scaled = base.clone();
        scale_capacities(&mut scaled, 1.0);
        assert_eq!(scaled.l1, base.l1);
        assert_eq!(scaled.l2, base.l2);
        assert_eq!(scaled.dir, base.dir);
        assert_eq!(scaled.geometry.page_bytes(), base.geometry.page_bytes());
        assert_eq!(scaled.kernel_launch_overhead, base.kernel_launch_overhead);
    }

    #[test]
    fn scale_capacities_shrinks_proportionally() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 16.0);
        // 1024-line L1 -> 64 lines; 24576-line L2 -> 1536; 12K dir -> 768.
        assert_eq!(cfg.l1.lines, 64);
        assert_eq!(cfg.l2.lines, 1536);
        assert_eq!(cfg.dir.entries, 768);
        // Associativities preserved.
        assert_eq!(cfg.l1.ways, 8);
        assert_eq!(cfg.l2.ways, 16);
        // Page shrinks and stays a multiple of the directory block.
        assert_eq!(cfg.geometry.page_bytes(), 128 * 1024);
        let block = (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
        assert_eq!(cfg.geometry.page_bytes() % block, 0);
        // Launch overhead scales with a floor.
        assert!(cfg.kernel_launch_overhead.as_u64() >= 187);
    }

    #[test]
    fn scale_capacities_has_floors() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 1e6);
        assert!(cfg.l1.lines >= cfg.l1.ways);
        assert!(cfg.l2.lines >= cfg.l2.ways);
        assert!(cfg.dir.entries >= cfg.dir.ways);
        assert!(cfg.geometry.page_bytes() >= 16 * 1024);
        assert!(cfg.kernel_launch_overhead.as_u64() >= 200);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn scale_capacities_rejects_expansion() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 0.5);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn auto_budget_scales_with_trace_delays() {
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let quiet = WorkloadTrace::new("quiet", vec![]);
        let base = auto_livelock_budget(&cfg, &quiet);
        let slow = WorkloadTrace::new(
            "slow",
            vec![hmg_protocol::Kernel::new(vec![hmg_protocol::Cta::new(
                vec![TraceOp::Delay(5_000_000)],
            )])],
        );
        assert!(auto_livelock_budget(&cfg, &slow) >= base + 5_000_000);
    }

    #[test]
    fn arm_watchdog_override_semantics() {
        let cfg0 = EngineConfig::small_test(ProtocolKind::Hmg);
        let trace = WorkloadTrace::new("t", vec![]);
        let mut cfg = cfg0.clone();
        arm_watchdog(&mut cfg, &trace, None);
        assert_eq!(
            cfg.livelock_budget,
            Some(auto_livelock_budget(&cfg0, &trace))
        );
        arm_watchdog(&mut cfg, &trace, Some(0));
        assert_eq!(cfg.livelock_budget, None, "zero disarms");
        arm_watchdog(&mut cfg, &trace, Some(123));
        assert_eq!(cfg.livelock_budget, Some(123));
    }

    #[test]
    fn checkpoint_roundtrip_reuses_ok_cells_only() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "fig8|tiny|seed=1", false).unwrap();
            assert_eq!(c.completed(), 0);
            c.record_ok("bfs/HMG", 12345, 0xdead_beef);
            c.record_ok("bfs/NHCC", 777, 0xcafe);
            c.record_failure("lstm/HMG", "deadlocked: st_pending\nmachine dump...");
        }
        let c = SweepCheckpoint::open(&path, "fig8|tiny|seed=1", true).unwrap();
        assert_eq!(c.completed(), 2, "failed cells must not be reused");
        assert_eq!(
            c.lookup("bfs/HMG"),
            Some(CellRecord {
                cycles: 12345,
                digest: 0xdead_beef
            })
        );
        assert_eq!(
            c.lookup("bfs/NHCC"),
            Some(CellRecord {
                cycles: 777,
                digest: 0xcafe
            })
        );
        assert_eq!(c.lookup("lstm/HMG"), None);
        assert_eq!(c.corrupt_rows(), 0);
        assert_eq!(c.stale_rows(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_foreign_identity() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-identity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        SweepCheckpoint::open(&path, "fig8|tiny|seed=1", false).unwrap();
        let err = SweepCheckpoint::open(&path, "fig12|tiny|seed=1", true).unwrap_err();
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_resume_starts_fresh() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-fresh");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 1, 2);
        }
        let c = SweepCheckpoint::open(&path, "id", false).unwrap();
        assert_eq!(c.completed(), 0, "no --resume means a clean slate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_survives_torn_tail_line() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 42, 7);
        }
        // Simulate a crash mid-write: a truncated trailing record whose
        // checksum no longer matches the partial payload.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "0123456789abcdef\tb/HMG\tok").unwrap();
        }
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.completed(), 1);
        assert_eq!(c.lookup("a/HMG").map(|r| r.cycles), Some(42));
        assert_eq!(c.corrupt_rows(), 1, "the torn row must be counted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_corrupt_rows_and_keeps_valid_ones() {
        // Fuzz the v2 parser: bit-flipped checksums, truncated payloads,
        // missing fields, non-hex digests, raw v1-style rows, and binary
        // garbage must all be dropped without losing the valid rows.
        let dir = std::env::temp_dir().join("hmg-ckpt-test-fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("good/HMG", 100, 0xabc);
            c.record_ok("also-good/NHCC", 200, 0xdef);
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            // A valid row with one checksum hex digit flipped.
            let row = format!("{:016x}\tflip/HMG\tok\t1\t{:016x}", 0u64, 5u64);
            writeln!(f, "{row}").unwrap();
            writeln!(f, "not-hex\tx/HMG\tok\t1\t0000000000000005").unwrap();
            writeln!(f, "v1-style/HMG\tok\t123").unwrap();
            writeln!(f, "{}", checksummed("short/HMG\tok")).unwrap();
            writeln!(f, "{}", checksummed("bad-digest/HMG\tok\t5\tzzzz")).unwrap();
            writeln!(f, "{}", checksummed("weird/HMG\tmaybe\t5")).unwrap();
            writeln!(f, "\u{1}\u{2}\u{3}garbage").unwrap();
        }
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.completed(), 2, "only checksum-verified rows survive");
        assert_eq!(c.lookup("good/HMG").map(|r| r.cycles), Some(100));
        assert_eq!(c.lookup("also-good/NHCC").map(|r| r.cycles), Some(200));
        assert_eq!(c.lookup("flip/HMG"), None);
        assert_eq!(c.corrupt_rows(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_drops_conflicting_duplicates_as_stale() {
        // Two verified `ok` rows for the same key with different digests
        // mean the sweep's inputs changed under the checkpoint: neither
        // copy can be trusted, the cell re-runs, and the conflict is
        // counted as stale.
        let dir = std::env::temp_dir().join("hmg-ckpt-test-stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 10, 111);
            c.record_ok("b/HMG", 20, 222);
            c.record_ok("a/HMG", 10, 999); // conflicting digest
            c.record_ok("a/HMG", 10, 111); // must not resurrect the key
        }
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.lookup("a/HMG"), None, "conflicting cell re-runs");
        assert_eq!(c.lookup("b/HMG").map(|r| r.digest), Some(222));
        assert_eq!(c.completed(), 1);
        assert_eq!(c.stale_rows(), 1);
        // Re-recording after the conflict heals the checkpoint.
        c.record_ok("a/HMG", 10, 111);
        drop(c);
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.lookup("a/HMG").map(|r| r.digest), Some(111));
        assert_eq!(c.stale_rows(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resume_compacts_atomically_via_tempfile() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 1, 2);
            c.record_failure("b/HMG", "boom");
        }
        // A stale tempfile from an interrupted compaction must not
        // confuse a later resume.
        std::fs::write(checkpoint_tmp_path(&path), "leftover junk").unwrap();
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.completed(), 1);
        // Appends after the rename must land in the live file, not a
        // dangling tempfile.
        c.record_ok("c/HMG", 3, 4);
        drop(c);
        assert!(
            !checkpoint_tmp_path(&path).exists(),
            "tempfile must be renamed away"
        );
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.completed(), 2);
        assert_eq!(c.lookup("c/HMG").map(|r| r.cycles), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_map_propagates_worker_panic_once() {
        // A panicking item must re-raise the panic exactly once (no
        // poisoned-mutex double panic, which would abort the process),
        // and the panic chosen is the first in input order.
        let items: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x % 10 == 3 {
                    panic!("item {x} failed");
                }
                x
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "item 3 failed", "first panic in input order wins");
    }

    #[test]
    fn runs_produce_metrics_and_speedup() {
        let spec = by_abbrev("bfs").unwrap();
        let trace = spec.generate(Scale::Tiny, 7);
        let mut r = Runner::new(Scale::Tiny);
        let base = r.run(&trace, ProtocolKind::NoPeerCaching);
        let hmg = r.run(&trace, ProtocolKind::Hmg);
        assert!(base.total_cycles.as_u64() > 0);
        let s = speedup(&base, &hmg);
        assert!(s > 0.5, "speedup {s} implausible");
    }
}
