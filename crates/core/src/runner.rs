//! Runs workload traces through engine configurations, with the
//! scale-appropriate Table II machine and per-experiment overrides.

use hmg_gpu::{Engine, EngineConfig, RunMetrics};
use hmg_protocol::{ProtocolKind, TraceOp, WorkloadTrace};
use hmg_sim::SimError;
use hmg_workloads::Scale;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Builds engine configurations matched to an experiment scale and runs
/// traces through them.
///
/// `Scale::Tiny` pairs with the small test machine; `Small` and `Full`
/// pair with the paper's Table II machine. Overrides (for the
/// sensitivity sweeps) are applied through [`Runner::configure`].
#[derive(Debug)]
pub struct Runner {
    scale: Scale,
    /// Mutation applied to every configuration before running.
    overrides: Vec<fn(&mut EngineConfig)>,
}

impl Runner {
    /// Creates a runner for `scale` with no overrides.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            overrides: Vec::new(),
        }
    }

    /// The scale this runner was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Registers a configuration override applied to every run (e.g. a
    /// sweep point setting the inter-GPU bandwidth).
    pub fn configure(&mut self, f: fn(&mut EngineConfig)) -> &mut Self {
        self.overrides.push(f);
        self
    }

    /// The engine configuration this runner uses for `protocol`.
    pub fn config(&self, protocol: ProtocolKind) -> EngineConfig {
        let mut cfg = match self.scale {
            Scale::Tiny => EngineConfig::small_test(protocol),
            Scale::Small | Scale::Full => EngineConfig::paper_default(protocol),
        };
        for f in &self.overrides {
            f(&mut cfg);
        }
        cfg
    }

    /// Runs `trace` under `protocol` and returns the metrics.
    pub fn run(&mut self, trace: &WorkloadTrace, protocol: ProtocolKind) -> RunMetrics {
        Engine::new(self.config(protocol)).run(trace)
    }

    /// Runs `trace` under `protocol` with an additional one-off
    /// configuration tweak.
    pub fn run_with(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
        tweak: impl FnOnce(&mut EngineConfig),
    ) -> RunMetrics {
        let mut cfg = self.config(protocol);
        tweak(&mut cfg);
        Engine::new(cfg).run(trace)
    }

    /// Fallible variant of [`Runner::run`]: deadlocks, livelocks and
    /// protocol violations come back as typed errors instead of
    /// panics. See [`run_isolated`] for the sweep-grade wrapper that
    /// also contains panics.
    pub fn try_run(
        &mut self,
        trace: &WorkloadTrace,
        protocol: ProtocolKind,
    ) -> Result<RunMetrics, SimError> {
        run_isolated(self.config(protocol), trace)
    }
}

/// Runs one simulation with full failure isolation: typed errors come
/// back as `Err`, and any residual panic inside the engine (an
/// invariant `assert!`, an arithmetic underflow from a corrupted
/// counter) is caught and converted to a [`SimError`] rather than
/// taking down the whole sweep. Used by `--keep-going` sweeps.
pub fn run_isolated(cfg: EngineConfig, trace: &WorkloadTrace) -> Result<RunMetrics, SimError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::try_new(cfg)?.try_run(trace)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("engine panicked (non-string payload)");
            Err(SimError::protocol(format!("engine panicked: {msg}")))
        }
    }
}

/// A livelock-watchdog budget scaled to the workload: the sum of every
/// programmed delay in the trace (a legitimate global quiet period in
/// the worst case), per-kernel launch and synchronization slack, and a
/// large fixed margin for queueing. Deliberately generous — the
/// watchdog exists to turn an *unbounded* hang into a typed diagnostic,
/// not to police tail latency.
pub fn auto_livelock_budget(cfg: &EngineConfig, trace: &WorkloadTrace) -> u64 {
    let total_delays: u64 = trace
        .kernels
        .iter()
        .flat_map(|k| k.ctas.iter())
        .flat_map(|c| c.ops.iter())
        .map(|op| match op {
            TraceOp::Delay(d) => u64::from(*d),
            _ => 0,
        })
        .sum();
    let per_kernel = cfg.kernel_launch_overhead.as_u64()
        + cfg.dram_latency.as_u64()
        + 4 * cfg.flag_latency.as_u64();
    total_delays + per_kernel * trace.kernels.len().max(1) as u64 + 2_000_000
}

/// Arms the engine's progress watchdog for a sweep run. `override_budget`
/// is the CLI knob: `None` arms the workload-scaled default budget,
/// `Some(0)` disarms the watchdog entirely, and any other value is used
/// verbatim.
pub fn arm_watchdog(cfg: &mut EngineConfig, trace: &WorkloadTrace, override_budget: Option<u64>) {
    cfg.livelock_budget = match override_budget {
        Some(0) => None,
        Some(n) => Some(n),
        None => Some(auto_livelock_budget(cfg, trace)),
    };
}

/// Append-only checkpoint of a sweep's per-cell results, enabling
/// `--resume` to re-run only failed or missing cells after a crash or
/// interruption.
///
/// The on-disk format is a line-oriented text file:
///
/// ```text
/// #hmg-sweep v1 <identity>
/// <cell key>\tok\t<cycles>
/// <cell key>\tfailed\t<first error line>
/// ```
///
/// The identity line pins the sweep's shape (figure, scale, seed,
/// protocol set, workload list); resuming against a file written by a
/// different sweep is rejected rather than silently mixing results.
/// Only `ok` cells are reused on resume — failed cells re-run, so a
/// transient failure (an injected fault, an interrupted process) heals
/// on the next invocation and the final report is identical to an
/// uninterrupted sweep.
#[derive(Debug)]
pub struct SweepCheckpoint {
    file: Mutex<File>,
    done: HashMap<String, u64>,
}

const CHECKPOINT_MAGIC: &str = "#hmg-sweep v1";

impl SweepCheckpoint {
    /// Opens (or creates) the checkpoint at `path`.
    ///
    /// With `resume` set, an existing file is validated against
    /// `identity` and its completed cells become reusable; without it,
    /// any existing file is truncated and the sweep starts fresh.
    pub fn open(path: &Path, identity: &str, resume: bool) -> Result<Self, SimError> {
        let mut done = HashMap::new();
        if resume && path.exists() {
            let reader = BufReader::new(File::open(path).map_err(|e| {
                SimError::config(format!("cannot read checkpoint {}: {e}", path.display()))
            })?);
            let mut lines = reader.lines();
            let header = lines
                .next()
                .transpose()
                .map_err(|e| SimError::config(format!("checkpoint read error: {e}")))?
                .unwrap_or_default();
            let expected = format!("{CHECKPOINT_MAGIC} {identity}");
            if header != expected {
                return Err(SimError::config(format!(
                    "checkpoint {} belongs to a different sweep\n  file:     {header}\n  expected: {expected}",
                    path.display()
                )));
            }
            for line in lines {
                let line =
                    line.map_err(|e| SimError::config(format!("checkpoint read error: {e}")))?;
                let mut parts = line.splitn(3, '\t');
                let (Some(key), Some(status), Some(value)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue; // torn tail line from an interrupted run
                };
                if status == "ok" {
                    if let Ok(cycles) = value.parse::<u64>() {
                        done.insert(key.to_string(), cycles);
                    }
                }
            }
            // Re-append reusable cells to a fresh file: failed and torn
            // rows are dropped, so the file shrinks back to truth.
            let mut file = File::create(path).map_err(|e| {
                SimError::config(format!("cannot write checkpoint {}: {e}", path.display()))
            })?;
            writeln!(file, "{expected}")
                .and_then(|()| {
                    let mut keys: Vec<&String> = done.keys().collect();
                    keys.sort();
                    for k in keys {
                        writeln!(file, "{k}\tok\t{}", done[k])?;
                    }
                    file.flush()
                })
                .map_err(|e| SimError::config(format!("checkpoint write error: {e}")))?;
            return Ok(SweepCheckpoint {
                file: Mutex::new(file),
                done,
            });
        }
        let mut file = File::create(path).map_err(|e| {
            SimError::config(format!("cannot write checkpoint {}: {e}", path.display()))
        })?;
        writeln!(file, "{CHECKPOINT_MAGIC} {identity}")
            .map_err(|e| SimError::config(format!("checkpoint write error: {e}")))?;
        Ok(SweepCheckpoint {
            file: Mutex::new(file),
            done,
        })
    }

    /// The completed cycle count for `key`, if a prior run finished it.
    pub fn lookup(&self, key: &str) -> Option<u64> {
        self.done.get(key).copied()
    }

    /// Number of cells reusable from the prior run.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Records a successful cell; flushed immediately so a crash loses
    /// at most the in-flight cells.
    pub fn record_ok(&self, key: &str, cycles: u64) {
        self.append(&format!("{}\tok\t{cycles}", sanitize(key)));
    }

    /// Records a failed cell (kept for the report; re-run on resume).
    pub fn record_failure(&self, key: &str, error: &str) {
        let first_line = error.lines().next().unwrap_or("unknown error");
        self.append(&format!(
            "{}\tfailed\t{}",
            sanitize(key),
            sanitize(first_line)
        ));
    }

    fn append(&self, line: &str) {
        let mut f = self.file.lock().expect("checkpoint poisoned");
        // Checkpointing is best-effort durability; the sweep's own
        // result does not depend on the write landing.
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Convenience wrapper: opens a checkpoint from optional CLI-style
/// settings. Returns `None` when no checkpoint path was requested.
///
/// # Panics
///
/// Panics with the typed error's message if the checkpoint cannot be
/// opened or belongs to a different sweep — both are configuration
/// mistakes the user must resolve.
pub fn open_checkpoint(
    path: Option<&PathBuf>,
    identity: &str,
    resume: bool,
) -> Option<SweepCheckpoint> {
    path.map(|p| SweepCheckpoint::open(p, identity, resume).unwrap_or_else(|e| panic!("{e}")))
}

/// Speedup of `measured` relative to `baseline` execution time.
///
/// # Panics
///
/// Panics if `measured` reports zero cycles.
pub fn speedup(baseline: &RunMetrics, measured: &RunMetrics) -> f64 {
    assert!(measured.total_cycles.as_u64() > 0, "empty run");
    baseline.total_cycles.as_u64() as f64 / measured.total_cycles.as_u64() as f64
}

/// Shrinks a machine's cache/directory capacities — and the OS page
/// size — by `factor`, keeping associativities and line/block sizes.
/// Used by the experiment drivers so that a workload whose footprint was
/// scaled down by N runs on a machine whose capacities are scaled down
/// by the same N, preserving both the footprint-to-cache ratios and the
/// pages-per-region ratios (home-node distribution) that the paper's
/// results depend on (DESIGN.md).
pub fn scale_capacities(cfg: &mut EngineConfig, factor: f64) {
    assert!(factor >= 1.0, "capacity factor must be >= 1, got {factor}");
    let shrink = |c: hmg_mem::CacheConfig| {
        let sets = ((c.lines / c.ways) as f64 / factor).round().max(1.0) as u32;
        hmg_mem::CacheConfig::new(sets * c.ways, c.ways)
    };
    cfg.l1 = shrink(cfg.l1);
    cfg.l2 = shrink(cfg.l2);
    let dir_sets = ((cfg.dir.entries / cfg.dir.ways) as f64 / factor)
        .round()
        .max(1.0) as u32;
    cfg.dir = hmg_mem::DirectoryConfig::new(dir_sets * cfg.dir.ways, cfg.dir.ways);
    let block_bytes = (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
    let page = ((cfg.geometry.page_bytes() as f64 / factor) as u64)
        .next_multiple_of(block_bytes)
        .max(16 * 1024);
    cfg.geometry = hmg_mem::MemGeometry::new(
        cfg.geometry.line_bytes(),
        cfg.geometry.lines_per_block(),
        page,
    );
    // Kernel launch overhead amortizes over kernel duration on the real
    // machine; scaled-down kernels get proportionally scaled overhead.
    cfg.kernel_launch_overhead =
        hmg_sim::Cycle(((cfg.kernel_launch_overhead.as_u64() as f64 / factor) as u64).max(200));
}

/// Maps `f` over `items` on all available cores, preserving order.
/// Simulation runs are independent, so the experiment drivers use this
/// to fan whole sweeps out across the machine.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmg_workloads::suite::by_abbrev;

    #[test]
    fn tiny_scale_uses_small_machine() {
        let r = Runner::new(Scale::Tiny);
        let cfg = r.config(ProtocolKind::Hmg);
        assert_eq!(cfg.topo.num_gpus(), 2);
        let r = Runner::new(Scale::Small);
        assert_eq!(r.config(ProtocolKind::Hmg).topo.num_gpus(), 4);
    }

    #[test]
    fn overrides_apply() {
        let mut r = Runner::new(Scale::Small);
        r.configure(|c| c.fabric.inter_gpu_gbps = 400.0);
        assert_eq!(r.config(ProtocolKind::Nhcc).fabric.inter_gpu_gbps, 400.0);
    }

    #[test]
    fn scale_capacities_identity_at_factor_one() {
        let base = EngineConfig::paper_default(ProtocolKind::Hmg);
        let mut scaled = base.clone();
        scale_capacities(&mut scaled, 1.0);
        assert_eq!(scaled.l1, base.l1);
        assert_eq!(scaled.l2, base.l2);
        assert_eq!(scaled.dir, base.dir);
        assert_eq!(scaled.geometry.page_bytes(), base.geometry.page_bytes());
        assert_eq!(scaled.kernel_launch_overhead, base.kernel_launch_overhead);
    }

    #[test]
    fn scale_capacities_shrinks_proportionally() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 16.0);
        // 1024-line L1 -> 64 lines; 24576-line L2 -> 1536; 12K dir -> 768.
        assert_eq!(cfg.l1.lines, 64);
        assert_eq!(cfg.l2.lines, 1536);
        assert_eq!(cfg.dir.entries, 768);
        // Associativities preserved.
        assert_eq!(cfg.l1.ways, 8);
        assert_eq!(cfg.l2.ways, 16);
        // Page shrinks and stays a multiple of the directory block.
        assert_eq!(cfg.geometry.page_bytes(), 128 * 1024);
        let block = (cfg.geometry.line_bytes() * cfg.geometry.lines_per_block()) as u64;
        assert_eq!(cfg.geometry.page_bytes() % block, 0);
        // Launch overhead scales with a floor.
        assert!(cfg.kernel_launch_overhead.as_u64() >= 187);
    }

    #[test]
    fn scale_capacities_has_floors() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 1e6);
        assert!(cfg.l1.lines >= cfg.l1.ways);
        assert!(cfg.l2.lines >= cfg.l2.ways);
        assert!(cfg.dir.entries >= cfg.dir.ways);
        assert!(cfg.geometry.page_bytes() >= 16 * 1024);
        assert!(cfg.kernel_launch_overhead.as_u64() >= 200);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn scale_capacities_rejects_expansion() {
        let mut cfg = EngineConfig::paper_default(ProtocolKind::Hmg);
        scale_capacities(&mut cfg, 0.5);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn auto_budget_scales_with_trace_delays() {
        let cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        let quiet = WorkloadTrace::new("quiet", vec![]);
        let base = auto_livelock_budget(&cfg, &quiet);
        let slow = WorkloadTrace::new(
            "slow",
            vec![hmg_protocol::Kernel::new(vec![hmg_protocol::Cta::new(
                vec![TraceOp::Delay(5_000_000)],
            )])],
        );
        assert!(auto_livelock_budget(&cfg, &slow) >= base + 5_000_000);
    }

    #[test]
    fn arm_watchdog_override_semantics() {
        let cfg0 = EngineConfig::small_test(ProtocolKind::Hmg);
        let trace = WorkloadTrace::new("t", vec![]);
        let mut cfg = cfg0.clone();
        arm_watchdog(&mut cfg, &trace, None);
        assert_eq!(
            cfg.livelock_budget,
            Some(auto_livelock_budget(&cfg0, &trace))
        );
        arm_watchdog(&mut cfg, &trace, Some(0));
        assert_eq!(cfg.livelock_budget, None, "zero disarms");
        arm_watchdog(&mut cfg, &trace, Some(123));
        assert_eq!(cfg.livelock_budget, Some(123));
    }

    #[test]
    fn checkpoint_roundtrip_reuses_ok_cells_only() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "fig8|tiny|seed=1", false).unwrap();
            assert_eq!(c.completed(), 0);
            c.record_ok("bfs/HMG", 12345);
            c.record_ok("bfs/NHCC", 777);
            c.record_failure("lstm/HMG", "deadlocked: st_pending\nmachine dump...");
        }
        let c = SweepCheckpoint::open(&path, "fig8|tiny|seed=1", true).unwrap();
        assert_eq!(c.completed(), 2, "failed cells must not be reused");
        assert_eq!(c.lookup("bfs/HMG"), Some(12345));
        assert_eq!(c.lookup("bfs/NHCC"), Some(777));
        assert_eq!(c.lookup("lstm/HMG"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_foreign_identity() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-identity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        SweepCheckpoint::open(&path, "fig8|tiny|seed=1", false).unwrap();
        let err = SweepCheckpoint::open(&path, "fig12|tiny|seed=1", true).unwrap_err();
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_resume_starts_fresh() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-fresh");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 1);
        }
        let c = SweepCheckpoint::open(&path, "id", false).unwrap();
        assert_eq!(c.completed(), 0, "no --resume means a clean slate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_survives_torn_tail_line() {
        let dir = std::env::temp_dir().join("hmg-ckpt-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        {
            let c = SweepCheckpoint::open(&path, "id", false).unwrap();
            c.record_ok("a/HMG", 42);
        }
        // Simulate a crash mid-write: a truncated trailing record.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "b/HMG\tok").unwrap();
        }
        let c = SweepCheckpoint::open(&path, "id", true).unwrap();
        assert_eq!(c.completed(), 1);
        assert_eq!(c.lookup("a/HMG"), Some(42));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_produce_metrics_and_speedup() {
        let spec = by_abbrev("bfs").unwrap();
        let trace = spec.generate(Scale::Tiny, 7);
        let mut r = Runner::new(Scale::Tiny);
        let base = r.run(&trace, ProtocolKind::NoPeerCaching);
        let hmg = r.run(&trace, ProtocolKind::Hmg);
        assert!(base.total_cycles.as_u64() > 0);
        let s = speedup(&base, &hmg);
        assert!(s > 0.5, "speedup {s} implausible");
    }
}
