//! Plain-text table formatting for experiment output.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use hmg::report::Table;
///
/// let mut t = Table::new(vec!["workload".into(), "speedup".into()]);
/// t.row(vec!["bfs".into(), "3.30".into()]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("3.30"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cells[i]
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%x".contains(c));
                if numeric && !cells[i].is_empty() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                } else {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.row(vec!["workload-x".into(), "1.50".into()]);
        t.row(vec!["y".into(), "12.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("workload-x"));
        assert!(lines[3].ends_with("12.25"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12349), "0.123");
        assert_eq!(pct(0.973), "97.3%");
    }
}
