//! The `experiments bench` hot-path benchmark harness.
//!
//! Runs the Fig. 8 cells single-threaded and in-process — no
//! supervisor, no worker pool — so the numbers isolate the DES hot
//! paths (event queue, engine state maps, fabric) from sweep
//! orchestration. Emits a schema-versioned `BENCH_hotpath.json` with
//! events/sec, cycles/sec, wall time, and peak RSS per protocol
//! configuration, giving this and every later PR a measured perf
//! trajectory (ROADMAP item 1).
//!
//! Every cell also reports its [`RunMetrics::state_digest`], the
//! behavioral oracle of the hot-path rewrite: a bench run whose digests
//! differ from the seed tree's is *wrong*, not just slow.
//!
//! All stable fields (workload, protocol, events, cycles, digest) are
//! deterministic for a given seed; only the timing-derived fields
//! (`wall_s`, `*_per_sec`, `peak_rss_kb`) vary between reruns. The
//! bench smoke test relies on that split.
//!
//! [`RunMetrics::state_digest`]: hmg_gpu::RunMetrics::state_digest

use std::path::Path;

use hmg_protocol::ProtocolKind;
use hmg_sim::SimError;
use hmg_workloads::suite::by_abbrev;
use hmg_workloads::Scale;

use crate::experiments::ExpOptions;
use crate::report::Table;

/// Schema tag of `BENCH_hotpath.json`; bump when the shape changes.
pub const SCHEMA: &str = "hmg-bench-hotpath-v1";

/// Allowed throughput regression against a checked-in baseline before
/// the gate fails (20%, per the CI `bench-smoke` contract).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// The Fig. 8 workloads the full bench times, in figure order.
const BENCH_WORKLOADS: [&str; 4] = ["RNN_FW", "bfs", "CoMD", "lstm"];

/// The reduced `--quick` matrix: two workloads with distinct sharing
/// patterns under the baseline, both hardware protocols' extremes.
const QUICK_WORKLOADS: [&str; 2] = ["bfs", "CoMD"];
const QUICK_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::NoPeerCaching,
    ProtocolKind::Nhcc,
    ProtocolKind::Hmg,
    ProtocolKind::Ideal,
];

/// One timed (workload, protocol) cell.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Workload abbreviation (Table III).
    pub workload: String,
    /// Protocol configuration timed.
    pub protocol: ProtocolKind,
    /// DES events executed.
    pub events: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed-memory state digest — the behavioral oracle.
    pub digest: u64,
    /// Wall-clock seconds of the engine run (trace generation and
    /// configuration are excluded: this times the DES, not the setup).
    pub wall_s: f64,
    /// Peak resident set size in KB observed by the end of this cell
    /// (`VmHWM`; process-wide high-water mark, 0 where unsupported).
    pub peak_rss_kb: u64,
}

impl BenchCell {
    /// DES events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s.max(1e-9)
    }
}

/// One cell timed back-to-back with snapshotting off and on at the
/// default capture interval — the measured cost of the preemptible-cell
/// machinery (DESIGN.md §14). The state digest is oracle-checked equal
/// between the two runs before the numbers are reported.
#[derive(Debug, Clone)]
pub struct SnapshotBench {
    /// Workload abbreviation of the measured cell.
    pub workload: String,
    /// Protocol configuration of the measured cell.
    pub protocol: ProtocolKind,
    /// Cycles between periodic captures in the snapshot-on run.
    pub interval: u64,
    /// Snapshots the snapshot-on run wrote.
    pub snapshots_written: u64,
    /// DES events of the cell (identical in both runs).
    pub events: u64,
    /// Wall seconds with snapshotting off.
    pub off_wall_s: f64,
    /// Wall seconds with snapshotting on.
    pub on_wall_s: f64,
}

impl SnapshotBench {
    /// Events/sec with snapshotting off.
    pub fn off_events_per_sec(&self) -> f64 {
        self.events as f64 / self.off_wall_s.max(1e-9)
    }

    /// Events/sec with snapshotting on.
    pub fn on_events_per_sec(&self) -> f64 {
        self.events as f64 / self.on_wall_s.max(1e-9)
    }

    /// Throughput overhead of snapshotting in percent (positive =
    /// snapshot-on is slower).
    pub fn overhead_pct(&self) -> f64 {
        (self.off_events_per_sec() / self.on_events_per_sec().max(1e-9) - 1.0) * 100.0
    }
}

/// The full bench result, serializable as `BENCH_hotpath.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `--quick` reduced matrix?
    pub quick: bool,
    /// Scale the cells ran at.
    pub scale: Scale,
    /// Workload-generation seed.
    pub seed: u64,
    /// Every timed cell, in (workload, protocol) order.
    pub cells: Vec<BenchCell>,
    /// The snapshot-overhead measurement.
    pub snapshot: Option<SnapshotBench>,
}

impl BenchReport {
    /// Total DES events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Total simulated cycles across all cells.
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Total engine wall time across all cells.
    pub fn total_wall_s(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_s).sum()
    }

    /// Aggregate DES events per second — the headline hot-path number
    /// and the quantity the CI regression gate compares.
    pub fn total_events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.total_wall_s().max(1e-9)
    }

    /// Peak RSS over the whole bench (the last cell's high-water mark).
    pub fn peak_rss_kb(&self) -> u64 {
        self.cells.iter().map(|c| c.peak_rss_kb).max().unwrap_or(0)
    }

    /// Renders the report as the `BENCH_hotpath.json` document. One
    /// field per line; the timing-derived fields (`wall_s`,
    /// `events_per_sec`, `cycles_per_sec`, `peak_rss_kb`, and the
    /// `total_*` aggregates of those) are the only lines that differ
    /// between same-seed reruns.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if self.quick { "quick" } else { "full" }
        ));
        s.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(self.scale)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"workload\": \"{}\",\n", c.workload));
            s.push_str(&format!("      \"protocol\": \"{}\",\n", c.protocol.name()));
            s.push_str(&format!("      \"events\": {},\n", c.events));
            s.push_str(&format!("      \"cycles\": {},\n", c.cycles));
            s.push_str(&format!("      \"digest\": \"{:016x}\",\n", c.digest));
            s.push_str(&format!("      \"wall_s\": {:.6},\n", c.wall_s));
            s.push_str(&format!(
                "      \"events_per_sec\": {:.0},\n",
                c.events_per_sec()
            ));
            s.push_str(&format!(
                "      \"cycles_per_sec\": {:.0},\n",
                c.cycles_per_sec()
            ));
            s.push_str(&format!("      \"peak_rss_kb\": {}\n", c.peak_rss_kb));
            s.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ],\n");
        if let Some(sn) = &self.snapshot {
            s.push_str("  \"snapshot\": {\n");
            s.push_str(&format!("    \"workload\": \"{}\",\n", sn.workload));
            s.push_str(&format!("    \"protocol\": \"{}\",\n", sn.protocol.name()));
            s.push_str(&format!("    \"interval\": {},\n", sn.interval));
            s.push_str(&format!(
                "    \"snapshots_written\": {},\n",
                sn.snapshots_written
            ));
            s.push_str(&format!("    \"events\": {},\n", sn.events));
            s.push_str(&format!("    \"off_wall_s\": {:.6},\n", sn.off_wall_s));
            s.push_str(&format!("    \"on_wall_s\": {:.6},\n", sn.on_wall_s));
            s.push_str(&format!(
                "    \"off_events_per_sec\": {:.0},\n",
                sn.off_events_per_sec()
            ));
            s.push_str(&format!(
                "    \"on_events_per_sec\": {:.0},\n",
                sn.on_events_per_sec()
            ));
            s.push_str(&format!("    \"overhead_pct\": {:.2}\n", sn.overhead_pct()));
            s.push_str("  },\n");
        }
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        s.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles()));
        s.push_str(&format!(
            "  \"total_wall_s\": {:.6},\n",
            self.total_wall_s()
        ));
        s.push_str(&format!(
            "  \"total_events_per_sec\": {:.0},\n",
            self.total_events_per_sec()
        ));
        s.push_str(&format!("  \"peak_rss_kb\": {}\n", self.peak_rss_kb()));
        s.push_str("}\n");
        s
    }

    /// Renders the report as a table.
    pub fn print(&self) {
        println!(
            "== Hot-path bench ({}, scale {}, seed {}) ==",
            if self.quick { "quick" } else { "full" },
            scale_name(self.scale),
            self.seed
        );
        let mut t = Table::new(vec![
            "cell".into(),
            "events".into(),
            "cycles".into(),
            "wall s".into(),
            "Mev/s".into(),
            "digest".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                format!("{}/{}", c.workload, c.protocol.name()),
                c.events.to_string(),
                c.cycles.to_string(),
                format!("{:.3}", c.wall_s),
                format!("{:.2}", c.events_per_sec() / 1e6),
                format!("{:016x}", c.digest),
            ]);
        }
        println!("{}", t.render());
        println!(
            "total: {} events in {:.3}s = {:.2}M events/s, peak RSS {} KB",
            self.total_events(),
            self.total_wall_s(),
            self.total_events_per_sec() / 1e6,
            self.peak_rss_kb()
        );
        if let Some(sn) = &self.snapshot {
            println!(
                "snapshot overhead ({}/{}, every {} cycles): {} snapshots, \
                 {:.2}M ev/s off vs {:.2}M ev/s on = {:+.2}%",
                sn.workload,
                sn.protocol.name(),
                sn.interval,
                sn.snapshots_written,
                sn.off_events_per_sec() / 1e6,
                sn.on_events_per_sec() / 1e6,
                sn.overhead_pct()
            );
        }
    }
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Peak resident set size (`VmHWM`) of this process in KB, or 0 where
/// `/proc/self/status` is unavailable (non-Linux hosts).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Runs the bench matrix single-threaded and returns the report.
///
/// `opts` supplies scale, seed, and an optional workload filter;
/// `quick` selects the reduced matrix the CI smoke job runs.
///
/// # Errors
///
/// Returns the first cell's typed [`SimError`] — a bench with a failing
/// cell has no meaningful throughput number.
pub fn run_bench(opts: &ExpOptions, quick: bool) -> Result<BenchReport, SimError> {
    let workloads: Vec<String> = match &opts.filter {
        Some(list) => list.clone(),
        None if quick => QUICK_WORKLOADS.iter().map(|s| s.to_string()).collect(),
        None => BENCH_WORKLOADS.iter().map(|s| s.to_string()).collect(),
    };
    let protocols: &[ProtocolKind] = if quick {
        &QUICK_PROTOCOLS
    } else {
        &ProtocolKind::ALL
    };
    let mut cells = Vec::with_capacity(workloads.len() * protocols.len());
    for workload in &workloads {
        let spec = by_abbrev(workload)
            .ok_or_else(|| SimError::config(format!("unknown workload `{workload}`")))?;
        // Trace generation is untimed setup: the bench measures the DES.
        let trace = spec.generate(opts.scale, opts.seed);
        for &protocol in protocols {
            let mut cfg = match opts.scale {
                Scale::Tiny => hmg_gpu::EngineConfig::small_test(protocol),
                Scale::Small | Scale::Full => hmg_gpu::EngineConfig::paper_default(protocol),
            };
            if let Some(f) = &opts.faults {
                cfg.faults = f.clone();
            }
            crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(opts.scale));
            crate::runner::arm_watchdog(&mut cfg, &trace, opts.livelock_budget);
            // audit:allow(entropy): wall-clock benchmarking only; never
            // feeds simulated state.
            let start = std::time::Instant::now();
            let m = crate::runner::run_isolated(cfg, &trace)?;
            let wall_s = start.elapsed().as_secs_f64();
            cells.push(BenchCell {
                workload: workload.clone(),
                protocol,
                events: m.events,
                cycles: m.total_cycles.as_u64(),
                digest: m.state_digest,
                wall_s,
                peak_rss_kb: peak_rss_kb(),
            });
        }
    }
    let snapshot = Some(snapshot_overhead(opts, &workloads[0], protocols)?);
    Ok(BenchReport {
        quick,
        scale: opts.scale,
        seed: opts.seed,
        cells,
        snapshot,
    })
}

/// Times one representative cell back-to-back with snapshotting off
/// and on at [`crate::experiments::DEFAULT_SNAPSHOT_INTERVAL`], and
/// oracle-checks the two runs digest-identical before reporting.
fn snapshot_overhead(
    opts: &ExpOptions,
    workload: &str,
    protocols: &[ProtocolKind],
) -> Result<SnapshotBench, SimError> {
    let protocol = protocols
        .iter()
        .copied()
        .find(|&p| p == ProtocolKind::Hmg)
        .unwrap_or(protocols[0]);
    let spec = by_abbrev(workload)
        .ok_or_else(|| SimError::config(format!("unknown workload `{workload}`")))?;
    let trace = spec.generate(opts.scale, opts.seed);
    let mut cfg = match opts.scale {
        Scale::Tiny => hmg_gpu::EngineConfig::small_test(protocol),
        Scale::Small | Scale::Full => hmg_gpu::EngineConfig::paper_default(protocol),
    };
    if let Some(f) = &opts.faults {
        cfg.faults = f.clone();
    }
    crate::runner::scale_capacities(&mut cfg, spec.capacity_factor(opts.scale));
    crate::runner::arm_watchdog(&mut cfg, &trace, opts.livelock_budget);

    let interval = crate::experiments::DEFAULT_SNAPSHOT_INTERVAL;
    let dir = std::env::temp_dir().join(format!("hmg-bench-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| SimError::config(format!("cannot create snapshot dir: {e}")))?;
    let path = dir.join("overhead.snap");
    let store = hmg_sim::SnapshotStore::new(&path);
    let identity =
        crate::runner::fnv1a64(format!("bench|{workload}|{}", protocol.name()).as_bytes());
    let policy = hmg_gpu::SnapshotPolicy::periodic(&path, identity, interval);

    // Interleaved best-of-3 pairs: a single off/on pair is hostage to
    // whatever else the host runs during one of the two arms, and the
    // overhead ratio is the artifact CI and the docs quote. Taking each
    // arm's best wall time discards load spikes while the interleaving
    // keeps slow drift from biasing one side.
    let mut off_wall_s = f64::INFINITY;
    let mut on_wall_s = f64::INFINITY;
    let mut off = None;
    let mut written = 0;
    for _ in 0..3 {
        // audit:allow(entropy): wall-clock benchmarking only; never
        // feeds simulated state.
        let start = std::time::Instant::now();
        let m = crate::runner::run_isolated(cfg.clone(), &trace)?;
        off_wall_s = off_wall_s.min(start.elapsed().as_secs_f64());

        // A stale store would turn the timed run into a (shorter)
        // resumed run; start each arm cold.
        for slot in store.slots() {
            let _ = std::fs::remove_file(&slot);
        }
        // audit:allow(entropy): wall-clock benchmarking only; never
        // feeds simulated state.
        let start = std::time::Instant::now();
        let (on, report) = crate::runner::run_preemptible(cfg.clone(), &trace, &policy)?;
        on_wall_s = on_wall_s.min(start.elapsed().as_secs_f64());
        written = report.written;

        if on.state_digest != m.state_digest || on.events != m.events {
            return Err(SimError::protocol(format!(
                "snapshot-on bench run diverged from snapshot-off: \
                 digest {:016x} vs {:016x}, events {} vs {}",
                on.state_digest, m.state_digest, on.events, m.events
            )));
        }
        off = Some(m);
    }
    for slot in store.slots() {
        let _ = std::fs::remove_file(&slot);
    }
    let off = off.expect("three timed rounds ran");
    Ok(SnapshotBench {
        workload: workload.to_string(),
        protocol,
        interval,
        snapshots_written: written,
        events: off.events,
        off_wall_s,
        on_wall_s,
    })
}

/// Extracts `"total_events_per_sec"` from a `BENCH_hotpath.json`
/// document (used to compare against a checked-in baseline).
pub fn parse_total_events_per_sec(json: &str) -> Option<f64> {
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"total_events_per_sec\":") {
            return rest.trim().trim_end_matches(',').parse().ok();
        }
    }
    None
}

/// Compares `report` against the checked-in baseline at `path`.
///
/// # Errors
///
/// Returns a description of the failure when the baseline is
/// missing/unparseable or throughput regressed more than
/// [`REGRESSION_TOLERANCE`] below it.
pub fn regression_gate(report: &BenchReport, path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline = parse_total_events_per_sec(&text)
        .ok_or_else(|| format!("no total_events_per_sec in baseline {}", path.display()))?;
    let current = report.total_events_per_sec();
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if current < floor {
        return Err(format!(
            "hot-path throughput regressed: {current:.0} events/s < {floor:.0} \
             (baseline {baseline:.0} - {:.0}% tolerance)",
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(format!(
        "bench gate ok: {current:.0} events/s vs baseline {baseline:.0} \
         ({:+.1}%)",
        (current / baseline - 1.0) * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_quick_report() -> BenchReport {
        let opts = ExpOptions {
            scale: Scale::Tiny,
            seed: 17,
            filter: Some(vec!["bfs".into()]),
            ..ExpOptions::default()
        };
        run_bench(&opts, true).expect("bench runs clean")
    }

    #[test]
    fn bench_reports_positive_throughput_and_digests() {
        let r = tiny_quick_report();
        assert_eq!(r.cells.len(), QUICK_PROTOCOLS.len());
        for c in &r.cells {
            assert!(c.events > 0, "{}/{}", c.workload, c.protocol.name());
            assert!(c.cycles > 0);
            assert!(c.wall_s > 0.0);
            assert!(c.events_per_sec() > 0.0);
        }
        // Digest is protocol-independent — the oracle the rewrite is
        // validated against must agree across every config.
        let d0 = r.cells[0].digest;
        assert!(r.cells.iter().all(|c| c.digest == d0));
        assert!(r.total_events_per_sec() > 0.0);
    }

    #[test]
    fn json_is_schema_versioned_and_round_trips_the_gate_number() {
        let r = tiny_quick_report();
        let json = r.to_json();
        assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));
        assert!(json.contains("\"mode\": \"quick\""));
        let parsed = parse_total_events_per_sec(&json).expect("gate number present");
        assert!((parsed - r.total_events_per_sec()).abs() <= 1.0);
    }

    #[test]
    fn stable_fields_are_deterministic_across_reruns() {
        let (a, b) = (tiny_quick_report(), tiny_quick_report());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| {
                    let t = l.trim();
                    !(t.starts_with("\"wall_s\"")
                        || t.starts_with("\"events_per_sec\"")
                        || t.starts_with("\"cycles_per_sec\"")
                        || t.starts_with("\"peak_rss_kb\"")
                        || t.starts_with("\"total_wall_s\"")
                        || t.starts_with("\"total_events_per_sec\"")
                        || t.starts_with("\"off_wall_s\"")
                        || t.starts_with("\"on_wall_s\"")
                        || t.starts_with("\"off_events_per_sec\"")
                        || t.starts_with("\"on_events_per_sec\"")
                        || t.starts_with("\"overhead_pct\""))
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
    }

    #[test]
    fn regression_gate_passes_and_fails_correctly() {
        let r = tiny_quick_report();
        let dir = std::env::temp_dir().join("hmg-bench-gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        // Baseline == current run: the gate passes.
        std::fs::write(&path, r.to_json()).unwrap();
        regression_gate(&r, &path).expect("identical baseline passes");

        // Baseline far above current: the gate fails.
        let inflated = format!(
            "{{\n  \"total_events_per_sec\": {:.0}\n}}\n",
            r.total_events_per_sec() * 10.0
        );
        std::fs::write(&path, inflated).unwrap();
        let err = regression_gate(&r, &path).expect_err("10x baseline fails");
        assert!(err.contains("regressed"), "{err}");

        // Missing baseline: a loud error, not a silent pass.
        assert!(regression_gate(&r, &dir.join("nope.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
