//! Resilient parallel sweep supervisor.
//!
//! Every experiment grid in this repo (the Fig. 8/12–14 speedup
//! sweeps, the litmus sweeps of `hmg-check`, the fault and
//! fail-in-place sweeps) is a set of *independent* simulation cells.
//! [`run_isolated`](crate::runner::run_isolated) already contains
//! panics, but an in-process cell can still take the whole sweep down
//! with it: an unbounded hang wedges the worker forever, an OOM kill
//! or `abort()` ends the process, and a multi-hour `--scale full`
//! sweep loses everything not yet checkpointed.
//!
//! The supervisor closes that gap:
//!
//! * **Process isolation** ([`Isolation::Process`]): each cell runs in
//!   a child process (a re-exec of `current_exe()` in the hidden
//!   `__run-cell` mode), so a crashing or OOM-killed cell becomes a
//!   `crashed` row in the failure table instead of ending the sweep.
//! * **Timeout-kill**: a per-cell wall-clock budget; a hung child is
//!   killed and reported as `timeout` with its stderr tail.
//! * **Retry with backoff**: `crashed`/`timeout` outcomes may be
//!   transient (a machine hiccup, a memory spike) and are retried with
//!   deterministic exponential backoff; after the attempt cap the cell
//!   is **quarantined** and the sweep moves on. Typed simulation
//!   errors (a detected deadlock, a protocol violation) are
//!   deterministic and are *not* retried.
//! * **Drain-and-stop**: without `keep_going`, the first failure stops
//!   new cells from being claimed while in-flight cells drain cleanly;
//!   unclaimed cells are reported as `skipped`.
//! * **Thread fallback** ([`Isolation::Thread`]): the same supervisor
//!   loop with in-process execution (panic containment only — no kill
//!   is possible, so timeouts are not enforced). This is the mode
//!   library tests use, since re-exec'ing a test binary is meaningless.
//!
//! Results merge in deterministic input order regardless of worker
//! interleaving, and every cell records its wall time so sweeps emit a
//! perf trajectory (`BENCH_sweep.json` via [`take_tally`]).

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use hmg_sim::SimError;

/// How cells are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// Each cell attempt runs in a child process (crash + hang proof).
    Process,
    /// Each cell attempt runs on a worker thread (panic containment
    /// only; hangs cannot be killed). Used by library tests and as the
    /// in-process fallback.
    Thread,
}

impl Isolation {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<Isolation> {
        match s {
            "process" => Some(Isolation::Process),
            "thread" => Some(Isolation::Thread),
            _ => None,
        }
    }

    /// CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Isolation::Process => "process",
            Isolation::Thread => "thread",
        }
    }
}

/// Supervisor policy for one sweep.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads (0 = all available cores).
    pub jobs: usize,
    /// Per-cell wall-clock budget; `None` = unbounded. Only
    /// enforceable under [`Isolation::Process`].
    pub cell_timeout: Option<Duration>,
    /// Extra attempts after the first for `crashed`/`timeout` cells.
    pub retries: u32,
    /// Execution mode.
    pub isolation: Isolation,
    /// Keep claiming cells after a failure (otherwise drain-and-stop).
    pub keep_going: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            jobs: 0,
            cell_timeout: None,
            retries: 2,
            isolation: Isolation::Thread,
            keep_going: false,
        }
    }
}

impl SupervisorConfig {
    /// The worker count this config resolves to on this machine,
    /// bounded by the cell count.
    pub fn resolved_jobs(&self, cells: usize) -> usize {
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let jobs = if self.jobs == 0 { avail } else { self.jobs };
        jobs.clamp(1, cells.max(1))
    }
}

/// Outcome of one *attempt* at a cell, as classified by the executor.
#[derive(Debug)]
pub enum Attempt<R> {
    /// The attempt completed and produced a result.
    Ok(R),
    /// The attempt completed with a typed, deterministic simulation
    /// error (deadlock, protocol violation, bad config) — not retried.
    Fault(SimError),
    /// The attempt died without producing a result (panic, abort,
    /// signal, unparseable child output) — retried, then quarantined.
    Crashed(String),
    /// The attempt exceeded the wall-clock budget and was killed —
    /// retried, then quarantined.
    Timeout(String),
}

/// Final disposition of one cell (the sweep failure taxonomy).
#[derive(Debug, Clone)]
pub enum CellStatus {
    /// Completed with a result.
    Ok,
    /// Typed simulation error (deterministic; never retried).
    Failed(SimError),
    /// Died without a result on its last attempt.
    Crashed(String),
    /// Killed by the per-cell wall-clock budget on its last attempt.
    Timeout(String),
    /// Never claimed: the sweep drained-and-stopped after an earlier
    /// hard failure (re-run on `--resume`).
    Skipped,
}

impl CellStatus {
    /// Short taxonomy name (`ok`/`failed`/`crashed`/`timeout`/`skipped`).
    pub fn name(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed(_) => "failed",
            CellStatus::Crashed(_) => "crashed",
            CellStatus::Timeout(_) => "timeout",
            CellStatus::Skipped => "skipped",
        }
    }

    /// The failure detail, if any.
    pub fn error(&self) -> Option<String> {
        match self {
            CellStatus::Ok => None,
            CellStatus::Failed(e) => Some(e.to_string()),
            CellStatus::Crashed(m) | CellStatus::Timeout(m) => Some(m.clone()),
            CellStatus::Skipped => Some("skipped after an earlier failure".into()),
        }
    }
}

/// One cell's final report.
#[derive(Debug, Clone)]
pub struct CellReport<R> {
    /// Sweep-unique cell key (also the checkpoint key).
    pub key: String,
    /// Final disposition.
    pub status: CellStatus,
    /// Attempts consumed (0 for cells reused from a checkpoint).
    pub attempts: u32,
    /// The attempt cap was exhausted on crash/timeout outcomes; the
    /// cell is excluded from further retries.
    pub quarantined: bool,
    /// Wall-clock seconds spent on this cell across all attempts.
    pub wall_secs: f64,
    /// The result (`Ok` cells only).
    pub outcome: Option<R>,
}

impl<R> CellReport<R> {
    /// `true` when the cell finished with a result.
    pub fn is_ok(&self) -> bool {
        matches!(self.status, CellStatus::Ok)
    }
}

/// What a supervised sweep produced, in deterministic input order.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// Per-cell reports, in the order cells were submitted.
    pub cells: Vec<CellReport<R>>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
}

impl<R> SweepReport<R> {
    /// `true` when every cell completed with a result.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(CellReport::is_ok)
    }

    /// Cells that did not complete.
    pub fn failures(&self) -> impl Iterator<Item = &CellReport<R>> {
        self.cells.iter().filter(|c| !c.is_ok())
    }

    /// Count of cells with the given taxonomy name.
    pub fn count(&self, name: &str) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status.name() == name)
            .count()
    }

    /// One greppable summary line for sweep logs and CI.
    pub fn summary_line(&self, reused: usize, stale: usize) -> String {
        let quarantined = self.cells.iter().filter(|c| c.quarantined).count();
        format!(
            "[sweep] cells={} ok={} failed={} crashed={} timeout={} skipped={} \
             quarantined={quarantined} reused={reused} stale={stale} jobs={} wall={:.2}s",
            self.cells.len(),
            self.count("ok"),
            self.count("failed"),
            self.count("crashed"),
            self.count("timeout"),
            self.count("skipped"),
            self.jobs,
            self.wall_secs,
        )
    }
}

/// Deterministic exponential backoff before retry `attempt` (1-based
/// count of attempts already made). Pure function of the attempt
/// number so reruns behave identically.
pub fn backoff(attempt: u32) -> Duration {
    let ms = 25u64.saturating_mul(1u64 << attempt.min(6));
    Duration::from_millis(ms.min(2_000))
}

/// Runs `cells` through the supervisor loop: a work-stealing pool of
/// [`SupervisorConfig::resolved_jobs`] workers claims cells in input
/// order, executes each via `attempt` (which encapsulates the
/// isolation mode), retries transient failures with [`backoff`], and
/// merges reports in deterministic input order.
///
/// `attempt(cell, n)` performs attempt number `n` (1-based) and
/// classifies the outcome; it must be safe to call concurrently.
pub fn supervise<T, R, F>(
    cells: &[T],
    key_of: impl Fn(&T) -> String + Sync,
    cfg: &SupervisorConfig,
    attempt: F,
) -> SweepReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u32) -> Attempt<R> + Sync,
{
    // audit:allow(entropy): wall-clock sweep accounting only; never
    // feeds simulated state.
    let t0 = std::time::Instant::now();
    let n = cells.len();
    let jobs = cfg.resolved_jobs(n);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<CellReport<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let key = key_of(&cells[i]);
                let report = if stop.load(Ordering::Relaxed) && !cfg.keep_going {
                    CellReport {
                        key,
                        status: CellStatus::Skipped,
                        attempts: 0,
                        quarantined: false,
                        wall_secs: 0.0,
                        outcome: None,
                    }
                } else {
                    let r = run_one(&cells[i], key, cfg, &attempt);
                    if !r.is_ok() && !cfg.keep_going {
                        stop.store(true, Ordering::Relaxed);
                    }
                    r
                };
                // A panic cannot happen while this lock is held (the
                // attempt already ran), so poisoning is unreachable;
                // recover defensively instead of double-panicking.
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(report);
            });
        }
    });

    let cells = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every claimed slot is filled before the scope ends")
        })
        .collect();
    let report = SweepReport {
        cells,
        wall_secs: t0.elapsed().as_secs_f64(),
        jobs,
    };
    tally_sweep(&report);
    report
}

/// Runs one cell to its final status: first attempt, then bounded
/// deterministic retries for transient (`crashed`/`timeout`) outcomes.
fn run_one<T, R, F>(cell: &T, key: String, cfg: &SupervisorConfig, attempt: &F) -> CellReport<R>
where
    F: Fn(&T, u32) -> Attempt<R>,
{
    // audit:allow(entropy): wall-clock cell accounting only; never
    // feeds simulated state.
    let t0 = std::time::Instant::now();
    let max_attempts = 1 + cfg.retries;
    let mut attempts = 0;
    let mut last: Option<CellStatus> = None;
    while attempts < max_attempts {
        attempts += 1;
        match attempt(cell, attempts) {
            Attempt::Ok(r) => {
                return CellReport {
                    key,
                    status: CellStatus::Ok,
                    attempts,
                    quarantined: false,
                    wall_secs: t0.elapsed().as_secs_f64(),
                    outcome: Some(r),
                }
            }
            Attempt::Fault(e) => {
                // Deterministic: retrying would reproduce it exactly.
                return CellReport {
                    key,
                    status: CellStatus::Failed(e),
                    attempts,
                    quarantined: false,
                    wall_secs: t0.elapsed().as_secs_f64(),
                    outcome: None,
                };
            }
            Attempt::Crashed(m) => last = Some(CellStatus::Crashed(m)),
            Attempt::Timeout(m) => last = Some(CellStatus::Timeout(m)),
        }
        if attempts < max_attempts {
            std::thread::sleep(backoff(attempts));
        }
    }
    CellReport {
        key,
        status: last.unwrap_or(CellStatus::Skipped),
        attempts,
        quarantined: true,
        wall_secs: t0.elapsed().as_secs_f64(),
        outcome: None,
    }
}

// ---------------------------------------------------------------------
// Process-isolation executor
// ---------------------------------------------------------------------

/// How a child-process attempt reports back to the supervisor: the
/// *last* stdout line is a marker of this form; every preceding stdout
/// line is forwarded verbatim to the parent's stdout (greppable
/// `[fail-in-place]` accounting etc. survives isolation).
pub const CELL_MARKER: &str = "__hmg_cell_v1";

/// Exit code a child uses for a typed simulation error (distinguishes
/// deterministic failures from crashes, which exit however they die).
pub const CELL_FAULT_EXIT: i32 = 2;

/// Child-process command for one cell attempt.
#[derive(Debug, Clone)]
pub struct CellCommand {
    /// Executable (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Full argument list (including the `__run-cell` mode selector).
    pub args: Vec<String>,
}

/// Runs one attempt in a child process: spawns `cmd`, polls for exit
/// with the wall-clock budget, kills on timeout, forwards pre-marker
/// stdout, and classifies the outcome.
pub fn process_attempt(cmd: &CellCommand, timeout: Option<Duration>) -> Attempt<String> {
    let child = Command::new(&cmd.exe)
        .args(&cmd.args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(e) => return Attempt::Crashed(format!("cannot spawn cell process: {e}")),
    };

    // Drain the pipes on helper threads so a chatty child never blocks
    // on a full pipe while the parent only polls for exit.
    let mut stdout_pipe = child.stdout.take();
    let mut stderr_pipe = child.stderr.take();
    let out_reader = std::thread::spawn(move || {
        let mut buf = String::new();
        if let Some(p) = stdout_pipe.as_mut() {
            let _ = p.read_to_string(&mut buf);
        }
        buf
    });
    let err_reader = std::thread::spawn(move || {
        let mut buf = String::new();
        if let Some(p) = stderr_pipe.as_mut() {
            let _ = p.read_to_string(&mut buf);
        }
        buf
    });

    // audit:allow(entropy): wall-clock timeout enforcement only; never
    // feeds simulated state.
    let start = std::time::Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break Ok(status),
            Ok(None) => {
                if let Some(t) = timeout {
                    if start.elapsed() >= t {
                        let _ = child.kill();
                        let _ = child.wait();
                        break Err(t);
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Attempt::Crashed(format!("cell process wait failed: {e}"));
            }
        }
    };
    let stdout = out_reader.join().unwrap_or_default();
    let stderr = err_reader.join().unwrap_or_default();

    let status = match status {
        Ok(s) => s,
        Err(budget) => {
            forward_stdout(&stdout);
            return Attempt::Timeout(format!(
                "killed after exceeding the {:.1}s cell budget{}",
                budget.as_secs_f64(),
                stderr_tail(&stderr)
            ));
        }
    };

    // Split the marker line off; forward everything before it.
    let marker = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with(CELL_MARKER))
        .map(str::to_string);
    forward_stdout(&stdout);

    match marker {
        Some(line) => {
            let payload = line[CELL_MARKER.len()..].trim_start();
            if let Some(rest) = payload.strip_prefix("ok ") {
                Attempt::Ok(rest.to_string())
            } else if let Some(rest) = payload.strip_prefix("err ") {
                Attempt::Fault(SimError::protocol(rest.to_string()))
            } else {
                Attempt::Crashed(format!("malformed cell marker: {line}"))
            }
        }
        None => Attempt::Crashed(format!(
            "cell process died without a result ({}){}",
            describe_exit(&status),
            stderr_tail(&stderr)
        )),
    }
}

/// Prints a child's non-marker stdout lines to the parent's stdout.
fn forward_stdout(stdout: &str) {
    for line in stdout.lines() {
        if !line.starts_with(CELL_MARKER) {
            println!("{line}");
        }
    }
}

/// Human description of an exit status, including signals on Unix.
fn describe_exit(status: &std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    match status.code() {
        Some(c) => format!("exit code {c}"),
        None => "unknown exit status".to_string(),
    }
}

/// The last few stderr lines, prefixed for attachment to an error.
fn stderr_tail(stderr: &str) -> String {
    const LINES: usize = 6;
    let lines: Vec<&str> = stderr.lines().collect();
    if lines.is_empty() {
        return String::new();
    }
    let tail = &lines[lines.len().saturating_sub(LINES)..];
    format!("; stderr tail: {}", tail.join(" | "))
}

// ---------------------------------------------------------------------
// Test-injection knobs (read by the cell runner, parent or child side)
// ---------------------------------------------------------------------

/// Environment knob: `HMG_CELL_CRASH=<key-substring>[@N]` makes the
/// matching cell abort while its attempt number is `<= N` (default:
/// every attempt). Drives the killed-child, quarantine, and
/// retry-heals tests plus the CI smoke job.
pub const ENV_CELL_CRASH: &str = "HMG_CELL_CRASH";

/// Environment knob: `HMG_CELL_HANG=<key-substring>` makes the
/// matching cell sleep forever — the timeout-kill test target. Only
/// meaningful under process isolation (a hung thread cannot be
/// killed).
pub const ENV_CELL_HANG: &str = "HMG_CELL_HANG";

/// Environment knob: `HMG_SNAPSHOT_KILL_AT=<key-substring>@<cycle>`
/// makes the *first* attempt of a matching snapshot-armed cell abort
/// its process — no unwinding, no destructors, a faithful SIGKILL
/// stand-in — at the first event boundary at or past `<cycle>`, after
/// any snapshot due at that boundary has been written. Later attempts
/// run unkilled, so the supervisor's retry exercises the resume path.
/// Only meaningful under process isolation (an in-process abort would
/// take the whole sweep down).
pub const ENV_SNAPSHOT_KILL: &str = "HMG_SNAPSHOT_KILL_AT";

/// Parses [`ENV_SNAPSHOT_KILL`] for `key`: the abort cycle, if the
/// knob is set and matches.
pub fn snapshot_kill_cycle(key: &str) -> Option<u64> {
    let spec = std::env::var(ENV_SNAPSHOT_KILL).ok()?;
    let (pat, cycle) = spec.rsplit_once('@')?;
    if !pat.is_empty() && key.contains(pat) {
        cycle.parse().ok()
    } else {
        None
    }
}

/// Best-effort stringification of a caught panic payload, for turning
/// an in-process (thread-isolated) panic into a `Crashed` message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
}

/// Applies the injection knobs for `key` at `attempt`; called by the
/// cell runner before simulating. Panics (killing a child process, or
/// surfacing as a caught crash in thread mode) or hangs on a match.
pub fn apply_test_knobs(key: &str, attempt: u32) {
    if let Ok(spec) = std::env::var(ENV_CELL_CRASH) {
        let (pat, upto) = match spec.split_once('@') {
            Some((p, n)) => (p.to_string(), n.parse().unwrap_or(u32::MAX)),
            None => (spec, u32::MAX),
        };
        if !pat.is_empty() && key.contains(&pat) && attempt <= upto {
            eprintln!("[test-knob] injected crash for cell {key} (attempt {attempt})");
            panic!("injected crash for cell {key} (attempt {attempt})");
        }
    }
    if let Ok(pat) = std::env::var(ENV_CELL_HANG) {
        if !pat.is_empty() && key.contains(&pat) {
            eprintln!("[test-knob] injected hang for cell {key}");
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sweep perf tally (the BENCH_sweep.json trajectory)
// ---------------------------------------------------------------------

/// Accumulated sweep-supervisor statistics since the last
/// [`take_tally`], for the perf trajectory `experiments all` emits.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BenchTally {
    /// Cells executed (reused checkpoint cells excluded).
    pub cells: u64,
    /// Sum of sweep wall-clock seconds (parallel sections only).
    pub sweep_wall_secs: f64,
    /// Simulation events completed inside supervised cells.
    pub events: u64,
    /// Supervised sweeps run.
    pub sweeps: u64,
}

impl BenchTally {
    /// Cells per second of sweep wall time.
    pub fn cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.sweep_wall_secs.max(1e-9)
    }

    /// Simulation events per second of sweep wall time.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.sweep_wall_secs.max(1e-9)
    }

    /// Renders the tally as a `BENCH_sweep.json` document.
    pub fn to_json(&self, jobs: usize, total_wall_secs: f64) -> String {
        format!(
            "{{\n  \"jobs\": {jobs},\n  \"sweeps\": {},\n  \"cells\": {},\n  \
             \"events\": {},\n  \"sweep_wall_s\": {:.3},\n  \"total_wall_s\": {:.3},\n  \
             \"cells_per_sec\": {:.3},\n  \"events_per_sec\": {:.0}\n}}\n",
            self.sweeps,
            self.cells,
            self.events,
            self.sweep_wall_secs,
            total_wall_secs,
            self.cells_per_sec(),
            self.events_per_sec(),
        )
    }
}

static TALLY: Mutex<BenchTally> = Mutex::new(BenchTally {
    cells: 0,
    sweep_wall_secs: 0.0,
    events: 0,
    sweeps: 0,
});

fn tally_sweep<R>(report: &SweepReport<R>) {
    let mut t = TALLY.lock().unwrap_or_else(|p| p.into_inner());
    t.sweeps += 1;
    t.cells += report.cells.iter().filter(|c| c.attempts > 0).count() as u64;
    t.sweep_wall_secs += report.wall_secs;
}

/// Adds simulation events completed by supervised cells (callers know
/// their outcome type; the supervisor does not).
pub fn tally_events(events: u64) {
    TALLY.lock().unwrap_or_else(|p| p.into_inner()).events += events;
}

/// Returns the accumulated tally and resets it.
pub fn take_tally() -> BenchTally {
    std::mem::take(&mut *TALLY.lock().unwrap_or_else(|p| p.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn cfg(retries: u32, keep_going: bool) -> SupervisorConfig {
        SupervisorConfig {
            jobs: 4,
            retries,
            keep_going,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn merges_in_input_order() {
        let cells: Vec<u64> = (0..64).collect();
        let r = supervise(
            &cells,
            |c| format!("cell{c}"),
            &cfg(0, true),
            |&c, _| Attempt::Ok(c * 3),
        );
        assert!(r.all_ok());
        assert_eq!(r.jobs, 4);
        for (i, c) in r.cells.iter().enumerate() {
            assert_eq!(c.key, format!("cell{i}"));
            assert_eq!(c.outcome, Some(i as u64 * 3));
            assert_eq!(c.attempts, 1);
        }
    }

    #[test]
    fn transient_crash_heals_on_retry() {
        let tries = AtomicU32::new(0);
        let cells = ["a"];
        let r = supervise(
            &cells,
            |c| c.to_string(),
            &cfg(2, false),
            |_, attempt| {
                tries.fetch_add(1, Ordering::Relaxed);
                if attempt < 3 {
                    Attempt::Crashed("boom".into())
                } else {
                    Attempt::Ok(7u32)
                }
            },
        );
        assert!(r.all_ok());
        assert_eq!(r.cells[0].attempts, 3);
        assert!(!r.cells[0].quarantined);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn persistent_crash_is_quarantined_after_the_cap() {
        let cells = ["a"];
        let r = supervise(
            &cells,
            |c| c.to_string(),
            &cfg(2, true),
            |_, _| Attempt::<u32>::Crashed("boom".into()),
        );
        let c = &r.cells[0];
        assert_eq!(c.status.name(), "crashed");
        assert_eq!(c.attempts, 3, "1 try + 2 retries");
        assert!(c.quarantined);
        assert!(c.status.error().unwrap().contains("boom"));
    }

    #[test]
    fn typed_sim_errors_are_never_retried() {
        let tries = AtomicU32::new(0);
        let cells = ["a"];
        let r = supervise(
            &cells,
            |c| c.to_string(),
            &cfg(5, true),
            |_, _| {
                tries.fetch_add(1, Ordering::Relaxed);
                Attempt::<u32>::Fault(SimError::protocol("deterministic"))
            },
        );
        assert_eq!(tries.load(Ordering::Relaxed), 1, "no retry on typed errors");
        assert_eq!(r.cells[0].status.name(), "failed");
        assert!(!r.cells[0].quarantined);
    }

    #[test]
    fn drain_and_stop_skips_unclaimed_cells() {
        // One worker, many cells, first cell fails without keep_going:
        // the remaining cells must be skipped, not run.
        let ran = AtomicU32::new(0);
        let cells: Vec<u64> = (0..16).collect();
        let mut c = cfg(0, false);
        c.jobs = 1;
        let r = supervise(
            &cells,
            |c| format!("c{c}"),
            &c,
            |&i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    Attempt::<u64>::Fault(SimError::protocol("hard failure"))
                } else {
                    Attempt::Ok(i)
                }
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 1, "only the failing cell ran");
        assert_eq!(r.cells[0].status.name(), "failed");
        assert!(r.cells[1..].iter().all(|c| c.status.name() == "skipped"));
    }

    #[test]
    fn keep_going_runs_everything_past_failures() {
        let cells: Vec<u64> = (0..8).collect();
        let r = supervise(
            &cells,
            |c| format!("c{c}"),
            &cfg(0, true),
            |&i, _| {
                if i % 2 == 0 {
                    Attempt::<u64>::Crashed("even cells crash".into())
                } else {
                    Attempt::Ok(i)
                }
            },
        );
        assert_eq!(r.count("ok"), 4);
        assert_eq!(r.count("crashed"), 4);
        assert_eq!(r.count("skipped"), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff(1), backoff(1));
        assert!(backoff(1) < backoff(2));
        assert!(backoff(40) <= Duration::from_millis(2_000));
    }

    #[test]
    fn resolved_jobs_bounds() {
        let mut c = SupervisorConfig::default();
        assert!(c.resolved_jobs(100) >= 1);
        c.jobs = 3;
        assert_eq!(c.resolved_jobs(100), 3);
        assert_eq!(c.resolved_jobs(2), 2, "bounded by the cell count");
        assert_eq!(c.resolved_jobs(0), 1);
    }

    #[test]
    fn tally_accumulates_and_resets() {
        let _ = take_tally();
        let cells = ["a", "b"];
        let _ = supervise(
            &cells,
            |c| c.to_string(),
            &cfg(0, true),
            |_, _| Attempt::Ok(1u32),
        );
        tally_events(500);
        let t = take_tally();
        assert_eq!(t.cells, 2);
        assert_eq!(t.events, 500);
        assert_eq!(t.sweeps, 1);
        assert!(t.cells_per_sec() > 0.0);
        assert_eq!(take_tally(), BenchTally::default(), "reset after take");
    }

    #[test]
    fn isolation_parses() {
        assert_eq!(Isolation::parse("process"), Some(Isolation::Process));
        assert_eq!(Isolation::parse("thread"), Some(Isolation::Thread));
        assert_eq!(Isolation::parse("vm"), None);
        assert_eq!(Isolation::Process.name(), "process");
    }

    #[test]
    fn process_attempt_classifies_a_missing_binary_as_crash() {
        let cmd = CellCommand {
            exe: PathBuf::from("/nonexistent/hmg-cell-binary"),
            args: vec![],
        };
        match process_attempt(&cmd, None) {
            Attempt::Crashed(m) => assert!(m.contains("spawn"), "{m}"),
            other => panic!("expected crash, got {other:?}"),
        }
    }
}
