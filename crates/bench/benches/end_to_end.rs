//! Criterion end-to-end benchmarks: whole simulations of a small
//! workload under each coherence configuration. Tracks simulator
//! throughput regressions across the protocol implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hmg::prelude::*;
use hmg::workloads::suite::by_abbrev;

fn bench_protocols(c: &mut Criterion) {
    let spec = by_abbrev("bfs").expect("bfs");
    let trace = spec.generate(Scale::Tiny, 2020);
    let mut group = c.benchmark_group("simulate-bfs-tiny");
    group.sample_size(20);
    for p in ProtocolKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| {
                let m = Engine::new(EngineConfig::small_test(p)).run(black_box(&trace));
                black_box(m.total_cycles)
            })
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate-trace-tiny");
    group.sample_size(20);
    for name in ["bfs", "lstm", "CoMD", "cuSolver"] {
        let spec = by_abbrev(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(spec.generate(Scale::Tiny, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_trace_generation);
criterion_main!(benches);
