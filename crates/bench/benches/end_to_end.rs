//! End-to-end benchmarks: whole simulations of a small workload under
//! each coherence configuration. Tracks simulator throughput
//! regressions across the protocol implementations.
//!
//! Plain `std::time` harness (`harness = false`): the workspace builds
//! offline, so there is no external benchmark framework. Run with
//! `cargo bench --bench end_to_end`.

use std::hint::black_box;
use std::time::Instant;

use hmg::prelude::*;
use hmg::workloads::suite::by_abbrev;

/// Times `f` over `samples` iterations and prints mean per iteration.
fn bench<R>(name: &str, samples: u64, mut f: impl FnMut() -> R) {
    black_box(f()); // warmup
    let start = Instant::now();
    for _ in 0..samples {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / samples as f64;
    println!(
        "{name:<40} {:>12.3} ms/iter  ({samples} iters)",
        per_iter * 1e3
    );
}

fn bench_protocols() {
    let spec = by_abbrev("bfs").expect("bfs");
    let trace = spec.generate(Scale::Tiny, 2020);
    for p in ProtocolKind::ALL {
        bench(&format!("simulate-bfs-tiny/{}", p.name()), 20, || {
            let m = Engine::new(EngineConfig::small_test(p)).run(black_box(&trace));
            m.total_cycles
        });
    }
}

fn bench_trace_generation() {
    for name in ["bfs", "lstm", "CoMD", "cuSolver"] {
        let spec = by_abbrev(name).unwrap();
        bench(&format!("generate-trace-tiny/{name}"), 20, || {
            spec.generate(Scale::Tiny, 7)
        });
    }
}

fn main() {
    bench_protocols();
    bench_trace_generation();
}
