//! The figure-regeneration harness: `cargo bench --bench figures`
//! re-runs every table and figure of the paper's evaluation and prints
//! the measured values next to the paper's.
//!
//! By default the full Table III suite runs at `Small` scale for the
//! headline figures and a representative six-workload subset for the
//! three sensitivity sweeps (which multiply the run count by 3-4x).
//! Control with environment variables:
//!
//! * `HMG_FIGURES_SCALE=tiny|small|full` — experiment scale.
//! * `HMG_FIGURES_FULL=1` — run the sweeps over the whole suite too.

use hmg::experiments as exp;
use hmg::workloads::Scale;

fn main() {
    // Respect `cargo bench -- --test` style smoke invocations.
    let scale = match std::env::var("HMG_FIGURES_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    };
    let full_sweeps = std::env::var_os("HMG_FIGURES_FULL").is_some();
    let opts = exp::ExpOptions {
        scale,
        seed: 2020,
        filter: None,
        ..exp::ExpOptions::default()
    };
    // Sweeps cost 3-4x a full-suite pass each; default to a subset that
    // spans the archetypes (stencil, solver, graph, wavefront, RNN, conv).
    let sweep_opts = if full_sweeps {
        opts.clone()
    } else {
        exp::ExpOptions {
            filter: Some(
                ["CoMD", "cuSolver", "bfs", "nw-16K", "RNN_FW", "GoogLeNet"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            ..opts.clone()
        }
    };

    let t0 = std::time::Instant::now();
    println!("# HMG figure regeneration (scale {scale:?})\n");

    exp::print_table3(&opts);

    let f8 = exp::fig8(&opts).expect("fig8");
    f8.print("Fig. 8: five coherence configurations on the 4-GPU machine");
    let (vs_sw, vs_nhcc, of_ideal) = exp::headline(&f8);
    println!(
        "headline (measured): HMG vs SW {:+.0}%, vs NHCC {:+.0}%, {:.0}% of ideal",
        vs_sw * 100.0,
        vs_nhcc * 100.0,
        of_ideal * 100.0
    );
    println!("headline (paper):    HMG vs SW +26%, vs NHCC +18%, 97% of ideal\n");

    exp::fig2(&opts)
        .expect("fig2")
        .print("Fig. 2: motivating subset");
    exp::fig3(&opts).print();
    exp::fig7().print();
    println!("paper Fig. 7: r = 0.99, mean abs err = 0.13\n");
    exp::fig9_10_11(&opts).print();
    exp::fig12(&sweep_opts)
        .expect("fig12")
        .print("Fig. 12: inter-GPU bandwidth sweep");
    exp::fig13(&sweep_opts)
        .expect("fig13")
        .print("Fig. 13: L2 capacity sweep");
    exp::fig14(&sweep_opts)
        .expect("fig14")
        .print("Fig. 14: directory capacity sweep");
    exp::grain_sweep(&sweep_opts)
        .expect("grain sweep")
        .print("§VII-B: directory granularity sweep");
    exp::print_storage_cost();
    exp::ablate_fences(&sweep_opts)
        .expect("fence ablation")
        .print();
    exp::ablate_placement(&sweep_opts)
        .expect("placement ablation")
        .print();
    exp::ablate_writeback(&sweep_opts)
        .expect("writeback ablation")
        .print();
    exp::ablate_downgrades(&sweep_opts)
        .expect("downgrade ablation")
        .print();
    exp::carve_comparison(&sweep_opts)
        .expect("carve comparison")
        .print("Prior work: CARVE-like broadcast coherence vs NHCC/HMG");

    println!(
        "\n[figures regenerated in {:.0}s]",
        t0.elapsed().as_secs_f64()
    );
}
