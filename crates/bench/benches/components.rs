//! Criterion microbenchmarks of the simulator's hot components: the
//! event queue, the set-associative cache, the coherence directory, the
//! Table I FSM, the link model, and the PRNG. These track the simulator's
//! own performance (the Fig. 7 "simulation runtime" axis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hmg::interconnect::{Link, Topology};
use hmg::mem::addr::{BlockAddr, LineAddr};
use hmg::mem::{Cache, CacheConfig, Directory, DirectoryConfig, Sharer};
use hmg::protocol::{transition, DirEvent, DirState};
use hmg::sim::{Cycle, EventQueue, Rng};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue push+pop 1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Cycle(i * 3 % 997), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l2_cache insert+get 4k lines", |b| {
        let cfg = CacheConfig::new(24_576, 16); // a 3 MB slice
        b.iter(|| {
            let mut cache: Cache<u64> = Cache::new(cfg);
            for i in 0..4096u64 {
                cache.insert(LineAddr(i * 7), i);
            }
            let mut hits = 0;
            for i in 0..4096u64 {
                if cache.get(LineAddr(i * 7)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    let topo = Topology::new(4, 4);
    c.bench_function("directory allocate+insert 4k blocks", |b| {
        b.iter(|| {
            let mut dir = Directory::new(DirectoryConfig::paper_default(), topo);
            for i in 0..4096u64 {
                let (set, _evicted) = dir.allocate(BlockAddr(i * 13));
                set.insert(&topo, Sharer::Gpm(hmg::interconnect::GpmId((i % 16) as u16)));
            }
            black_box(dir.len())
        })
    });
}

fn bench_fsm(c: &mut Criterion) {
    c.bench_function("table1 transition x1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1000u32 {
                let ev = match i % 4 {
                    0 => DirEvent::LocalLoad,
                    1 => DirEvent::RemoteLoad,
                    2 => DirEvent::RemoteStore,
                    _ => DirEvent::LocalStore,
                };
                let o = transition(black_box(DirState::Valid), ev, true);
                acc += o.add_sharer as u32;
            }
            black_box(acc)
        })
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link send x1k", |b| {
        b.iter(|| {
            let mut l = Link::new(153.8, Cycle(135));
            let mut last = Cycle::ZERO;
            for i in 0..1000u64 {
                last = l.send(Cycle(i), 144);
            }
            black_box(last)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("splitmix64 zipf x1k", |b| {
        b.iter(|| {
            let mut r = Rng::new(42);
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.gen_zipf(100_000, 0.9));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache,
    bench_directory,
    bench_fsm,
    bench_link,
    bench_rng
);
criterion_main!(benches);
