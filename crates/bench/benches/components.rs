//! Microbenchmarks of the simulator's hot components: the event queue,
//! the set-associative cache, the coherence directory, the Table I FSM,
//! the link model, and the PRNG. These track the simulator's own
//! performance (the Fig. 7 "simulation runtime" axis).
//!
//! Plain `std::time` harness (`harness = false`): the workspace builds
//! offline, so there is no external benchmark framework. Run with
//! `cargo bench --bench components`.

use std::hint::black_box;
use std::time::Instant;

use hmg::interconnect::{Link, Topology};
use hmg::mem::addr::{BlockAddr, LineAddr};
use hmg::mem::{Cache, CacheConfig, Directory, DirectoryConfig, Sharer};
use hmg::protocol::{transition, DirEvent, DirState};
use hmg::sim::{Cycle, EventQueue, Rng};

/// Times `f` over enough iterations to fill ~0.2 s after warmup and
/// prints mean time per iteration.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warmup + calibration.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 50 {
        black_box(f());
        calib_iters += 1;
    }
    let iters = (calib_iters * 4).max(10);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<40} {:>12.3} us/iter  ({iters} iters)",
        per_iter * 1e6
    );
}

fn bench_event_queue() {
    bench("event_queue push+pop 1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(Cycle(i * 3 % 997), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_cache() {
    let cfg = CacheConfig::new(24_576, 16); // a 3 MB slice
    bench("l2_cache insert+get 4k lines", || {
        let mut cache: Cache<u64> = Cache::new(cfg);
        for i in 0..4096u64 {
            cache.insert(LineAddr(i * 7), i);
        }
        let mut hits = 0;
        for i in 0..4096u64 {
            if cache.get(LineAddr(i * 7)).is_some() {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_directory() {
    let topo = Topology::new(4, 4);
    bench("directory allocate+insert 4k blocks", || {
        let mut dir = Directory::new(DirectoryConfig::paper_default(), topo);
        for i in 0..4096u64 {
            let (set, _evicted) = dir.allocate(BlockAddr(i * 13));
            set.insert(
                &topo,
                Sharer::Gpm(hmg::interconnect::GpmId((i % 16) as u16)),
            );
        }
        dir.len()
    });
}

fn bench_fsm() {
    bench("table1 transition x1k", || {
        let mut acc = 0u32;
        for i in 0..1000u32 {
            let ev = match i % 4 {
                0 => DirEvent::LocalLoad,
                1 => DirEvent::RemoteLoad,
                2 => DirEvent::RemoteStore,
                _ => DirEvent::LocalStore,
            };
            let o = transition(black_box(DirState::Valid), ev, true);
            acc += o.add_sharer as u32;
        }
        acc
    });
}

fn bench_link() {
    bench("link send x1k", || {
        let mut l = Link::new(153.8, Cycle(135));
        let mut last = Cycle::ZERO;
        for i in 0..1000u64 {
            last = l.send(Cycle(i), 144);
        }
        last
    });
}

fn bench_rng() {
    bench("splitmix64 zipf x1k", || {
        let mut r = Rng::new(42);
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = acc.wrapping_add(r.gen_zipf(100_000, 0.9));
        }
        acc
    });
}

fn main() {
    bench_event_queue();
    bench_cache();
    bench_directory();
    bench_fsm();
    bench_link();
    bench_rng();
}
