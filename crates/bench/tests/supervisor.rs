//! End-to-end supervisor tests against the real `experiments` binary:
//! crash isolation, timeout-kill, quarantine, exit-code semantics, and
//! `--resume` digest equality — the ISSUE acceptance criterion.
//!
//! The crashing and hanging cells are injected with the documented env
//! knobs (`HMG_CELL_CRASH` / `HMG_CELL_HANG`), scoped to each spawned
//! child so concurrently running tests never see them.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hmg-supervisor-{}-{name}", std::process::id()))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The checksummed `ok` rows of a checkpoint file, order-insensitive.
/// Each row embeds the cell key, its cycle count, and its
/// `state_digest`, so set equality *is* result equality.
fn ok_rows(path: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(path)
        .expect("checkpoint file readable")
        .lines()
        .filter(|l| l.contains("\tok\t"))
        .map(str::to_string)
        .collect()
}

/// A two-workload fig8 sweep (12 cells) under full process isolation.
fn sweep(ckpt: &Path, resume: bool, knobs: bool) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "fig8",
        "--scale",
        "tiny",
        "--seed",
        "4",
        "--workloads",
        "bfs,lstm",
        "--keep-going",
        "--jobs",
        "4",
        "--retries",
        "1",
        "--cell-timeout",
        "5",
        "--checkpoint",
    ])
    .arg(ckpt);
    if resume {
        cmd.arg("--resume");
    }
    if knobs {
        // lstm/hmg crashes on every attempt; bfs/ideal hangs until the
        // supervisor's timeout kills it.
        cmd.env("HMG_CELL_CRASH", "lstm/hmg");
        cmd.env("HMG_CELL_HANG", "bfs/ideal");
    } else {
        cmd.env_remove("HMG_CELL_CRASH");
        cmd.env_remove("HMG_CELL_HANG");
    }
    cmd.output().expect("experiments binary runs")
}

/// ISSUE acceptance criterion: a sweep containing one crashing cell and
/// one hung cell completes on all remaining cells and reports both;
/// `--resume` re-runs only the two bad cells and reproduces
/// `state_digest`-identical results for the rest.
#[test]
fn crashed_and_hung_cells_are_reported_then_resume_heals() {
    let ckpt = tmp("accept.ckpt");
    let fresh = tmp("accept-fresh.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&fresh);

    // Faulty sweep: 10 of 12 cells complete, the bad two are retried,
    // quarantined, and named in the failure table; --keep-going keeps
    // the exit code green.
    let faulty = sweep(&ckpt, false, true);
    let (out, err) = (stdout(&faulty), stderr(&faulty));
    assert!(
        faulty.status.success(),
        "--keep-going must exit 0:\n{out}\n{err}"
    );
    assert!(
        out.contains("crashed=1") && out.contains("timeout=1") && out.contains("quarantined=2"),
        "summary must count the crash and the timeout:\n{out}"
    );
    assert!(
        out.contains("cell crashed:"),
        "failure table must name the crashed cell:\n{out}"
    );
    assert!(
        out.contains("cell timed out:"),
        "failure table must name the hung cell:\n{out}"
    );
    assert_eq!(ok_rows(&ckpt).len(), 10, "the other 10 cells completed");

    // Resume without the knobs: only the two bad cells re-run.
    let healed = sweep(&ckpt, true, false);
    let out = stdout(&healed);
    assert!(healed.status.success(), "healed resume exits 0:\n{out}");
    assert!(
        out.contains("reused=10"),
        "resume must reuse the 10 completed cells:\n{out}"
    );
    assert!(
        out.contains("crashed=0") && out.contains("timeout=0"),
        "no failures remain after the knobs are lifted:\n{out}"
    );

    // An uninterrupted sweep must produce the identical checkpoint
    // rows: same keys, same cycles, same state digests.
    let uninterrupted = sweep(&fresh, false, false);
    assert!(uninterrupted.status.success());
    assert_eq!(
        ok_rows(&ckpt),
        ok_rows(&fresh),
        "resumed results must be state_digest-identical to an uninterrupted run"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&fresh);
}

/// A corruption sweep (soft-error flip faults armed through the same
/// `--faults` plumbing, serialized to worker processes via `to_spec`)
/// behaves like any other faulty sweep: a crash-interrupted run resumes
/// to checkpoint rows identical to an uninterrupted one, and no cell
/// reports silent corruption.
#[test]
fn corruption_sweeps_resume_digest_identical() {
    let flips = "flip-msg=0.02,flip-line=0.4,flip-dir=0.4,seed=9";
    let run = |ckpt: &Path, resume: bool, crash: bool| {
        let mut cmd = Command::new(BIN);
        cmd.args([
            "fig8",
            "--scale",
            "tiny",
            "--seed",
            "4",
            "--workloads",
            "bfs,lstm",
            "--keep-going",
            "--jobs",
            "4",
            "--faults",
            flips,
            "--checkpoint",
        ])
        .arg(ckpt);
        if resume {
            cmd.arg("--resume");
        }
        if crash {
            cmd.env("HMG_CELL_CRASH", "lstm/hmg");
        } else {
            cmd.env_remove("HMG_CELL_CRASH");
        }
        cmd.env_remove("HMG_CELL_HANG");
        cmd.output().expect("experiments binary runs")
    };

    let ckpt = tmp("flips.ckpt");
    let fresh = tmp("flips-fresh.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&fresh);

    let interrupted = run(&ckpt, false, true);
    let out = stdout(&interrupted);
    assert!(interrupted.status.success(), "--keep-going exits 0:\n{out}");
    assert_eq!(ok_rows(&ckpt).len(), 11, "11 of 12 cells completed");

    let healed = run(&ckpt, true, false);
    let out = stdout(&healed);
    assert!(healed.status.success(), "healed resume exits 0:\n{out}");
    assert!(
        out.contains("reused=11"),
        "resume must reuse the completed cells:\n{out}"
    );

    let uninterrupted = run(&fresh, false, false);
    let out = stdout(&uninterrupted);
    assert!(uninterrupted.status.success(), "{out}");
    assert_eq!(
        ok_rows(&ckpt),
        ok_rows(&fresh),
        "resumed corruption sweep must match an uninterrupted one"
    );
    assert!(
        !out.contains("silently"),
        "no cell may report silent corruption:\n{out}"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&fresh);
}

#[test]
fn hard_failure_without_keep_going_exits_nonzero() {
    let out = Command::new(BIN)
        .args([
            "fig8",
            "--scale",
            "tiny",
            "--seed",
            "4",
            "--workloads",
            "bfs",
            "--jobs",
            "2",
            "--retries",
            "0",
        ])
        .env("HMG_CELL_CRASH", "bfs/hmg")
        .env_remove("HMG_CELL_HANG")
        .output()
        .expect("experiments binary runs");
    assert!(
        !out.status.success(),
        "a quarantined cell without --keep-going must fail the run"
    );
    assert!(
        stderr(&out).contains("[sweep failed]"),
        "the hard failure is reported:\n{}",
        stderr(&out)
    );
}

#[test]
fn thread_isolation_shares_the_cli_surface() {
    let out = Command::new(BIN)
        .args([
            "fig8",
            "--scale",
            "tiny",
            "--seed",
            "4",
            "--workloads",
            "lstm",
            "--isolation",
            "thread",
            "--jobs",
            "2",
        ])
        .env_remove("HMG_CELL_CRASH")
        .env_remove("HMG_CELL_HANG")
        .output()
        .expect("experiments binary runs");
    let text = stdout(&out);
    assert!(out.status.success(), "{text}\n{}", stderr(&out));
    assert!(
        text.contains("[sweep]") && text.contains("jobs=2"),
        "the supervisor summary reports the in-process pool:\n{text}"
    );
}

/// The hidden worker mode runs one cell and reports the outcome marker
/// (success on stdout; parse errors with the dedicated fault exit).
#[test]
fn run_cell_mode_emits_the_outcome_marker() {
    let out = Command::new(BIN)
        .args([
            "__run-cell",
            "--key",
            "smoke/hmg",
            "--workload",
            "bfs",
            "--protocol",
            "hmg",
            "--scale",
            "tiny",
            "--seed",
            "4",
        ])
        .env_remove("HMG_CELL_CRASH")
        .env_remove("HMG_CELL_HANG")
        .output()
        .expect("experiments binary runs");
    let text = stdout(&out);
    assert!(out.status.success(), "{text}\n{}", stderr(&out));
    assert!(
        text.lines()
            .last()
            .unwrap_or("")
            .starts_with("__hmg_cell_v1 ok cycles="),
        "the cell marker is the last stdout line:\n{text}"
    );

    let bad = Command::new(BIN)
        .args(["__run-cell", "--workload", "no-such-workload"])
        .output()
        .expect("experiments binary runs");
    assert_eq!(
        bad.status.code(),
        Some(2),
        "a faulted cell exits with CELL_FAULT_EXIT"
    );
    assert!(
        stdout(&bad).contains("__hmg_cell_v1 err"),
        "the error marker is reported:\n{}",
        stdout(&bad)
    );
}
