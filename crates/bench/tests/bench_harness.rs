//! Smoke tests for `experiments bench` against the real binary: the
//! quick matrix must complete, write a schema-versioned
//! `BENCH_hotpath.json`, report positive throughput, and reproduce
//! byte-identical stable fields on a same-seed rerun (only the timing
//! fields may differ between runs).

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hmg-bench-smoke-{}-{name}", std::process::id()))
}

/// Runs `bench --quick` at tiny scale, writing the report to `out`.
fn quick_bench(out: &PathBuf) -> Output {
    Command::new(BIN)
        .args([
            "bench", "--quick", "--scale", "tiny", "--seed", "9", "--out",
        ])
        .arg(out)
        .output()
        .expect("experiments binary runs")
}

/// The wall-clock-dependent report fields; everything else in the JSON
/// must be bit-for-bit reproducible across same-seed reruns.
const TIMING_FIELDS: &[&str] = &[
    "\"wall_s\"",
    "\"events_per_sec\"",
    "\"cycles_per_sec\"",
    "\"peak_rss_kb\"",
    "\"total_wall_s\"",
    "\"total_events_per_sec\"",
    "\"off_wall_s\"",
    "\"on_wall_s\"",
    "\"off_events_per_sec\"",
    "\"on_events_per_sec\"",
    "\"overhead_pct\"",
];

/// Strips the timing lines, keeping only the deterministic fields.
fn stable_lines(json: &str) -> Vec<String> {
    json.lines()
        .filter(|l| {
            let key = l.trim_start();
            !TIMING_FIELDS.iter().any(|f| key.starts_with(f))
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn quick_bench_writes_a_schema_versioned_report() {
    let out = tmp("schema.json");
    let run = quick_bench(&out);
    assert!(
        run.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let json = std::fs::read_to_string(&out).expect("report written");
    std::fs::remove_file(&out).ok();

    // Schema-versioned, and every per-cell field present.
    assert!(
        json.contains("\"schema\": \"hmg-bench-hotpath-v1\""),
        "{json}"
    );
    for field in [
        "\"workload\"",
        "\"protocol\"",
        "\"events\"",
        "\"cycles\"",
        "\"digest\"",
        "\"wall_s\"",
        "\"events_per_sec\"",
        "\"total_events_per_sec\"",
        "\"peak_rss_kb\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }

    // Throughput must be a positive number — scraped the same way the
    // regression gate scrapes a checked-in baseline.
    let eps = hmg::bench::parse_total_events_per_sec(&json)
        .expect("total_events_per_sec parses back out of the report");
    assert!(eps > 0.0, "non-positive throughput: {eps}");

    // The quick matrix: 2 workloads x 4 protocols, plus the snapshot
    // overhead block's own workload field.
    assert_eq!(json.matches("\"workload\"").count(), 9, "{json}");
    // The console summary advertises where the report went.
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
}

#[test]
fn same_seed_reruns_are_identical_modulo_timing() {
    let out_a = tmp("rerun-a.json");
    let out_b = tmp("rerun-b.json");
    assert!(quick_bench(&out_a).status.success());
    assert!(quick_bench(&out_b).status.success());

    let a = std::fs::read_to_string(&out_a).expect("first report");
    let b = std::fs::read_to_string(&out_b).expect("second report");
    std::fs::remove_file(&out_a).ok();
    std::fs::remove_file(&out_b).ok();

    // Events, cycles, and state digests are simulation outputs and must
    // not wobble run-to-run; only wall-clock-derived lines may differ.
    assert_eq!(
        stable_lines(&a),
        stable_lines(&b),
        "stable report fields changed across same-seed reruns"
    );
}

#[test]
fn baseline_gate_accepts_own_report_and_rejects_fast_baselines() {
    let out = tmp("gate.json");
    assert!(quick_bench(&out).status.success());

    // A report gated against itself always passes (0% regression).
    let same = Command::new(BIN)
        .args([
            "bench", "--quick", "--scale", "tiny", "--seed", "9", "--out",
        ])
        .arg(tmp("gate-rerun.json"))
        .arg("--baseline")
        .arg(&out)
        .output()
        .expect("experiments binary runs");
    assert!(
        same.status.success(),
        "self-baseline gate failed: {}",
        String::from_utf8_lossy(&same.stderr)
    );
    std::fs::remove_file(tmp("gate-rerun.json")).ok();

    // An impossibly fast baseline must trip the regression gate.
    let fast = tmp("gate-fast.json");
    std::fs::write(&fast, "{\n  \"total_events_per_sec\": 1e15\n}\n").unwrap();
    let tripped = Command::new(BIN)
        .args([
            "bench", "--quick", "--scale", "tiny", "--seed", "9", "--out",
        ])
        .arg(tmp("gate-tripped.json"))
        .arg("--baseline")
        .arg(&fast)
        .output()
        .expect("experiments binary runs");
    assert!(
        !tripped.status.success(),
        "gate accepted a 1e15 events/sec baseline"
    );
    let err = String::from_utf8_lossy(&tripped.stderr);
    assert!(err.contains("regressed"), "{err}");

    std::fs::remove_file(&out).ok();
    std::fs::remove_file(&fast).ok();
    std::fs::remove_file(tmp("gate-tripped.json")).ok();
}
