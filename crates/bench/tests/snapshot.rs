//! End-to-end preemptible-cell tests against the real `experiments`
//! binary: a cell killed mid-run (process abort, no unwinding) is
//! retried by the supervisor and resumes from its latest snapshot,
//! producing `state_digest`-identical results to an uninterrupted
//! sweep; corrupted snapshots are refused loudly and the cell still
//! completes from scratch.
//!
//! The mid-run kill is injected with the documented
//! `HMG_SNAPSHOT_KILL_AT` env knob (first attempt only — the retry
//! must survive), scoped to each spawned child so concurrently running
//! tests never see it.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

/// Interval chosen so a tiny bfs cell (~6k cycles) captures several
/// snapshots before the kill point.
const INTERVAL: &str = "500";

/// Mid-interval kill point: between the captures at ~1500 and ~2000,
/// so the resumed attempt must re-execute a partial interval exactly.
const KILL: &str = "bfs/hmg@1750";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hmg-snaptest-{}-{name}", std::process::id()))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The checksummed `ok` rows of a checkpoint file, order-insensitive.
/// Each row embeds the cell key, its cycle count, and its
/// `state_digest`, so set equality *is* result equality.
fn ok_rows(path: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(path)
        .expect("checkpoint file readable")
        .lines()
        .filter(|l| l.contains("\tok\t"))
        .map(str::to_string)
        .collect()
}

/// A one-workload fig8 sweep under process isolation, optionally with
/// snapshotting and the mid-run kill knob, optionally under the
/// flip-line + link-down fault plan.
fn sweep(ckpt: &Path, snapdir: Option<&Path>, kill: bool, faults: bool) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "fig8",
        "--scale",
        "tiny",
        "--seed",
        "4",
        "--workloads",
        "bfs",
        "--keep-going",
        "--jobs",
        "2",
        "--retries",
        "1",
        "--isolation",
        "process",
        "--checkpoint",
    ])
    .arg(ckpt);
    if let Some(d) = snapdir {
        cmd.arg("--snapshot-dir").arg(d);
        cmd.args(["--snapshot-interval", INTERVAL]);
    }
    if faults {
        cmd.args(["--faults", "flip-line=0.4,link-down=0-1@400,seed=9"]);
    }
    if kill {
        cmd.env("HMG_SNAPSHOT_KILL_AT", KILL);
    } else {
        cmd.env_remove("HMG_SNAPSHOT_KILL_AT");
    }
    cmd.env_remove("HMG_CELL_CRASH");
    cmd.env_remove("HMG_CELL_HANG");
    cmd.output().expect("experiments binary runs")
}

/// The ISSUE acceptance criterion, end to end: kill a cell's process
/// mid-run, let the supervisor retry it, and prove the resumed sweep
/// is `state_digest`-identical to an uninterrupted one — with and
/// without an active fault plan.
#[test]
fn killed_cell_resumes_mid_run_digest_identical() {
    for faults in [false, true] {
        let tag = if faults { "faulty" } else { "clean" };
        let killed = tmp(&format!("kill-{tag}.ckpt"));
        let fresh = tmp(&format!("fresh-{tag}.ckpt"));
        let snapdir = tmp(&format!("snaps-{tag}"));
        let _ = std::fs::remove_file(&killed);
        let _ = std::fs::remove_file(&fresh);
        let _ = std::fs::remove_dir_all(&snapdir);

        let interrupted = sweep(&killed, Some(&snapdir), true, faults);
        let (out, err) = (stdout(&interrupted), stderr(&interrupted));
        assert!(
            interrupted.status.success(),
            "{tag}: killed sweep exits 0 after retry:\n{out}\n{err}"
        );
        assert!(
            out.contains("resumed from cycle"),
            "{tag}: the retried cell must resume mid-run:\n{out}"
        );
        assert!(
            out.contains("[snapshot] resumed_cells=1"),
            "{tag}: the summary must count the resumed cell:\n{out}"
        );

        let uninterrupted = sweep(&fresh, None, false, faults);
        assert!(uninterrupted.status.success(), "{}", stdout(&uninterrupted));
        let rows = ok_rows(&killed);
        assert!(!rows.is_empty(), "{tag}: cells completed");
        assert_eq!(
            rows,
            ok_rows(&fresh),
            "{tag}: a killed-and-resumed sweep must be state_digest-identical \
             to an uninterrupted one"
        );

        let _ = std::fs::remove_file(&killed);
        let _ = std::fs::remove_file(&fresh);
        let _ = std::fs::remove_dir_all(&snapdir);
    }
}

/// Runs one `__run-cell` child with a snapshot store and returns its
/// full stdout (the marker line is last).
fn run_cell(snap: &Path) -> Output {
    Command::new(BIN)
        .args([
            "__run-cell",
            "--key",
            "snapsmoke/hmg",
            "--workload",
            "bfs",
            "--protocol",
            "hmg",
            "--scale",
            "tiny",
            "--seed",
            "4",
            "--snapshot-interval",
            INTERVAL,
            "--snapshot-path",
        ])
        .arg(snap)
        .env_remove("HMG_SNAPSHOT_KILL_AT")
        .env_remove("HMG_CELL_CRASH")
        .env_remove("HMG_CELL_HANG")
        .output()
        .expect("experiments binary runs")
}

fn digest_of(out: &Output) -> String {
    stdout(out)
        .lines()
        .last()
        .and_then(|l| l.split_whitespace().find(|t| t.starts_with("digest=")))
        .expect("marker line carries a digest")
        .to_string()
}

/// Seeded corruption: flipping a byte in every snapshot slot makes the
/// next run refuse them with a typed, printed reason — and still
/// complete from scratch with the identical digest. No silent
/// acceptance, no crash.
#[test]
fn corrupted_snapshots_are_refused_loudly_and_cell_completes() {
    let dir = tmp("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cell.snap");

    let first = run_cell(&snap);
    let out = stdout(&first);
    assert!(first.status.success(), "{out}\n{}", stderr(&first));
    assert!(
        !out.contains("resumed"),
        "first run is a cold start:\n{out}"
    );

    // Flip one byte in the middle of every slot the run left behind.
    let mut flipped = 0;
    for suffix in ["a", "b"] {
        let slot = dir.join(format!("cell.snap.{suffix}"));
        if let Ok(mut bytes) = std::fs::read(&slot) {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&slot, &bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0, "the run must have written snapshots");

    let second = run_cell(&snap);
    let out = stdout(&second);
    assert!(second.status.success(), "{out}\n{}", stderr(&second));
    assert!(
        out.contains("[snapshot]") && out.contains("refused"),
        "every corrupt slot must be refused loudly:\n{out}"
    );
    assert!(
        !out.contains("resumed"),
        "a corrupt store must fall back to scratch:\n{out}"
    );
    assert_eq!(
        digest_of(&first),
        digest_of(&second),
        "the fallback run must reproduce the cold-start digest"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
