//! Benchmark harness crate: the `experiments` binary regenerates every
//! table and figure of the paper (see `src/bin/experiments.rs`), and the
//! Criterion benches under `benches/` track component and end-to-end
//! simulator performance. All experiment logic lives in the `hmg` facade
//! crate; this crate only wires it to the command line.

pub mod cli;

pub use cli::{parse_args, Command, ParsedArgs};
