//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments fig8 --scale small
//! experiments all --scale small --jobs 8
//! experiments fig12 --workloads bfs,lstm --scale tiny
//! ```
//!
//! The binary doubles as its own sweep worker: the hidden
//! `__run-cell` mode (spawned by the supervisor under
//! `--isolation process`) executes exactly one sweep cell and reports
//! the outcome on stdout.

use std::process::ExitCode;

use hmg::experiments as exp;
use hmg::prelude::{ProtocolKind, SimError};
use hmg::protocol::Arbitration;
use hmg_bench::{parse_args, Command, ParsedArgs};

/// Writes `svg` into `dir/name.svg` when SVG output was requested.
fn save_svg(dir: &Option<String>, name: &str, svg: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/{name}.svg");
    match std::fs::write(&path, svg) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Unwraps a sweep result, reporting a hard failure to stderr.
fn or_report<T>(r: Result<T, SimError>) -> Option<T> {
    match r {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("[sweep failed] {e}");
            None
        }
    }
}

/// Runs one command; `false` means the command itself failed (a sweep
/// stopped on a hard failure, `check` found a memory-model violation,
/// or `audit` found a static one).
fn run(cmd: Command, p: &ParsedArgs) -> bool {
    let (opts, svg, budget) = (&p.options, &p.svg_dir, p.budget);
    match cmd {
        Command::Table3 => exp::print_table3(opts),
        Command::Fig2 => {
            let Some(r) = or_report(exp::fig2(opts)) else {
                return false;
            };
            r.print("Fig. 2: motivating multi-GPU comparison");
            save_svg(
                svg,
                "fig2",
                &r.to_svg("Fig. 2: motivating multi-GPU comparison"),
            );
        }
        Command::Fig3 => {
            let r = exp::fig3(opts);
            r.print();
            save_svg(svg, "fig3", &r.to_svg());
        }
        Command::Fig7 => {
            let r = exp::fig7();
            r.print();
            save_svg(svg, "fig7", &r.to_svg());
        }
        Command::Fig8 => {
            let Some(r) = or_report(exp::fig8(opts)) else {
                return false;
            };
            r.print("Fig. 8: 4-GPU x 4-GPM, five coherence configurations");
            let (vs_sw, vs_nhcc, of_ideal) = exp::headline(&r);
            println!(
                "headline: HMG vs SW-coherence {:+.0}%, vs NHCC {:+.0}%, {:.0}% of ideal",
                vs_sw * 100.0,
                vs_nhcc * 100.0,
                of_ideal * 100.0
            );
            println!("paper:    HMG vs SW-coherence +26%, vs NHCC +18%, 97% of ideal\n");
            save_svg(
                svg,
                "fig8",
                &r.to_svg("Fig. 8: five coherence configurations"),
            );
        }
        Command::Fig9To11 => {
            let r = exp::fig9_10_11(opts);
            r.print();
            let [f9, f10, f11] = r.to_svgs();
            save_svg(svg, "fig9", &f9);
            save_svg(svg, "fig10", &f10);
            save_svg(svg, "fig11", &f11);
        }
        Command::Fig12 => {
            let Some(r) = or_report(exp::fig12(opts)) else {
                return false;
            };
            r.print("Fig. 12: inter-GPU bandwidth sensitivity");
            save_svg(
                svg,
                "fig12",
                &r.to_svg("Fig. 12: inter-GPU bandwidth sensitivity"),
            );
        }
        Command::Fig13 => {
            let Some(r) = or_report(exp::fig13(opts)) else {
                return false;
            };
            r.print("Fig. 13: L2 capacity sensitivity");
            save_svg(svg, "fig13", &r.to_svg("Fig. 13: L2 capacity sensitivity"));
        }
        Command::Fig14 => {
            let Some(r) = or_report(exp::fig14(opts)) else {
                return false;
            };
            r.print("Fig. 14: directory capacity sensitivity");
            save_svg(
                svg,
                "fig14",
                &r.to_svg("Fig. 14: directory capacity sensitivity"),
            );
        }
        Command::Grain => {
            let Some(r) = or_report(exp::grain_sweep(opts)) else {
                return false;
            };
            r.print("§VII-B: directory granularity sweep");
            save_svg(svg, "grain", &r.to_svg("Directory granularity sweep"));
        }
        Command::Cost => exp::print_storage_cost(),
        Command::SingleGpu => {
            let Some(r) = or_report(exp::single_gpu(opts)) else {
                return false;
            };
            r.print("§VII-A: single-GPU (1x4 GPM) check");
        }
        Command::Carve => {
            let Some(r) = or_report(exp::carve_comparison(opts)) else {
                return false;
            };
            r.print("Prior work: CARVE-like broadcast coherence vs NHCC/HMG");
            save_svg(
                svg,
                "carve",
                &r.to_svg("CARVE-like broadcast coherence vs NHCC/HMG"),
            );
        }
        Command::Characterize => {
            let list = opts
                .filter
                .clone()
                .unwrap_or_else(|| vec!["bfs".into(), "RNN_FW".into()]);
            for w in list {
                match exp::characterize(opts, &w) {
                    Some(rows) => exp::print_characterization(&w, &rows),
                    None => eprintln!("unknown workload `{w}`"),
                }
            }
        }
        Command::ScaleStudy => {
            let Some(r) = or_report(exp::scale_study(opts)) else {
                return false;
            };
            r.print("§VII-D: scaling to larger systems");
            save_svg(svg, "scale-study", &r.to_svg("Scaling to larger systems"));
        }
        Command::AblateFence => match or_report(exp::ablate_fences(opts)) {
            Some(r) => r.print(),
            None => return false,
        },
        Command::AblatePlacement => match or_report(exp::ablate_placement(opts)) {
            Some(r) => r.print(),
            None => return false,
        },
        Command::AblateWriteback => match or_report(exp::ablate_writeback(opts)) {
            Some(r) => r.print(),
            None => return false,
        },
        Command::AblateDowngrade => match or_report(exp::ablate_downgrades(opts)) {
            Some(r) => r.print(),
            None => return false,
        },
        Command::All => {
            // Perf trajectory (ROADMAP item 1): tally every supervised
            // sweep of the full paper run and leave a machine-readable
            // baseline next to the figures.
            hmg::supervisor::take_tally();
            // audit:allow(entropy): wall-clock benchmarking only; never
            // feeds simulated state.
            let t0 = std::time::Instant::now();
            let mut ok = true;
            for c in Command::PAPER_ORDER {
                ok &= run(c, p);
            }
            let tally = hmg::supervisor::take_tally();
            let jobs = opts.supervisor_config().resolved_jobs(usize::MAX);
            let json = tally.to_json(jobs, t0.elapsed().as_secs_f64());
            match std::fs::write("BENCH_sweep.json", &json) {
                Ok(()) => eprintln!("[wrote BENCH_sweep.json] {json}"),
                Err(e) => eprintln!("cannot write BENCH_sweep.json: {e}"),
            }
            return ok;
        }
        Command::Check => {
            let cfg = hmg_check::CheckConfig {
                budget,
                seed: opts.seed,
                jobs: opts.jobs,
                protocols: match p.protocol {
                    Some(v) if v.hmg() => vec![ProtocolKind::Hmg],
                    Some(_) => vec![ProtocolKind::Nhcc],
                    None => vec![ProtocolKind::Nhcc, ProtocolKind::Hmg],
                },
                // A `-phase` variant arms threshold-0 flow control so the
                // HomeBusy guarded rows face the oracle; the plain
                // variants keep the default unguarded sweep.
                arbitration: p
                    .protocol
                    .map(|v| v.arbitration())
                    .filter(|&a| a == Arbitration::PhasePriority),
                inject: opts
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.skip_hier_inv_forward),
                link_down: opts
                    .faults
                    .as_ref()
                    .and_then(|f| f.link_down)
                    .map(|l| (l.a, l.b, l.at_cycle)),
                flip_msg: opts
                    .faults
                    .as_ref()
                    .and_then(|f| f.flip_msg)
                    .map(|m| m.prob),
                flip_line: opts
                    .faults
                    .as_ref()
                    .and_then(|f| f.flip_line)
                    .map(|m| m.prob),
                flip_dir: opts
                    .faults
                    .as_ref()
                    .and_then(|f| f.flip_dir)
                    .map(|m| m.prob),
                ..hmg_check::CheckConfig::default()
            };
            let report = hmg_check::run_check(&cfg);
            print!("{report}");
            return report.passed();
        }
        Command::Audit => {
            let report = hmg_audit::run_audit(&hmg_audit::AuditOptions {
                inject: p.inject,
                model: p.model,
                model_depth: p.model_depth,
                protocol: p.protocol,
                ..hmg_audit::AuditOptions::new(std::path::PathBuf::from(&p.audit_root))
            });
            for run in &report.model_runs {
                println!("{}", run.report());
            }
            for f in &report.findings {
                println!("{f}");
            }
            println!("{}", report.summary());
            return report.passed();
        }
        Command::Bench => {
            let report = match hmg::bench::run_bench(opts, p.bench_quick) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench failed: {e}");
                    return false;
                }
            };
            report.print();
            match std::fs::write(&p.bench_out, report.to_json()) {
                Ok(()) => println!("wrote {}", p.bench_out),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", p.bench_out);
                    return false;
                }
            }
            if let Some(base) = &p.bench_baseline {
                match hmg::bench::regression_gate(&report, std::path::Path::new(base)) {
                    Ok(msg) => println!("{msg}"),
                    Err(msg) => {
                        eprintln!("{msg}");
                        return false;
                    }
                }
            }
            return true;
        }
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden supervisor worker mode: run exactly one sweep cell and
    // exit. Must dispatch before normal parsing — the flag set is
    // private to the supervisor, not part of the CLI surface.
    if args.first().map(String::as_str) == Some("__run-cell") {
        return match u8::try_from(exp::cell_main(&args[1..])) {
            Ok(code) => ExitCode::from(code),
            Err(_) => ExitCode::FAILURE,
        };
    }
    match parse_args(&args) {
        Ok(parsed) => {
            // audit:allow(entropy): wall-clock progress reporting only;
            // never feeds simulated state.
            let t0 = std::time::Instant::now();
            let ok = run(parsed.command, &parsed);
            eprintln!(
                "[experiments completed in {:.1}s]",
                t0.elapsed().as_secs_f64()
            );
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
