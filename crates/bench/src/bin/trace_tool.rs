//! Generate, inspect, and dump workload trace files.
//!
//! ```text
//! trace-tool gen bfs --scale small --seed 2020 -o bfs.hmgtrace
//! trace-tool stats bfs.hmgtrace
//! trace-tool dump bfs.hmgtrace --kernel 0 --cta 3 --limit 40
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use hmg::protocol::tracefile::{read_trace, write_trace};
use hmg::protocol::{AccessKind, Scope, TraceOp, WorkloadTrace};
use hmg::report::Table;
use hmg::workloads::suite::by_abbrev;
use hmg::workloads::Scale;

const USAGE: &str = "usage:
  trace-tool gen <workload> [--scale tiny|small|full] [--seed N] -o <file>
  trace-tool stats <file>
  trace-tool dump <file> [--kernel K] [--cta C] [--limit N]
  trace-tool simulate <file> [--protocol NAME] [--machine paper|small]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("dump") => dump(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn gen(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let workload = it.next().ok_or(USAGE)?;
    let spec = by_abbrev(workload).ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let mut scale = Scale::Small;
    let mut seed = 2020u64;
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                scale = match it.next().ok_or("--scale needs a value")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "-o" | "--out" => out = Some(it.next().ok_or("-o needs a path")?.clone()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let path = out.ok_or("gen requires -o <file>")?;
    let trace = spec.generate(scale, seed);
    let file = File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
    write_trace(BufWriter::new(file), &trace).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "wrote {path}: {} kernels, {} CTAs, {} accesses",
        trace.num_kernels(),
        trace.num_ctas(),
        trace.num_accesses()
    );
    Ok(())
}

fn load(path: &str) -> Result<WorkloadTrace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let trace = load(path)?;

    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut atomics = 0u64;
    let mut delays = 0u64;
    let mut delay_cycles = 0u64;
    let mut acquires = 0u64;
    let mut releases = 0u64;
    let mut flags = 0u64;
    let mut by_scope: HashMap<Scope, u64> = HashMap::new();
    let mut lines = std::collections::HashSet::new();
    let mut line_touches: HashMap<u64, u32> = HashMap::new();

    for k in &trace.kernels {
        for c in &k.ctas {
            for op in &c.ops {
                match *op {
                    TraceOp::Access(a) => {
                        match a.kind {
                            AccessKind::Load => loads += 1,
                            AccessKind::Store => stores += 1,
                            AccessKind::Atomic => atomics += 1,
                        }
                        *by_scope.entry(a.scope).or_insert(0) += 1;
                        let line = a.addr.0 / 128;
                        lines.insert(line);
                        *line_touches.entry(line).or_insert(0) += 1;
                    }
                    TraceOp::Delay(d) => {
                        delays += 1;
                        delay_cycles += d as u64;
                    }
                    TraceOp::Acquire(_) => acquires += 1,
                    TraceOp::Release(_) => releases += 1,
                    TraceOp::SetFlag(_) | TraceOp::WaitFlag { .. } => flags += 1,
                }
            }
        }
    }
    let accesses = loads + stores + atomics;
    let reuse = if lines.is_empty() {
        0.0
    } else {
        accesses as f64 / lines.len() as f64
    };
    let max_touch = line_touches.values().copied().max().unwrap_or(0);

    println!("trace: {} ({path})", trace.name);
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["kernels".into(), trace.num_kernels().to_string()]);
    t.row(vec!["CTAs".into(), trace.num_ctas().to_string()]);
    t.row(vec!["loads".into(), loads.to_string()]);
    t.row(vec!["stores".into(), stores.to_string()]);
    t.row(vec!["atomics".into(), atomics.to_string()]);
    for s in Scope::ALL {
        if let Some(&n) = by_scope.get(&s) {
            t.row(vec![format!("accesses at {s}"), n.to_string()]);
        }
    }
    t.row(vec![
        "delay ops / cycles".into(),
        format!("{delays} / {delay_cycles}"),
    ]);
    t.row(vec!["acquires".into(), acquires.to_string()]);
    t.row(vec!["releases".into(), releases.to_string()]);
    t.row(vec!["flag ops".into(), flags.to_string()]);
    t.row(vec!["distinct 128B lines".into(), lines.len().to_string()]);
    t.row(vec![
        "touched footprint".into(),
        format!("{:.1} MB", lines.len() as f64 * 128.0 / 1e6),
    ]);
    t.row(vec!["mean touches per line".into(), format!("{reuse:.1}")]);
    t.row(vec!["hottest line touches".into(), max_touch.to_string()]);
    println!("{}", t.render());
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), String> {
    use hmg::prelude::*;
    let mut it = args.iter();
    let path = it.next().ok_or(USAGE)?;
    let mut protocols: Vec<ProtocolKind> = ProtocolKind::ALL.to_vec();
    let mut paper = true;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--protocol" => {
                let name = it.next().ok_or("--protocol needs a name")?;
                let p = ProtocolKind::ALL
                    .into_iter()
                    .find(|p| p.name() == name)
                    .ok_or_else(|| format!("unknown protocol `{name}`"))?;
                protocols = vec![p];
            }
            "--machine" => {
                paper = match it.next().ok_or("--machine needs a value")?.as_str() {
                    "paper" => true,
                    "small" => false,
                    other => return Err(format!("unknown machine `{other}`")),
                };
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let trace = load(path)?;
    println!(
        "simulating {} ({} accesses) on the {} machine",
        trace.name,
        trace.num_accesses(),
        if paper { "Table II" } else { "small test" }
    );
    let mut t = Table::new(vec![
        "protocol".into(),
        "cycles".into(),
        "avg kernel".into(),
        "p50 lat".into(),
        "p99 lat".into(),
    ]);
    for p in protocols {
        let cfg = if paper {
            hmg::gpu::EngineConfig::paper_default(p)
        } else {
            hmg::gpu::EngineConfig::small_test(p)
        };
        let m = Engine::new(cfg).run(&trace);
        t.row(vec![
            p.name().into(),
            m.total_cycles.as_u64().to_string(),
            format!("{:.0}", m.avg_kernel_cycles()),
            m.miss_latency_percentile(0.5).to_string(),
            m.miss_latency_percentile(0.99).to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn dump(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let path = it.next().ok_or(USAGE)?;
    let mut kernel = 0usize;
    let mut cta = 0usize;
    let mut limit = 50usize;
    while let Some(flag) = it.next() {
        let next = |it: &mut std::slice::Iter<String>| -> Result<usize, String> {
            it.next()
                .ok_or("missing value")?
                .parse()
                .map_err(|e| format!("bad value: {e}"))
        };
        match flag.as_str() {
            "--kernel" => kernel = next(&mut it)?,
            "--cta" => cta = next(&mut it)?,
            "--limit" => limit = next(&mut it)?,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let trace = load(path)?;
    let k = trace
        .kernels
        .get(kernel)
        .ok_or_else(|| format!("kernel {kernel} out of range ({})", trace.num_kernels()))?;
    let c = k
        .ctas
        .get(cta)
        .ok_or_else(|| format!("cta {cta} out of range ({})", k.num_ctas()))?;
    println!(
        "{}: kernel {kernel}, CTA {cta} — {} ops (showing {})",
        trace.name,
        c.ops.len(),
        limit.min(c.ops.len())
    );
    for (i, op) in c.ops.iter().take(limit).enumerate() {
        let text = match *op {
            TraceOp::Access(a) => format!("{a}"),
            TraceOp::Delay(d) => format!("delay {d}"),
            TraceOp::Acquire(s) => format!("acquire{s}"),
            TraceOp::Release(s) => format!("release{s}"),
            TraceOp::SetFlag(f) => format!("set-flag {f}"),
            TraceOp::WaitFlag { flag, count } => format!("wait-flag {flag} >= {count}"),
        };
        println!("{i:6}  {text}");
    }
    Ok(())
}
