//! Minimal argument parsing for the `experiments` binary (std-only; no
//! external CLI crates per the dependency policy in DESIGN.md §5).

use hmg::experiments::ExpOptions;
use hmg::prelude::FaultPlan;
use hmg::protocol::SpecVariant;
use hmg::supervisor::Isolation;
use hmg::workloads::Scale;

/// Which experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Fig. 2 — motivating comparison (SW-NH / NHCC / Ideal).
    Fig2,
    /// Fig. 3 — inter-GPU load redundancy.
    Fig3,
    /// Fig. 7 — simulator correlation vs analytical model.
    Fig7,
    /// Fig. 8 — headline five-configuration comparison.
    Fig8,
    /// Figs. 9–11 — HMG invalidation costs.
    Fig9To11,
    /// Fig. 12 — inter-GPU bandwidth sweep.
    Fig12,
    /// Fig. 13 — L2 capacity sweep.
    Fig13,
    /// Fig. 14 — directory capacity sweep.
    Fig14,
    /// §VII-B — directory granularity sweep (not pictured in the paper).
    Grain,
    /// §VII-C — directory storage cost.
    Cost,
    /// Table III — workload inventory.
    Table3,
    /// §VII-A — single-GPU sanity comparison.
    SingleGpu,
    /// §II-A prior-work comparison — CARVE-like broadcast coherence.
    Carve,
    /// §VII-D scaling discussion — 2/4/8-GPU systems.
    ScaleStudy,
    /// Per-workload traffic/locality drill-down under every protocol.
    Characterize,
    /// DESIGN.md ablation — release-fence cost.
    AblateFence,
    /// DESIGN.md ablation — page placement.
    AblatePlacement,
    /// §IV-B ablation — write-back vs write-through L2s.
    AblateWriteback,
    /// §IV-B ablation — sharer downgrade messages.
    AblateDowngrade,
    /// Run every experiment in paper order.
    All,
    /// Bounded litmus enumeration vs the axiomatic memory-model oracle
    /// (crates/check; see docs/CHECKING.md).
    Check,
    /// Static protocol verifier + source-hygiene lints (crates/audit;
    /// see docs/STATIC_ANALYSIS.md).
    Audit,
    /// Hot-path benchmark harness writing `BENCH_hotpath.json`
    /// (DESIGN.md §13).
    Bench,
}

impl Command {
    /// Parses a command name.
    pub fn from_name(s: &str) -> Option<Command> {
        Some(match s {
            "fig2" => Command::Fig2,
            "fig3" => Command::Fig3,
            "fig7" => Command::Fig7,
            "fig8" => Command::Fig8,
            "fig9" | "fig10" | "fig11" | "fig9-11" => Command::Fig9To11,
            "fig12" => Command::Fig12,
            "fig13" => Command::Fig13,
            "fig14" => Command::Fig14,
            "grain" => Command::Grain,
            "cost" => Command::Cost,
            "table3" => Command::Table3,
            "single-gpu" => Command::SingleGpu,
            "carve" => Command::Carve,
            "scale-study" => Command::ScaleStudy,
            "characterize" => Command::Characterize,
            "ablate-fence" => Command::AblateFence,
            "ablate-placement" => Command::AblatePlacement,
            "ablate-writeback" => Command::AblateWriteback,
            "ablate-downgrade" => Command::AblateDowngrade,
            "all" => Command::All,
            "check" => Command::Check,
            "audit" => Command::Audit,
            "bench" => Command::Bench,
            _ => return None,
        })
    }

    /// Every individual experiment, in paper order (used by `all`).
    pub const PAPER_ORDER: [Command; 15] = [
        Command::Table3,
        Command::Fig2,
        Command::Fig3,
        Command::Fig7,
        Command::Fig8,
        Command::Fig9To11,
        Command::Fig12,
        Command::Fig13,
        Command::Fig14,
        Command::Grain,
        Command::Cost,
        Command::AblateFence,
        Command::AblatePlacement,
        Command::AblateWriteback,
        Command::AblateDowngrade,
    ];
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The experiment to run.
    pub command: Command,
    /// Options passed through to the drivers.
    pub options: ExpOptions,
    /// When set, also write the figures as SVG files into this directory.
    pub svg_dir: Option<String>,
    /// Engine-run budget for the `check` sweep.
    pub budget: u64,
    /// Seeded violation class for the `audit` self-test mode.
    pub inject: Option<hmg_audit::Inject>,
    /// Workspace root for the `audit` command (defaults to `.`).
    pub audit_root: String,
    /// Run the explicit-state model checker as part of `audit`.
    pub model: bool,
    /// BFS depth bound for `--model` (`None` = exhaustive).
    pub model_depth: Option<u32>,
    /// Spec variant selector: restricts `audit --model` to one variant
    /// and picks the arbitration discipline for `check`.
    pub protocol: Option<SpecVariant>,
    /// Run the reduced `bench` matrix (CI smoke mode).
    pub bench_quick: bool,
    /// Output path for `BENCH_hotpath.json` (defaults to the CWD).
    pub bench_out: String,
    /// Baseline `BENCH_hotpath.json` the `bench` command gates against.
    pub bench_baseline: Option<String>,
}

/// Usage text.
pub const USAGE: &str = "usage: experiments <command> [--scale tiny|small|full] [--seed N] [--workloads a,b,c] [--svg DIR] [--faults SPEC] [--keep-going] [--checkpoint FILE] [--resume] [--livelock-budget N] [--jobs N] [--cell-timeout SECS] [--retries N] [--isolation process|thread] [--snapshot-dir DIR] [--snapshot-interval N] [--budget N] [--inject CLASS] [--root DIR] [--model] [--depth N] [--protocol VARIANT] [--quick] [--out FILE] [--baseline FILE]

commands:
  table3 fig2 fig3 fig7 fig8 fig9-11 fig12 fig13 fig14
  grain cost single-gpu carve scale-study characterize all
  ablate-fence ablate-placement ablate-writeback ablate-downgrade
  check audit bench

benchmarking (DESIGN.md \u{a7}13 `Performance`):
  bench           time the Fig. 8 cells single-threaded, in-process,
                  and write schema-versioned BENCH_hotpath.json
                  (events/sec, cycles/sec, wall time, peak RSS, and the
                  state digest per protocol config)
  --quick         reduced matrix for CI smoke runs
  --out FILE      where to write BENCH_hotpath.json (default: CWD)
  --baseline FILE compare total events/sec against a prior
                  BENCH_hotpath.json; exit nonzero on a >20% regression

static analysis (docs/STATIC_ANALYSIS.md):
  audit           static protocol verifier (table completeness,
                  conservation, waits-for deadlock freedom) plus the
                  determinism/panic-hygiene lints; nonzero exit on any
                  finding
  --inject CLASS  seed one known violation class to prove the audit
                  detects it: incomplete-row | waitsfor-cycle |
                  entropy | unordered-map | hot-path-struct |
                  dir-match | spec-drop-forward
  --root DIR      workspace root to audit (default: current directory)
  --model         also run the explicit-state model checker: walk every
                  reachable configuration of a small abstract system
                  under the guarded-action spec rows and prove SWMR,
                  sharer conservation, no stuck states, and waits-for
                  acyclicity per variant (prints `[model] ...` lines
                  with reachable-state counts and, on violation, the
                  shortest counterexample trace)
  --depth N       bound the model checker's BFS at depth N (the run is
                  then a sample, reported as `truncated`; default is
                  the full reachable space)
  --protocol VARIANT  restrict --model to one spec variant:
                  nhcc | hmg | nhcc-phase | hmg-phase

coherence checking (docs/CHECKING.md):
  check           sweep the bounded litmus space against the axiomatic
                  memory-model oracle; nonzero exit on any violation
  --budget N      engine-run budget for the sweep (default 2000)
  --seed N        perturbation-sweep seed (reproduces a failure exactly)
  --faults skip-hier-fwd   self-test: inject the hierarchical-forward
                  protocol bug; the sweep is then expected to FAIL
  --faults link-down=A-B@CYCLE   stamp a mid-litmus permanent link loss
                  onto every perturbation plan: outcomes must stay
                  within the oracle's allowed set while traffic detours
  --faults flip-msg=P,flip-line=P,flip-dir=P   stamp soft-error
                  injection onto every perturbation plan; any silently
                  consumed flip fails the sweep as INTEGRITY
  --protocol VARIANT   run the sweep under a specific spec variant; the
                  -phase variants enable threshold-0 flow control with
                  phase-priority arbitration, so every HomeBusy guarded
                  row is exercised against the oracle

fault injection (DESIGN.md `Robustness & fault injection`):
  --faults SPEC   comma-separated clauses, e.g.
                  degrade=FROM..UNTIL/FACTOR  stall=FROM..UNTIL/EXTRA
                  delay=PROB/EXTRA  dup=PROB  drop=PROB  flag-delay=EXTRA
                  drop-store=N  reorder-inv=NTH/EXTRA  seed=N

data integrity (DESIGN.md \u{a7}12 `Data integrity`):
  --faults flip-msg=PROB   corrupt an in-flight message per hop with
                  PROB; checksums detect and charge a retransmission
  --faults flip-line=PROB  per scrub period, flip a resident L2 line
                  per GPM with PROB; ECC corrects or invalidates
                  (clean lines refetch, dirty lines poison + CTA abort)
  --faults flip-dir=PROB   per scrub period, corrupt a directory entry
                  per GPM with PROB; SEC-DED corrects or rebuilds the
                  entry in conservative sticky-broadcast mode
                  sweeps print `[integrity] ...` lines with the
                  IntegrityStats counters; silent_corruptions stays 0
                  whenever checksums and ECC are enabled

fail-in-place (DESIGN.md \u{a7}9 `Fail-in-place & reconfiguration`):
  --faults link-down=A-B@CYCLE    kill the first-tier link between GPMs
                  A and B (global indices, same GPU) at CYCLE; traffic
                  detours over the second-tier switch path
  --faults gpm-offline=G.M@CYCLE  take GPM M of GPU G permanently
                  offline at CYCLE: its CTAs abort, its pages re-home
                  onto survivors in degraded no-peer-caching mode
  --faults gpu-offline=G@CYCLE    take every GPM of GPU G offline
                  sweeps print per-epoch `[fail-in-place] ...` lines
                  with the ReconfigStats counters
  --keep-going    isolate per-workload failures and print a partial
                  report with a failure table instead of aborting

sweep supervisor (DESIGN.md \u{a7}11 `Supervised sweeps`):
  --jobs N             worker slots for sweep cells (default: one per
                       core, capped at the cell count)
  --cell-timeout SECS  wall-clock budget per cell attempt; an overdue
                       child is killed and reported as `timeout`
  --retries N          re-run a crashed/timed-out cell up to N times
                       with exponential backoff before quarantining it
                       (default 2; typed simulation errors never retry)
  --isolation MODE     process (default): each cell re-execs the binary
                       via the hidden __run-cell mode so a crash or
                       hang cannot take the sweep down; thread: run
                       cells in-process (faster startup, panic-safe
                       only — a hung cell cannot be killed)

preemptible cells (DESIGN.md \u{a7}14 `Preemptible cells`):
  --snapshot-dir DIR   per-cell crash-consistent snapshot stores: each
                       cell periodically captures its complete live
                       simulation state, and a crashed/killed/timed-out
                       cell's retry resumes mid-run from the latest
                       valid snapshot instead of re-simulating from
                       cycle zero (bit-identical results either way)
  --snapshot-interval N  cycles between periodic captures (default
                       100000; 0 = resume-only)

recovery (DESIGN.md \u{a7}7 `Recovery & degradation`):
  --checkpoint FILE    append per-cell sweep results to FILE as they
                       finish, so an interrupted sweep can be resumed
  --resume             with --checkpoint: reuse completed cells from
                       FILE and re-run only failed or missing ones
  --livelock-budget N  override the auto-scaled deadlock-watchdog
                       budget with N cycles (0 disarms the watchdog)";

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a usage message on unknown commands, flags, or values.
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| USAGE.to_string())?;
    let command =
        Command::from_name(cmd).ok_or_else(|| format!("unknown command `{cmd}`\n{USAGE}"))?;
    // Library callers default to thread isolation (their process is not
    // the `experiments` binary, so re-exec would be wrong); the CLI *is*
    // that binary, so it defaults to full process isolation.
    let mut options = ExpOptions {
        isolation: Isolation::Process,
        ..ExpOptions::default()
    };
    let mut svg_dir = None;
    let mut budget = 2000u64;
    let mut inject = None;
    let mut audit_root = String::from(".");
    let mut model = false;
    let mut model_depth = None;
    let mut protocol = None;
    let mut bench_quick = false;
    let mut bench_out = String::from("BENCH_hotpath.json");
    let mut bench_baseline = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--svg" => svg_dir = Some(it.next().ok_or("--svg needs a directory")?.clone()),
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                options.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--workloads" => {
                let v = it.next().ok_or("--workloads needs a value")?;
                options.filter = Some(v.split(',').map(str::to_string).collect());
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a fault spec")?;
                options.faults =
                    Some(FaultPlan::parse(v).map_err(|e| format!("bad --faults spec: {e}"))?);
            }
            "--keep-going" => options.keep_going = true,
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a file path")?;
                options.checkpoint = Some(std::path::PathBuf::from(v));
            }
            "--resume" => options.resume = true,
            "--livelock-budget" => {
                let v = it.next().ok_or("--livelock-budget needs a cycle count")?;
                options.livelock_budget =
                    Some(v.parse().map_err(|e| format!("bad livelock budget: {e}"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a worker count")?;
                options.jobs = v.parse().map_err(|e| format!("bad job count: {e}"))?;
            }
            "--cell-timeout" => {
                let v = it.next().ok_or("--cell-timeout needs a seconds value")?;
                options.cell_timeout_secs =
                    Some(v.parse().map_err(|e| format!("bad cell timeout: {e}"))?);
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a retry count")?;
                options.retries = v.parse().map_err(|e| format!("bad retry count: {e}"))?;
            }
            "--isolation" => {
                let v = it.next().ok_or("--isolation needs process|thread")?;
                options.isolation = Isolation::parse(v)
                    .ok_or_else(|| format!("unknown isolation mode `{v}` (process|thread)"))?;
            }
            "--snapshot-dir" => {
                let v = it.next().ok_or("--snapshot-dir needs a directory")?;
                options.snapshot_dir = Some(std::path::PathBuf::from(v));
            }
            "--snapshot-interval" => {
                let v = it.next().ok_or("--snapshot-interval needs a cycle count")?;
                options.snapshot_interval = v
                    .parse()
                    .map_err(|e| format!("bad snapshot interval: {e}"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs an engine-run count")?;
                budget = v.parse().map_err(|e| format!("bad budget: {e}"))?;
            }
            "--inject" => {
                let v = it.next().ok_or("--inject needs a violation class")?;
                inject = Some(hmg_audit::Inject::parse(v).ok_or_else(|| {
                    format!(
                        "unknown violation class `{v}` (expected one of: {})",
                        hmg_audit::Inject::NAMES.join(", ")
                    )
                })?);
            }
            "--root" => audit_root = it.next().ok_or("--root needs a directory")?.clone(),
            "--model" => model = true,
            "--depth" => {
                let v = it.next().ok_or("--depth needs a BFS depth bound")?;
                model_depth = Some(v.parse().map_err(|e| format!("bad depth: {e}"))?);
            }
            "--protocol" => {
                let v = it.next().ok_or("--protocol needs a spec variant")?;
                protocol = Some(SpecVariant::from_name(v).ok_or_else(|| {
                    format!(
                        "unknown spec variant `{v}` (expected one of: {})",
                        SpecVariant::ALL
                            .iter()
                            .map(|x| x.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?);
            }
            "--quick" => bench_quick = true,
            "--out" => bench_out = it.next().ok_or("--out needs a file path")?.clone(),
            "--baseline" => {
                bench_baseline = Some(it.next().ok_or("--baseline needs a file path")?.clone())
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if options.resume && options.checkpoint.is_none() {
        return Err("--resume requires --checkpoint FILE".into());
    }
    Ok(ParsedArgs {
        command,
        options,
        svg_dir,
        budget,
        inject,
        audit_root,
        model,
        model_depth,
        protocol,
        bench_quick,
        bench_out,
        bench_baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse_args(&s(&["fig8", "--scale", "tiny", "--seed", "7"])).unwrap();
        assert_eq!(p.command, Command::Fig8);
        assert_eq!(p.options.scale, Scale::Tiny);
        assert_eq!(p.options.seed, 7);
        assert!(p.options.filter.is_none());
    }

    #[test]
    fn parses_svg_dir() {
        let p = parse_args(&s(&["fig8", "--svg", "out"])).unwrap();
        assert_eq!(p.svg_dir.as_deref(), Some("out"));
        assert!(parse_args(&s(&["fig8"])).unwrap().svg_dir.is_none());
    }

    #[test]
    fn parses_workload_filter() {
        let p = parse_args(&s(&["fig3", "--workloads", "bfs,mst"])).unwrap();
        assert_eq!(p.options.filter, Some(vec!["bfs".into(), "mst".into()]));
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse_args(&s(&["nope"])).is_err());
        assert!(parse_args(&s(&["fig8", "--bogus"])).is_err());
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["fig8", "--scale", "huge"])).is_err());
    }

    #[test]
    fn parses_fault_plan_and_keep_going() {
        let p = parse_args(&s(&[
            "fig8",
            "--faults",
            "delay=0.5/100,drop-store=3,seed=9",
            "--keep-going",
        ]))
        .unwrap();
        assert!(p.options.keep_going);
        let plan = p.options.faults.expect("plan parsed");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.drop_store, Some(3));
        assert_eq!(plan.delay.map(|d| d.extra), Some(100));
    }

    #[test]
    fn rejects_malformed_fault_spec() {
        let err = parse_args(&s(&["fig8", "--faults", "delay=2.0/5"])).unwrap_err();
        assert!(err.contains("bad --faults spec"), "{err}");
        assert!(parse_args(&s(&["fig8", "--faults"])).is_err());
    }

    #[test]
    fn parses_checkpoint_resume_and_budget() {
        let p = parse_args(&s(&[
            "fig8",
            "--checkpoint",
            "sweep.ckpt",
            "--resume",
            "--livelock-budget",
            "250000",
        ]))
        .unwrap();
        assert_eq!(
            p.options.checkpoint.as_deref(),
            Some(std::path::Path::new("sweep.ckpt"))
        );
        assert!(p.options.resume);
        assert_eq!(p.options.livelock_budget, Some(250_000));
        let q = parse_args(&s(&["fig8", "--livelock-budget", "0"])).unwrap();
        assert_eq!(q.options.livelock_budget, Some(0), "0 disarms the watchdog");
        assert!(q.options.checkpoint.is_none());
        assert!(!q.options.resume);
    }

    #[test]
    fn resume_requires_a_checkpoint_file() {
        let err = parse_args(&s(&["fig8", "--resume"])).unwrap_err();
        assert!(err.contains("--resume requires"), "{err}");
        assert!(parse_args(&s(&["fig8", "--checkpoint"])).is_err());
        assert!(parse_args(&s(&["fig8", "--livelock-budget", "lots"])).is_err());
    }

    #[test]
    fn parses_supervisor_flags() {
        let p = parse_args(&s(&[
            "fig8",
            "--jobs",
            "4",
            "--cell-timeout",
            "30",
            "--retries",
            "1",
            "--isolation",
            "thread",
        ]))
        .unwrap();
        assert_eq!(p.options.jobs, 4);
        assert_eq!(p.options.cell_timeout_secs, Some(30));
        assert_eq!(p.options.retries, 1);
        assert_eq!(p.options.isolation, Isolation::Thread);
        let q = parse_args(&s(&["fig8"])).unwrap();
        assert_eq!(q.options.jobs, 0, "0 = one worker per core");
        assert_eq!(q.options.cell_timeout_secs, None);
        assert_eq!(
            q.options.isolation,
            Isolation::Process,
            "the CLI defaults to full process isolation"
        );
        assert!(parse_args(&s(&["fig8", "--jobs", "many"])).is_err());
        assert!(parse_args(&s(&["fig8", "--cell-timeout"])).is_err());
        assert!(parse_args(&s(&["fig8", "--isolation", "vm"])).is_err());
    }

    #[test]
    fn parses_snapshot_flags() {
        let p = parse_args(&s(&[
            "fig8",
            "--snapshot-dir",
            "/tmp/snaps",
            "--snapshot-interval",
            "1234",
        ]))
        .unwrap();
        assert_eq!(
            p.options.snapshot_dir.as_deref(),
            Some(std::path::Path::new("/tmp/snaps"))
        );
        assert_eq!(p.options.snapshot_interval, 1234);
        let q = parse_args(&s(&["fig8"])).unwrap();
        assert_eq!(q.options.snapshot_dir, None, "snapshots are opt-in");
        assert_eq!(
            q.options.snapshot_interval,
            hmg::experiments::DEFAULT_SNAPSHOT_INTERVAL
        );
        assert!(parse_args(&s(&["fig8", "--snapshot-dir"])).is_err());
        assert!(parse_args(&s(&["fig8", "--snapshot-interval", "often"])).is_err());
    }

    #[test]
    fn all_command_names_round_trip() {
        for name in [
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9-11",
            "fig12",
            "fig13",
            "fig14",
            "grain",
            "cost",
            "table3",
            "single-gpu",
            "ablate-fence",
            "ablate-placement",
            "ablate-writeback",
            "ablate-downgrade",
            "all",
            "check",
            "audit",
            "bench",
        ] {
            assert!(Command::from_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn parses_bench_flags() {
        let p = parse_args(&s(&[
            "bench",
            "--quick",
            "--out",
            "/tmp/b.json",
            "--baseline",
            "ci/bench_baseline.json",
        ]))
        .unwrap();
        assert_eq!(p.command, Command::Bench);
        assert!(p.bench_quick);
        assert_eq!(p.bench_out, "/tmp/b.json");
        assert_eq!(p.bench_baseline.as_deref(), Some("ci/bench_baseline.json"));
        let q = parse_args(&s(&["bench"])).unwrap();
        assert!(!q.bench_quick);
        assert_eq!(q.bench_out, "BENCH_hotpath.json");
        assert!(q.bench_baseline.is_none());
        assert!(parse_args(&s(&["bench", "--out"])).is_err());
        assert!(parse_args(&s(&["bench", "--baseline"])).is_err());
    }

    #[test]
    fn parses_check_budget() {
        let p = parse_args(&s(&["check", "--budget", "500", "--seed", "3"])).unwrap();
        assert_eq!(p.command, Command::Check);
        assert_eq!(p.budget, 500);
        assert_eq!(p.options.seed, 3);
        assert_eq!(parse_args(&s(&["check"])).unwrap().budget, 2000);
        assert!(parse_args(&s(&["check", "--budget", "many"])).is_err());
        assert!(parse_args(&s(&["check", "--budget"])).is_err());
    }

    #[test]
    fn parses_audit_inject_and_root() {
        let p = parse_args(&s(&["audit", "--inject", "waitsfor-cycle", "--root", "/x"])).unwrap();
        assert_eq!(p.command, Command::Audit);
        assert_eq!(p.inject, Some(hmg_audit::Inject::WaitsForCycle));
        assert_eq!(p.audit_root, "/x");
        let q = parse_args(&s(&["audit"])).unwrap();
        assert!(q.inject.is_none());
        assert_eq!(q.audit_root, ".");
        assert!(parse_args(&s(&["audit", "--inject", "nope"])).is_err());
        assert!(parse_args(&s(&["audit", "--inject"])).is_err());
    }

    #[test]
    fn parses_audit_model_flags() {
        let p = parse_args(&s(&[
            "audit",
            "--model",
            "--depth",
            "6",
            "--protocol",
            "hmg-phase",
        ]))
        .unwrap();
        assert!(p.model);
        assert_eq!(p.model_depth, Some(6));
        assert_eq!(p.protocol, Some(SpecVariant::HmgPhase));
        let q = parse_args(&s(&["audit"])).unwrap();
        assert!(!q.model, "the model checker is opt-in");
        assert_eq!(q.model_depth, None, "default is exhaustive");
        assert!(q.protocol.is_none(), "default checks every variant");
        assert!(parse_args(&s(&["audit", "--depth", "deep"])).is_err());
        assert!(parse_args(&s(&["audit", "--depth"])).is_err());
    }

    #[test]
    fn every_spec_variant_name_round_trips_through_the_flag() {
        for v in SpecVariant::ALL {
            let p = parse_args(&s(&["audit", "--model", "--protocol", v.name()])).unwrap();
            assert_eq!(p.protocol, Some(v), "{}", v.name());
        }
        let err = parse_args(&s(&["audit", "--protocol", "mesi"])).unwrap_err();
        assert!(err.contains("unknown spec variant"), "{err}");
        assert!(err.contains("nhcc-phase"), "the error lists names: {err}");
        assert!(parse_args(&s(&["audit", "--protocol"])).is_err());
    }

    #[test]
    fn check_accepts_a_protocol_variant() {
        let p = parse_args(&s(&["check", "--protocol", "nhcc-phase", "--budget", "40"])).unwrap();
        assert_eq!(p.protocol, Some(SpecVariant::NhccPhase));
        assert_eq!(p.budget, 40);
    }

    #[test]
    fn check_accepts_the_bug_injection_fault() {
        let p = parse_args(&s(&["check", "--faults", "skip-hier-fwd"])).unwrap();
        assert!(p.options.faults.expect("parsed").skip_hier_inv_forward);
    }
}
