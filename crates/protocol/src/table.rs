//! The NHCC/HMG coherence-directory transition table (Table I of the
//! paper), as a pure function.
//!
//! The directory has exactly two stable states — Valid and Invalid — and
//! no transient states; stores never wait for invalidation
//! acknowledgments because the memory model is not multi-copy-atomic
//! (Section III-B). The one HMG-specific addition is the `Invalidation`
//! column: a GPU home node receiving an invalidation from the system home
//! must forward it to its local GPM sharers.
//!
//! | State | Local Ld | Local St/Atom       | Remote Ld    | Remote St/Atom               | Replace             | Invalidation (HMG)            |
//! |-------|----------|---------------------|--------------|------------------------------|---------------------|-------------------------------|
//! | I     | –        | –                   | add s, →V    | add s, →V                    | N/A                 | →I                            |
//! | V     | –        | inv all sharers, →I | add s        | add s, inv other sharers     | inv all sharers, →I | forward inv to all sharers, →I |

/// Stable directory states. Valid corresponds to the entry being present
/// in the set-associative directory; Invalid to its absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DirState {
    /// No sharers tracked.
    Invalid,
    /// Entry present; sharer list is meaningful.
    Valid,
}

impl DirState {
    /// Every stable state, in table-row order.
    pub const ALL: [DirState; 2] = [DirState::Invalid, DirState::Valid];

    /// One-letter label used by coverage reports ("I" / "V").
    pub fn letter(self) -> &'static str {
        match self {
            DirState::Invalid => "I",
            DirState::Valid => "V",
        }
    }
}

/// Events a directory entry can observe. "Local" means issued by the GPM
/// owning this directory; "remote" means arriving from another GPM or GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirEvent {
    /// A load from the home GPM itself.
    LocalLoad,
    /// A store or atomic from the home GPM itself.
    LocalStore,
    /// A load from a remote GPM/GPU (the sender `s`).
    RemoteLoad,
    /// A store or atomic from a remote GPM/GPU (the sender `s`).
    RemoteStore,
    /// Capacity/conflict eviction of the directory entry.
    Replace,
    /// HMG only: an invalidation received by a GPU home node from the
    /// system home node.
    Invalidation,
}

impl DirEvent {
    /// Every event, in table-column order.
    pub const ALL: [DirEvent; 6] = [
        DirEvent::LocalLoad,
        DirEvent::LocalStore,
        DirEvent::RemoteLoad,
        DirEvent::RemoteStore,
        DirEvent::Replace,
        DirEvent::Invalidation,
    ];

    /// Column label used by coverage reports.
    pub fn label(self) -> &'static str {
        match self {
            DirEvent::LocalLoad => "LocalLoad",
            DirEvent::LocalStore => "LocalStore",
            DirEvent::RemoteLoad => "RemoteLoad",
            DirEvent::RemoteStore => "RemoteStore",
            DirEvent::Replace => "Replace",
            DirEvent::Invalidation => "Invalidation",
        }
    }
}

/// Number of cells in the `DirState` × `DirEvent` table domain.
pub const NUM_ROWS: usize = DirState::ALL.len() * DirEvent::ALL.len();

/// Dense index of a `(state, event)` cell, for coverage arrays.
pub fn row_index(state: DirState, event: DirEvent) -> usize {
    let s = state as usize;
    let e = event as usize;
    s * DirEvent::ALL.len() + e
}

/// Inverse of [`row_index`].
pub fn row_of(index: usize) -> (DirState, DirEvent) {
    let s = DirState::ALL[index / DirEvent::ALL.len()];
    let e = DirEvent::ALL[index % DirEvent::ALL.len()];
    (s, e)
}

/// What the controller must do in response to a directory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// The state the entry moves to.
    pub next: DirState,
    /// Record the message sender as a sharer.
    pub add_sharer: bool,
    /// Send invalidations to every tracked sharer.
    pub inv_all_sharers: bool,
    /// Send invalidations to every tracked sharer except the sender.
    pub inv_other_sharers: bool,
}

impl Outcome {
    /// An outcome that moves to `next` without recording a sharer or
    /// sending any invalidation.
    pub const fn quiet(next: DirState) -> Self {
        Outcome {
            next,
            add_sharer: false,
            inv_all_sharers: false,
            inv_other_sharers: false,
        }
    }
}

/// Applies Table I. `hmg` selects the hierarchical variant, which is the
/// only one that defines the `Invalidation` column.
///
/// # Panics
///
/// Panics on `(Invalid, Replace)` — an absent entry cannot be evicted —
/// and on `(_, Invalidation)` when `hmg` is false, since flat NHCC homes
/// never receive invalidations from above.
///
/// # Example
///
/// ```
/// use hmg_protocol::{transition, DirEvent, DirState};
///
/// // A remote load allocates the entry and records the sharer.
/// let o = transition(DirState::Invalid, DirEvent::RemoteLoad, false);
/// assert_eq!(o.next, DirState::Valid);
/// assert!(o.add_sharer);
///
/// // A local store to shared data invalidates all sharers.
/// let o = transition(DirState::Valid, DirEvent::LocalStore, false);
/// assert_eq!(o.next, DirState::Invalid);
/// assert!(o.inv_all_sharers);
/// ```
pub fn transition(state: DirState, event: DirEvent, hmg: bool) -> Outcome {
    match try_transition(state, event, hmg) {
        Some(o) => o,
        None => match (state, event) {
            (DirState::Invalid, DirEvent::Replace) => {
                panic!("cannot replace an Invalid directory entry")
            }
            _ => panic!("only HMG GPU home nodes receive invalidations"),
        },
    }
}

/// Total version of [`transition`] over the full `DirState` × `DirEvent`
/// domain: `None` marks the cells Table I leaves undefined —
/// `(Invalid, Replace)` under either variant, and the whole
/// `Invalidation` column under flat NHCC (`hmg == false`).
///
/// Since PR 10 this is a *view*, not the source: the table lives as
/// guarded-action rows in [`crate::spec`], and this function compiles
/// the matching unconditional row into the legacy [`Outcome`] shape.
/// The runtime engine, the conformance replay, and the static verifier
/// in `crates/audit` all consume it, so a spec edit is automatically
/// re-proved complete, conservative, ack-free — and, via the model
/// checker, coherent — on the next `hmg-audit` run.
pub fn try_transition(state: DirState, event: DirEvent, hmg: bool) -> Option<Outcome> {
    crate::spec::outcome_of(state, event, hmg)
}

#[cfg(test)]
mod tests {
    use super::DirEvent::*;
    use super::DirState::*;
    use super::*;

    // One test per cell of Table I.

    #[test]
    fn i_local_load_is_a_nop() {
        let o = transition(Invalid, LocalLoad, false);
        assert_eq!(o, Outcome::quiet(Invalid));
    }

    #[test]
    fn i_local_store_is_a_nop() {
        let o = transition(Invalid, LocalStore, false);
        assert_eq!(o, Outcome::quiet(Invalid));
    }

    #[test]
    fn i_remote_load_allocates_and_tracks() {
        let o = transition(Invalid, RemoteLoad, false);
        assert_eq!(o.next, Valid);
        assert!(o.add_sharer);
        assert!(!o.inv_all_sharers && !o.inv_other_sharers);
    }

    #[test]
    fn i_remote_store_allocates_and_tracks() {
        let o = transition(Invalid, RemoteStore, false);
        assert_eq!(o.next, Valid);
        assert!(o.add_sharer);
        assert!(!o.inv_all_sharers && !o.inv_other_sharers);
    }

    #[test]
    #[should_panic(expected = "cannot replace")]
    fn i_replace_is_unreachable() {
        transition(Invalid, Replace, false);
    }

    #[test]
    fn i_invalidation_under_hmg_stays_invalid() {
        let o = transition(Invalid, Invalidation, true);
        assert_eq!(o, Outcome::quiet(Invalid));
    }

    #[test]
    fn v_local_load_is_a_nop() {
        let o = transition(Valid, LocalLoad, false);
        assert_eq!(o, Outcome::quiet(Valid));
    }

    #[test]
    fn v_local_store_invalidates_all_and_deallocates() {
        let o = transition(Valid, LocalStore, false);
        assert_eq!(o.next, Invalid);
        assert!(o.inv_all_sharers);
        assert!(!o.add_sharer && !o.inv_other_sharers);
    }

    #[test]
    fn v_remote_load_adds_sharer_and_stays_valid() {
        let o = transition(Valid, RemoteLoad, false);
        assert_eq!(o.next, Valid);
        assert!(o.add_sharer);
        assert!(!o.inv_all_sharers && !o.inv_other_sharers);
    }

    #[test]
    fn v_remote_store_adds_sharer_and_invalidates_others() {
        let o = transition(Valid, RemoteStore, false);
        assert_eq!(o.next, Valid);
        assert!(o.add_sharer);
        assert!(o.inv_other_sharers);
        assert!(!o.inv_all_sharers);
    }

    #[test]
    fn v_replace_invalidates_all_and_deallocates() {
        let o = transition(Valid, Replace, false);
        assert_eq!(o.next, Invalid);
        assert!(o.inv_all_sharers);
        assert!(!o.add_sharer);
    }

    #[test]
    fn v_invalidation_under_hmg_forwards_to_all_sharers() {
        let o = transition(Valid, Invalidation, true);
        assert_eq!(o.next, Invalid);
        assert!(o.inv_all_sharers, "must forward to local GPM sharers");
    }

    #[test]
    #[should_panic(expected = "only HMG")]
    fn invalidation_without_hmg_is_rejected() {
        transition(Valid, Invalidation, false);
    }

    #[test]
    fn same_behavior_for_nhcc_and_hmg_outside_invalidation_column() {
        // HMG "behaves similarly to Table I but adds the single extra
        // transition" — every non-Invalidation cell must be identical.
        for state in [Invalid, Valid] {
            for event in [LocalLoad, LocalStore, RemoteLoad, RemoteStore] {
                assert_eq!(
                    transition(state, event, false),
                    transition(state, event, true),
                    "{state:?}/{event:?}"
                );
            }
        }
        assert_eq!(
            transition(Valid, Replace, false),
            transition(Valid, Replace, true)
        );
    }

    #[test]
    fn try_transition_is_none_exactly_on_the_undefined_cells() {
        for hmg in [false, true] {
            for state in DirState::ALL {
                for event in DirEvent::ALL {
                    let expect_na =
                        (state, event) == (Invalid, Replace) || (event == Invalidation && !hmg);
                    assert_eq!(
                        try_transition(state, event, hmg).is_none(),
                        expect_na,
                        "{state:?}/{event:?} hmg={hmg}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_index_round_trips_and_is_dense() {
        let mut seen = [false; NUM_ROWS];
        for state in DirState::ALL {
            for event in DirEvent::ALL {
                let i = row_index(state, event);
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
                assert_eq!(row_of(i), (state, event));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn no_transition_ever_requires_an_ack_or_transient_state() {
        // Structural property: Outcome has no "wait" capability at all —
        // the type system itself guarantees ack-free, two-state operation.
        // This test documents the invariant by exhaustively walking every
        // legal (state, event) pair.
        for (s, e, hmg) in [
            (Invalid, LocalLoad, false),
            (Invalid, LocalStore, false),
            (Invalid, RemoteLoad, false),
            (Invalid, RemoteStore, false),
            (Invalid, Invalidation, true),
            (Valid, LocalLoad, false),
            (Valid, LocalStore, false),
            (Valid, RemoteLoad, false),
            (Valid, RemoteStore, false),
            (Valid, Replace, false),
            (Valid, Invalidation, true),
        ] {
            let o = transition(s, e, hmg);
            assert!(matches!(o.next, Invalid | Valid));
        }
    }
}
