//! Runtime conformance checking against the static transition table.
//!
//! `hmg-audit` proves properties of [`crate::table`] *offline*; this
//! module closes the loop at *runtime*: the GPU engine reports every
//! directory transition it actually executes, and [`TableConformance`]
//! checks the observed effect against [`crate::try_transition`] while
//! accumulating per-row coverage. A mismatch means the timed engine has
//! drifted from the table the paper specifies — the engine debug-asserts
//! on it, and release builds count it so CI can fail the run.
//!
//! The observation API is deliberately integer-based (sharer counts, not
//! sharer sets) so this crate stays free of simulator dependencies and so
//! vacuous cases — e.g. a `(Valid, RemoteStore)` whose "invalidate other
//! sharers" target set happens to be empty — compare exactly rather than
//! by boolean intent.

use crate::table::{row_index, row_of, try_transition, DirEvent, DirState, NUM_ROWS};

/// What the engine actually did for one directory transition.
#[derive(Debug, Clone, Copy)]
pub struct Observed {
    /// The stable state the entry ended in.
    pub next: DirState,
    /// Whether the sender was recorded as a sharer (an insert was
    /// performed; re-inserting an already-tracked sharer counts).
    pub added_sharer: bool,
    /// Precisely tracked sharers before the transition, or `None` when
    /// the entry had degraded to broadcast (over-approximate) tracking.
    pub prior_sharers: Option<u32>,
    /// Whether the sender was already among the tracked sharers.
    pub sender_was_sharer: bool,
    /// How many sharers were sent invalidations, or `None` when the
    /// target list came from a conservative broadcast substitution.
    pub invalidated: Option<u32>,
}

impl Observed {
    /// A transition that touched nothing: stayed in `state`, added no
    /// sharer, invalidated nobody.
    pub fn quiet(state: DirState) -> Self {
        Observed {
            next: state,
            added_sharer: false,
            prior_sharers: Some(0),
            sender_was_sharer: false,
            invalidated: Some(0),
        }
    }
}

/// Per-row coverage and conformance counters for directory transitions.
///
/// Embedded in the engine's `RunMetrics`; merged across runs by the
/// tier-1 table-coverage test to prove every legal row is exercised.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableConformance {
    /// Times each `(DirState, DirEvent)` cell was executed, indexed by
    /// [`row_index`].
    pub rows: [u64; NUM_ROWS],
    /// Total transitions checked.
    pub checked: u64,
    /// Transitions whose observed effect contradicted the table.
    pub mismatches: u64,
}

impl TableConformance {
    /// Fresh, all-zero tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed transition and checks it against the table.
    ///
    /// Returns `Err` with a human-readable diagnosis when the observed
    /// effect contradicts [`try_transition`] (the mismatch is counted
    /// either way, so release builds still surface it via
    /// [`TableConformance::mismatches`]).
    pub fn observe(
        &mut self,
        state: DirState,
        event: DirEvent,
        hmg: bool,
        obs: Observed,
    ) -> Result<(), String> {
        self.rows[row_index(state, event)] += 1;
        self.checked += 1;
        let fail = |what: String| {
            format!(
                "({:?}, {:?}) hmg={hmg}: {what} (observed {obs:?})",
                state, event
            )
        };
        let Some(expect) = try_transition(state, event, hmg) else {
            self.mismatches += 1;
            return Err(fail(
                "engine executed a cell the table leaves undefined".into(),
            ));
        };
        if obs.next != expect.next {
            self.mismatches += 1;
            return Err(fail(format!("table says next={:?}", expect.next)));
        }
        if obs.added_sharer != expect.add_sharer {
            self.mismatches += 1;
            return Err(fail(format!("table says add_sharer={}", expect.add_sharer)));
        }
        // Invalidation-count check, skipped when either side of the
        // comparison is a broadcast over-approximation.
        if let (Some(prior), Some(inv)) = (obs.prior_sharers, obs.invalidated) {
            let want = if expect.inv_all_sharers {
                prior
            } else if expect.inv_other_sharers {
                prior - u32::from(obs.sender_was_sharer)
            } else {
                0
            };
            if inv != want {
                self.mismatches += 1;
                return Err(fail(format!(
                    "table implies {want} invalidations, sent {inv}"
                )));
            }
        }
        Ok(())
    }

    /// Accumulates another tracker's counters into this one.
    pub fn merge(&mut self, other: &TableConformance) {
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            *a += b;
        }
        self.checked += other.checked;
        self.mismatches += other.mismatches;
    }

    /// Rows that are legal under `hmg` (i.e. defined by the table) but
    /// were never executed.
    pub fn uncovered_rows(&self, hmg: bool) -> Vec<(DirState, DirEvent)> {
        (0..NUM_ROWS)
            .filter(|&i| {
                let (s, e) = row_of(i);
                try_transition(s, e, hmg).is_some() && self.rows[i] == 0
            })
            .map(row_of)
            .collect()
    }

    /// Multi-line per-row coverage report, in table order.
    pub fn report(&self) -> String {
        let mut out = String::from("directory transition coverage (hits per table cell):\n");
        for i in 0..NUM_ROWS {
            let (s, e) = row_of(i);
            let legal = try_transition(s, e, true).is_some();
            out.push_str(&format!(
                "  {:<1} x {:<12} {:>10}{}\n",
                s.letter(),
                e.label(),
                self.rows[i],
                if legal { "" } else { "  (N/A)" }
            ));
        }
        out.push_str(&format!(
            "  checked={} mismatches={}\n",
            self.checked, self.mismatches
        ));
        out
    }
}

impl hmg_sim::SnapshotWrite for TableConformance {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.rows.write_snap(w);
        w.put_u64(self.checked);
        w.put_u64(self.mismatches);
    }
}

impl hmg_sim::SnapshotRead for TableConformance {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(TableConformance {
            rows: <[u64; NUM_ROWS]>::read_snap(r)?,
            checked: r.get_u64()?,
            mismatches: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DirEvent::*;
    use DirState::*;

    #[test]
    fn quiet_local_load_conforms() {
        let mut t = TableConformance::new();
        t.observe(Valid, LocalLoad, false, Observed::quiet(Valid))
            .unwrap();
        assert_eq!(t.checked, 1);
        assert_eq!(t.mismatches, 0);
        assert_eq!(t.rows[row_index(Valid, LocalLoad)], 1);
    }

    #[test]
    fn wrong_next_state_is_a_mismatch() {
        let mut t = TableConformance::new();
        let err = t
            .observe(Valid, LocalStore, false, Observed::quiet(Valid))
            .unwrap_err();
        assert!(err.contains("next=Invalid"), "{err}");
        assert_eq!(t.mismatches, 1);
    }

    #[test]
    fn remote_store_invalidates_exactly_the_others() {
        let mut t = TableConformance::new();
        // 3 sharers tracked, sender already among them: expect 2 invs.
        let ok = Observed {
            next: Valid,
            added_sharer: true,
            prior_sharers: Some(3),
            sender_was_sharer: true,
            invalidated: Some(2),
        };
        t.observe(Valid, RemoteStore, false, ok).unwrap();
        let bad = Observed {
            invalidated: Some(3),
            ..ok
        };
        let err = t.observe(Valid, RemoteStore, false, bad).unwrap_err();
        assert!(err.contains("implies 2 invalidations"), "{err}");
    }

    #[test]
    fn broadcast_entries_skip_the_count_check() {
        let mut t = TableConformance::new();
        let obs = Observed {
            next: Invalid,
            added_sharer: false,
            prior_sharers: None,
            sender_was_sharer: false,
            invalidated: None,
        };
        t.observe(Valid, Replace, false, obs).unwrap();
        assert_eq!(t.mismatches, 0);
    }

    #[test]
    fn undefined_cell_is_a_mismatch() {
        let mut t = TableConformance::new();
        let err = t
            .observe(Invalid, Invalidation, false, Observed::quiet(Invalid))
            .unwrap_err();
        assert!(err.contains("undefined"), "{err}");
    }

    #[test]
    fn merge_and_uncovered_rows() {
        let mut a = TableConformance::new();
        let mut b = TableConformance::new();
        a.observe(Valid, LocalLoad, false, Observed::quiet(Valid))
            .unwrap();
        b.observe(Invalid, LocalLoad, false, Observed::quiet(Invalid))
            .unwrap();
        a.merge(&b);
        assert_eq!(a.checked, 2);
        let uncovered = a.uncovered_rows(true);
        // 11 legal rows under HMG, 2 covered.
        assert_eq!(uncovered.len(), 9);
        assert!(!uncovered.contains(&(Valid, LocalLoad)));
        assert!(a.report().contains("checked=2"));
    }
}
