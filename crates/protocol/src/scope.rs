//! Synchronization scopes of the GPU memory model (Section II-C).

use std::fmt;

/// The set of threads a memory operation synchronizes with.
///
/// Scopes are totally ordered by inclusion: `.cta` ⊂ `.gpu` ⊂ `.sys`.
/// (HRF calls these work-group, device, and system.) Plain,
/// non-synchronizing accesses behave like `.cta`-scoped ones for cache
/// hit purposes — they may hit anywhere.
///
/// # Example
///
/// ```
/// use hmg_protocol::Scope;
///
/// assert!(Scope::Cta < Scope::Gpu);
/// assert!(Scope::Gpu < Scope::Sys);
/// assert_eq!(Scope::Gpu.to_string(), ".gpu");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Scope {
    /// Threads of the same CTA; enforced at the SM's L1.
    #[default]
    Cta,
    /// Threads of the same GPU; enforced at the GPU home L2.
    Gpu,
    /// Any thread in the system; enforced at the system home L2.
    Sys,
}

impl Scope {
    /// All scopes, narrowest first.
    pub const ALL: [Scope; 3] = [Scope::Cta, Scope::Gpu, Scope::Sys];

    /// Whether this scope includes `other` (i.e. is at least as wide).
    #[inline]
    pub fn includes(self, other: Scope) -> bool {
        self >= other
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scope::Cta => ".cta",
            Scope::Gpu => ".gpu",
            Scope::Sys => ".sys",
        };
        f.write_str(s)
    }
}

impl hmg_sim::SnapshotWrite for Scope {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u8(match self {
            Scope::Cta => 0,
            Scope::Gpu => 1,
            Scope::Sys => 2,
        });
    }
}

impl hmg_sim::SnapshotRead for Scope {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        match r.get_u8()? {
            0 => Ok(Scope::Cta),
            1 => Ok(Scope::Gpu),
            2 => Ok(Scope::Sys),
            b => Err(hmg_sim::SnapError::Malformed(format!("scope tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_matches_inclusion() {
        assert!(Scope::Cta < Scope::Gpu && Scope::Gpu < Scope::Sys);
        assert!(Scope::Sys.includes(Scope::Cta));
        assert!(Scope::Sys.includes(Scope::Sys));
        assert!(!Scope::Cta.includes(Scope::Gpu));
    }

    #[test]
    fn default_is_cta() {
        assert_eq!(Scope::default(), Scope::Cta);
    }

    #[test]
    fn all_lists_every_scope_once() {
        assert_eq!(Scope::ALL.len(), 3);
        let mut v = Scope::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn display_matches_ptx_spelling() {
        assert_eq!(Scope::Cta.to_string(), ".cta");
        assert_eq!(Scope::Sys.to_string(), ".sys");
    }
}
