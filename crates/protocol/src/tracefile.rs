//! On-disk serialization of workload traces.
//!
//! A compact little-endian binary format so traces can be generated
//! once, inspected with the `trace-tool` binary, archived alongside
//! experiment results, and replayed bit-identically — the moral
//! equivalent of the program traces that drive the paper's simulator.
//!
//! Layout:
//!
//! ```text
//! magic "HMGTRACE"  version:u32
//! name_len:u32  name:[u8]
//! kernel_count:u32
//!   per kernel: cta_count:u32
//!     per CTA: op_count:u32
//!       per op: tag:u8 payload...
//! ```

use std::io::{self, Read, Write};

use hmg_mem::Addr;

use crate::op::{Access, AccessKind};
use crate::scope::Scope;
use crate::trace::{Cta, Kernel, TraceOp, WorkloadTrace};

/// File magic.
pub const MAGIC: &[u8; 8] = b"HMGTRACE";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not supported.
    UnsupportedVersion(u32),
    /// A field failed validation.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ReadTraceError::BadMagic => f.write_str("not an HMG trace file"),
            ReadTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn scope_tag(s: Scope) -> u8 {
    match s {
        Scope::Cta => 0,
        Scope::Gpu => 1,
        Scope::Sys => 2,
    }
}

fn scope_from(tag: u8) -> Result<Scope, ReadTraceError> {
    Ok(match tag {
        0 => Scope::Cta,
        1 => Scope::Gpu,
        2 => Scope::Sys,
        _ => return Err(ReadTraceError::Corrupt("scope tag")),
    })
}

fn kind_tag(k: AccessKind) -> u8 {
    match k {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Atomic => 2,
    }
}

fn kind_from(tag: u8) -> Result<AccessKind, ReadTraceError> {
    Ok(match tag {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Atomic,
        _ => return Err(ReadTraceError::Corrupt("access kind tag")),
    })
}

/// Writes `trace` to `w`. A `BufWriter` is recommended; note that a
/// `&mut W` also implements `Write`, so the writer need not be consumed.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &WorkloadTrace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.kernels.len() as u32).to_le_bytes())?;
    for k in &trace.kernels {
        w.write_all(&(k.ctas.len() as u32).to_le_bytes())?;
        for c in &k.ctas {
            w.write_all(&(c.ops.len() as u32).to_le_bytes())?;
            for op in &c.ops {
                match *op {
                    TraceOp::Access(a) => {
                        w.write_all(&[0, kind_tag(a.kind), scope_tag(a.scope)])?;
                        w.write_all(&a.addr.0.to_le_bytes())?;
                    }
                    TraceOp::Delay(d) => {
                        w.write_all(&[1])?;
                        w.write_all(&d.to_le_bytes())?;
                    }
                    TraceOp::Acquire(s) => w.write_all(&[2, scope_tag(s)])?,
                    TraceOp::Release(s) => w.write_all(&[3, scope_tag(s)])?,
                    TraceOp::SetFlag(flag) => {
                        w.write_all(&[4])?;
                        w.write_all(&flag.to_le_bytes())?;
                    }
                    TraceOp::WaitFlag { flag, count } => {
                        w.write_all(&[5])?;
                        w.write_all(&flag.to_le_bytes())?;
                        w.write_all(&count.to_le_bytes())?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadTraceError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadTraceError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, ReadTraceError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Sanity cap on collection sizes, to fail fast on corrupt headers
/// rather than attempting enormous allocations.
const MAX_COUNT: u32 = 64 * 1024 * 1024;

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure, wrong magic, unsupported
/// version, or structurally invalid content.
pub fn read_trace<R: Read>(mut r: R) -> Result<WorkloadTrace, ReadTraceError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(ReadTraceError::UnsupportedVersion(version));
    }
    let name_len = read_u32(&mut r)?;
    if name_len > MAX_COUNT {
        return Err(ReadTraceError::Corrupt("name length"));
    }
    let mut name = vec![0u8; name_len as usize];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| ReadTraceError::Corrupt("name utf8"))?;

    let kernel_count = read_u32(&mut r)?;
    if kernel_count > MAX_COUNT {
        return Err(ReadTraceError::Corrupt("kernel count"));
    }
    let mut kernels = Vec::with_capacity(kernel_count as usize);
    for _ in 0..kernel_count {
        let cta_count = read_u32(&mut r)?;
        if cta_count > MAX_COUNT {
            return Err(ReadTraceError::Corrupt("cta count"));
        }
        let mut ctas = Vec::with_capacity(cta_count as usize);
        for _ in 0..cta_count {
            let op_count = read_u32(&mut r)?;
            if op_count > MAX_COUNT {
                return Err(ReadTraceError::Corrupt("op count"));
            }
            let mut ops = Vec::with_capacity(op_count as usize);
            for _ in 0..op_count {
                let tag = read_u8(&mut r)?;
                let op = match tag {
                    0 => {
                        let kind = kind_from(read_u8(&mut r)?)?;
                        let scope = scope_from(read_u8(&mut r)?)?;
                        let addr = Addr(read_u64(&mut r)?);
                        TraceOp::Access(Access::new(addr, kind, scope))
                    }
                    1 => TraceOp::Delay(read_u32(&mut r)?),
                    2 => TraceOp::Acquire(scope_from(read_u8(&mut r)?)?),
                    3 => TraceOp::Release(scope_from(read_u8(&mut r)?)?),
                    4 => TraceOp::SetFlag(read_u32(&mut r)?),
                    5 => {
                        let flag = read_u32(&mut r)?;
                        let count = read_u32(&mut r)?;
                        TraceOp::WaitFlag { flag, count }
                    }
                    _ => return Err(ReadTraceError::Corrupt("op tag")),
                };
                ops.push(op);
            }
            ctas.push(Cta::new(ops));
        }
        kernels.push(Kernel::new(ctas));
    }
    Ok(WorkloadTrace::new(name, kernels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadTrace {
        let cta = Cta::new(vec![
            TraceOp::Access(Access::load(Addr(0))),
            TraceOp::Access(Access::new(Addr(256), AccessKind::Store, Scope::Cta)),
            TraceOp::Access(Access::atomic(Addr(512), Scope::Gpu)),
            TraceOp::Delay(42),
            TraceOp::Acquire(Scope::Sys),
            TraceOp::Release(Scope::Gpu),
            TraceOp::SetFlag(7),
            TraceOp::WaitFlag { flag: 7, count: 3 },
        ]);
        WorkloadTrace::new("sample", vec![Kernel::new(vec![cta, Cta::new(vec![])])])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACEFILE..."[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic), "{err}");
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..buf.len() {
            assert!(
                read_trace(&buf[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn rejects_bad_tags() {
        let t = WorkloadTrace::new(
            "x",
            vec![Kernel::new(vec![Cta::new(vec![TraceOp::Delay(1)])])],
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        // The op tag is right after the three u32 counts that follow the
        // header + name.
        let tag_pos = 8 + 4 + 4 + 1 + 4 + 4 + 4;
        buf[tag_pos] = 200;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("op tag")), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReadTraceError::BadMagic.to_string().contains("HMG"));
        assert!(ReadTraceError::Corrupt("x").to_string().contains("x"));
    }
}
