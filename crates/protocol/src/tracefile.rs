//! On-disk serialization of workload traces.
//!
//! A compact little-endian binary format so traces can be generated
//! once, inspected with the `trace-tool` binary, archived alongside
//! experiment results, and replayed bit-identically — the moral
//! equivalent of the program traces that drive the paper's simulator.
//!
//! Layout:
//!
//! ```text
//! magic "HMGTRACE"  version:u32
//! name_len:u32  name:[u8]
//! kernel_count:u32
//!   per kernel: cta_count:u32
//!     per CTA: op_count:u32
//!       per op: tag:u8 payload...
//! ```

use std::io::{self, Read, Write};

use hmg_sim::Addr;

use crate::op::{Access, AccessKind};
use crate::scope::Scope;
use crate::trace::{Cta, Kernel, TraceOp, WorkloadTrace};

/// File magic.
pub const MAGIC: &[u8; 8] = b"HMGTRACE";
/// Current format version.
pub const VERSION: u32 = 1;

/// Where in a trace file a read error was detected: the byte offset the
/// reader had consumed, plus (once inside the body) the kernel/CTA/op
/// indices being decoded — so a corrupt multi-gigabyte trace archive
/// pinpoints the damaged record instead of just saying "corrupt".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracePos {
    /// Bytes consumed from the reader when the error was detected.
    pub offset: u64,
    /// Kernel index being decoded (None while reading the header).
    pub kernel: Option<u32>,
    /// CTA index within the kernel, when applicable.
    pub cta: Option<u32>,
    /// Op index within the CTA, when applicable.
    pub op: Option<u32>,
}

impl std::fmt::Display for TracePos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}", self.offset)?;
        if let Some(k) = self.kernel {
            write!(f, ", kernel {k}")?;
        }
        if let Some(c) = self.cta {
            write!(f, ", cta {c}")?;
        }
        if let Some(o) = self.op {
            write!(f, ", op {o}")?;
        }
        Ok(())
    }
}

/// Errors reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure, with the position reached.
    Io(io::Error, TracePos),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not supported.
    UnsupportedVersion(u32),
    /// A field failed validation at the given position.
    Corrupt(&'static str, TracePos),
}

impl ReadTraceError {
    /// The position the error was detected at, when one is known.
    pub fn pos(&self) -> Option<TracePos> {
        match self {
            ReadTraceError::Io(_, p) | ReadTraceError::Corrupt(_, p) => Some(*p),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e, pos) => write!(f, "i/o error at {pos}: {e}"),
            ReadTraceError::BadMagic => f.write_str("not an HMG trace file"),
            ReadTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            ReadTraceError::Corrupt(what, pos) => {
                write!(f, "corrupt trace file: {what} at {pos}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e, _) => Some(e),
            _ => None,
        }
    }
}

fn scope_tag(s: Scope) -> u8 {
    match s {
        Scope::Cta => 0,
        Scope::Gpu => 1,
        Scope::Sys => 2,
    }
}

fn scope_from(tag: u8) -> Result<Scope, &'static str> {
    Ok(match tag {
        0 => Scope::Cta,
        1 => Scope::Gpu,
        2 => Scope::Sys,
        _ => return Err("scope tag"),
    })
}

fn kind_tag(k: AccessKind) -> u8 {
    match k {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Atomic => 2,
    }
}

fn kind_from(tag: u8) -> Result<AccessKind, &'static str> {
    Ok(match tag {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Atomic,
        _ => return Err("access kind tag"),
    })
}

/// Writes `trace` to `w`. A `BufWriter` is recommended; note that a
/// `&mut W` also implements `Write`, so the writer need not be consumed.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &WorkloadTrace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.kernels.len() as u32).to_le_bytes())?;
    for k in &trace.kernels {
        w.write_all(&(k.ctas.len() as u32).to_le_bytes())?;
        for c in &k.ctas {
            w.write_all(&(c.ops.len() as u32).to_le_bytes())?;
            for op in &c.ops {
                match *op {
                    TraceOp::Access(a) => {
                        w.write_all(&[0, kind_tag(a.kind), scope_tag(a.scope)])?;
                        w.write_all(&a.addr.0.to_le_bytes())?;
                    }
                    TraceOp::Delay(d) => {
                        w.write_all(&[1])?;
                        w.write_all(&d.to_le_bytes())?;
                    }
                    TraceOp::Acquire(s) => w.write_all(&[2, scope_tag(s)])?,
                    TraceOp::Release(s) => w.write_all(&[3, scope_tag(s)])?,
                    TraceOp::SetFlag(flag) => {
                        w.write_all(&[4])?;
                        w.write_all(&flag.to_le_bytes())?;
                    }
                    TraceOp::WaitFlag { flag, count } => {
                        w.write_all(&[5])?;
                        w.write_all(&flag.to_le_bytes())?;
                        w.write_all(&count.to_le_bytes())?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reader wrapper that tracks the byte offset consumed so far and
/// carries the structural position for error reporting.
struct PosReader<R> {
    inner: R,
    pos: TracePos,
}

impl<R: Read> PosReader<R> {
    fn new(inner: R) -> Self {
        PosReader {
            inner,
            pos: TracePos::default(),
        }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ReadTraceError> {
        self.inner
            .read_exact(buf)
            .map_err(|e| ReadTraceError::Io(e, self.pos))?;
        self.pos.offset += buf.len() as u64;
        Ok(())
    }

    fn corrupt(&self, what: &'static str) -> ReadTraceError {
        ReadTraceError::Corrupt(what, self.pos)
    }
}

fn read_u32<R: Read>(r: &mut PosReader<R>) -> Result<u32, ReadTraceError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut PosReader<R>) -> Result<u64, ReadTraceError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8<R: Read>(r: &mut PosReader<R>) -> Result<u8, ReadTraceError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Sanity cap on collection sizes, to fail fast on corrupt headers
/// rather than attempting enormous allocations.
const MAX_COUNT: u32 = 64 * 1024 * 1024;

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure, wrong magic, unsupported
/// version, or structurally invalid content.
pub fn read_trace<R: Read>(r: R) -> Result<WorkloadTrace, ReadTraceError> {
    let mut r = PosReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| ReadTraceError::BadMagic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(ReadTraceError::UnsupportedVersion(version));
    }
    let name_len = read_u32(&mut r)?;
    if name_len > MAX_COUNT {
        return Err(r.corrupt("name length"));
    }
    let mut name = vec![0u8; name_len as usize];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| r.corrupt("name utf8"))?;

    let kernel_count = read_u32(&mut r)?;
    if kernel_count > MAX_COUNT {
        return Err(r.corrupt("kernel count"));
    }
    let mut kernels = Vec::with_capacity(kernel_count as usize);
    for ki in 0..kernel_count {
        r.pos.kernel = Some(ki);
        r.pos.cta = None;
        r.pos.op = None;
        let cta_count = read_u32(&mut r)?;
        if cta_count > MAX_COUNT {
            return Err(r.corrupt("cta count"));
        }
        let mut ctas = Vec::with_capacity(cta_count as usize);
        for ci in 0..cta_count {
            r.pos.cta = Some(ci);
            r.pos.op = None;
            let op_count = read_u32(&mut r)?;
            if op_count > MAX_COUNT {
                return Err(r.corrupt("op count"));
            }
            let mut ops = Vec::with_capacity(op_count as usize);
            for oi in 0..op_count {
                r.pos.op = Some(oi);
                let tag = read_u8(&mut r)?;
                let op = match tag {
                    0 => {
                        let kind = kind_from(read_u8(&mut r)?).map_err(|w| r.corrupt(w))?;
                        let scope = scope_from(read_u8(&mut r)?).map_err(|w| r.corrupt(w))?;
                        let addr = Addr(read_u64(&mut r)?);
                        TraceOp::Access(Access::new(addr, kind, scope))
                    }
                    1 => TraceOp::Delay(read_u32(&mut r)?),
                    2 => TraceOp::Acquire(scope_from(read_u8(&mut r)?).map_err(|w| r.corrupt(w))?),
                    3 => TraceOp::Release(scope_from(read_u8(&mut r)?).map_err(|w| r.corrupt(w))?),
                    4 => TraceOp::SetFlag(read_u32(&mut r)?),
                    5 => {
                        let flag = read_u32(&mut r)?;
                        let count = read_u32(&mut r)?;
                        TraceOp::WaitFlag { flag, count }
                    }
                    _ => return Err(r.corrupt("op tag")),
                };
                ops.push(op);
            }
            ctas.push(Cta::new(ops));
        }
        kernels.push(Kernel::new(ctas));
    }
    Ok(WorkloadTrace::new(name, kernels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadTrace {
        let cta = Cta::new(vec![
            TraceOp::Access(Access::load(Addr(0))),
            TraceOp::Access(Access::new(Addr(256), AccessKind::Store, Scope::Cta)),
            TraceOp::Access(Access::atomic(Addr(512), Scope::Gpu)),
            TraceOp::Delay(42),
            TraceOp::Acquire(Scope::Sys),
            TraceOp::Release(Scope::Gpu),
            TraceOp::SetFlag(7),
            TraceOp::WaitFlag { flag: 7, count: 3 },
        ]);
        WorkloadTrace::new("sample", vec![Kernel::new(vec![cta, Cta::new(vec![])])])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACEFILE..."[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic), "{err}");
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..buf.len() {
            assert!(
                read_trace(&buf[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn rejects_bad_tags() {
        let t = WorkloadTrace::new(
            "x",
            vec![Kernel::new(vec![Cta::new(vec![TraceOp::Delay(1)])])],
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        // The op tag is right after the three u32 counts that follow the
        // header + name.
        let tag_pos = 8 + 4 + 4 + 1 + 4 + 4 + 4;
        buf[tag_pos] = 200;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("op tag", _)), "{err}");
        let pos = err.pos().expect("corrupt errors carry a position");
        assert_eq!(pos.kernel, Some(0));
        assert_eq!(pos.cta, Some(0));
        assert_eq!(pos.op, Some(0));
        assert_eq!(pos.offset as usize, tag_pos + 1, "offset after the bad tag");
    }

    #[test]
    fn truncation_errors_carry_byte_offsets() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).expect("write");
        // Cut inside the op stream: the error must locate the record.
        let err = read_trace(&buf[..buf.len() - 2]).unwrap_err();
        let pos = err.pos().expect("i/o errors carry a position");
        assert!(pos.kernel.is_some(), "{err}");
        assert!(err.to_string().contains("byte "), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReadTraceError::BadMagic.to_string().contains("HMG"));
        let pos = TracePos {
            offset: 37,
            kernel: Some(1),
            cta: Some(2),
            op: Some(3),
        };
        let msg = ReadTraceError::Corrupt("x", pos).to_string();
        assert!(msg.contains('x') && msg.contains("byte 37"), "{msg}");
        assert!(msg.contains("kernel 1") && msg.contains("cta 2") && msg.contains("op 3"));
    }
}
