//! The coherence configurations the evaluation compares (Section VI,
//! plus a CARVE-like prior-work baseline from Section II-A) and the
//! rules each imposes on the cache hierarchy.
//!
//! | Kind            | Routing      | Stale-data handling                   |
//! |-----------------|--------------|---------------------------------------|
//! | `NoPeerCaching` | flat         | remote-GPU data never cached (baseline of Figs. 2/8) |
//! | `SwNonHier`     | flat         | bulk cache invalidation at acquires   |
//! | `SwHier`        | hierarchical | bulk cache invalidation at acquires   |
//! | `Nhcc`          | flat         | hardware directory at system home     |
//! | `Hmg`           | hierarchical | hardware directories at GPU + system homes |
//! | `CarveLike`     | flat         | sharing classifier at home; broadcast invalidations |
//! | `Ideal`         | hierarchical | none — idealized caching upper bound  |

use std::fmt;

use crate::scope::Scope;

/// Which caches an acquire operation must bulk-invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcquireAction {
    /// Nothing to invalidate.
    None,
    /// The issuing SM's L1 only (hardware protocols keep L2s coherent).
    L1,
    /// The issuing SM's L1 and its GPM's L2 (non-hierarchical software).
    L1AndLocalL2,
    /// The issuing SM's L1 and every L2 of the issuing GPU
    /// (hierarchical software at `.sys` scope).
    L1AndAllGpuL2,
}

/// How far a release fence must propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceDomain {
    /// No fence traffic (`.cta` releases, or idealized caching).
    None,
    /// Every L2 of the issuing GPU (hierarchical `.gpu` releases).
    LocalGpu,
    /// Every L2 in the system.
    AllGpms,
}

/// Position of a cache relative to a line's home nodes, used to decide
/// hit and fill permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// An SM's L1.
    L1,
    /// The requester's GPM L2 when it is not a home node for the line.
    LocalL2NonHome,
    /// The line's GPU home L2 within the requester's GPU (hierarchical
    /// protocols only), when it is not also the system home.
    GpuHomeL2,
    /// The line's system home L2.
    SysHomeL2,
}

/// One of the evaluated coherence configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// No caching of remote-GPU data; software coherence within each GPU.
    /// This is the normalization baseline of Figs. 2 and 8.
    NoPeerCaching,
    /// Conventional scoped software coherence, flat across all GPMs.
    SwNonHier,
    /// Scoped software coherence with hierarchical (GPU home) caching.
    SwHier,
    /// The paper's non-hierarchical hardware protocol (Section IV).
    Nhcc,
    /// The paper's hierarchical hardware protocol (Section V).
    Hmg,
    /// A CARVE-like prior-work baseline [14]: remote data cached freely,
    /// coherence filtered by private/read-only/read-write classification
    /// at the home — no sharer tracking, no scope use; stores to shared
    /// data *broadcast* invalidations to every cache (Section II-A).
    CarveLike,
    /// Idealized caching with zero coherence overhead (upper bound).
    Ideal,
}

impl ProtocolKind {
    /// All configurations, in the order Fig. 8 plots them
    /// (baseline first, then SW-NH, NHCC, SW-H, HMG; the CARVE-like
    /// prior-work baseline and the ideal bound close the list).
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::NoPeerCaching,
        ProtocolKind::SwNonHier,
        ProtocolKind::Nhcc,
        ProtocolKind::SwHier,
        ProtocolKind::Hmg,
        ProtocolKind::CarveLike,
        ProtocolKind::Ideal,
    ];

    /// The five configurations Fig. 8 compares against the baseline.
    pub const FIG8: [ProtocolKind; 5] = [
        ProtocolKind::SwNonHier,
        ProtocolKind::Nhcc,
        ProtocolKind::SwHier,
        ProtocolKind::Hmg,
        ProtocolKind::Ideal,
    ];

    /// Short machine-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::NoPeerCaching => "no-peer-caching",
            ProtocolKind::SwNonHier => "sw-nonhier",
            ProtocolKind::SwHier => "sw-hier",
            ProtocolKind::Nhcc => "nhcc",
            ProtocolKind::Hmg => "hmg",
            ProtocolKind::CarveLike => "carve-like",
            ProtocolKind::Ideal => "ideal",
        }
    }

    /// Inverse of [`ProtocolKind::name`]: resolves a short machine
    /// name back to the configuration, e.g. when a sweep cell crosses a
    /// process boundary as command-line arguments.
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The label the paper's figures use.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::NoPeerCaching => "No Peer Caching (baseline)",
            ProtocolKind::SwNonHier => "Non-Hierarchical SW Coherence",
            ProtocolKind::SwHier => "Hierarchical SW Coherence",
            ProtocolKind::Nhcc => "Non-Hierarchical HW Coherence",
            ProtocolKind::Hmg => "HMG Coherence",
            ProtocolKind::CarveLike => "CARVE-like Broadcast Coherence",
            ProtocolKind::Ideal => "Idealized Caching w/o Coherence",
        }
    }

    /// Whether requests route through a per-GPU home node (Section V)
    /// rather than straight to the system home.
    pub fn hierarchical_routing(self) -> bool {
        matches!(
            self,
            ProtocolKind::SwHier | ProtocolKind::Hmg | ProtocolKind::Ideal
        )
    }

    /// Whether home nodes run the Table I hardware directory.
    pub fn has_hw_directory(self) -> bool {
        matches!(self, ProtocolKind::Nhcc | ProtocolKind::Hmg)
    }

    /// Whether coherence is enforced by software bulk invalidation.
    pub fn is_software_coherent(self) -> bool {
        matches!(
            self,
            ProtocolKind::NoPeerCaching | ProtocolKind::SwNonHier | ProtocolKind::SwHier
        )
    }

    /// Whether home nodes run the CARVE-like sharing classifier with
    /// broadcast invalidations.
    pub fn has_broadcast_classifier(self) -> bool {
        matches!(self, ProtocolKind::CarveLike)
    }

    /// Whether all coherence overheads are waived (upper bound only).
    pub fn coherence_free(self) -> bool {
        matches!(self, ProtocolKind::Ideal)
    }

    /// Whether data homed on a *different GPU* may be cached locally.
    pub fn caches_remote_gpu_data(self) -> bool {
        !matches!(self, ProtocolKind::NoPeerCaching)
    }

    /// What an acquire at `scope` must invalidate under this protocol.
    pub fn acquire_action(self, scope: Scope) -> AcquireAction {
        use ProtocolKind::*;
        if scope == Scope::Cta || self == Ideal {
            return AcquireAction::None;
        }
        match self {
            Ideal => AcquireAction::None,
            Nhcc | Hmg | CarveLike => AcquireAction::L1,
            NoPeerCaching | SwNonHier => AcquireAction::L1AndLocalL2,
            SwHier => match scope {
                Scope::Gpu => AcquireAction::L1AndLocalL2,
                Scope::Sys => AcquireAction::L1AndAllGpuL2,
                Scope::Cta => unreachable!(),
            },
        }
    }

    /// How far a release at `scope` must fence.
    ///
    /// Idealized caching pays the same write-drain fences as HMG: kernel
    /// launch and release semantics are machine behavior shared by every
    /// configuration, not a coherence overhead — only invalidations and
    /// acquire-side cache flushing are waived for the upper bound.
    pub fn release_domain(self, scope: Scope) -> FenceDomain {
        if scope == Scope::Cta {
            return FenceDomain::None;
        }
        if self.hierarchical_routing() {
            match scope {
                Scope::Gpu => FenceDomain::LocalGpu,
                Scope::Sys => FenceDomain::AllGpms,
                Scope::Cta => unreachable!(),
            }
        } else {
            // Flat protocols have no intra-GPU ordering point: any GPM in
            // the system may be the home of a .gpu-scoped line.
            FenceDomain::AllGpms
        }
    }

    /// Whether a load with `scope` may hit in a cache at `level`.
    ///
    /// Scoped loads must reach the home node of their scope to guarantee
    /// forward progress (Sections IV-B and V-B); idealized caching waives
    /// this.
    pub fn load_may_hit(self, level: CacheLevel, scope: Scope) -> bool {
        if self == ProtocolKind::Ideal {
            return true;
        }
        match level {
            CacheLevel::L1 | CacheLevel::LocalL2NonHome => scope == Scope::Cta,
            CacheLevel::GpuHomeL2 => scope <= Scope::Gpu,
            CacheLevel::SysHomeL2 => true,
        }
    }

    /// Whether a response may fill a cache at `level`.
    /// `same_gpu_as_sys_home` says whether the filling cache sits on the
    /// same GPU as the line's system home.
    pub fn may_fill(self, level: CacheLevel, same_gpu_as_sys_home: bool) -> bool {
        match self {
            ProtocolKind::NoPeerCaching => match level {
                CacheLevel::SysHomeL2 => true,
                _ => same_gpu_as_sys_home,
            },
            _ => {
                // Hierarchical protocols fill the GPU home on the response
                // path; flat protocols never present a GpuHomeL2 level.
                let _ = level;
                true
            }
        }
    }

    /// The per-address fallback configuration fail-in-place
    /// reconfiguration drops an address into when its DRAM partition
    /// dies: the paper's no-peer-caching baseline. No peer copy of a
    /// degraded address is ever cached, so no coherence state needs to
    /// be maintained for it — correct data, honestly worse bandwidth.
    pub const DEGRADED: ProtocolKind = ProtocolKind::NoPeerCaching;

    /// [`ProtocolKind::load_may_hit`] under degraded (fail-in-place)
    /// mode, regardless of the protocol the rest of the run uses: only
    /// the (re-homed) system home may serve the address, except for
    /// CTA-scoped private reuse which was already coherence-free.
    pub fn degraded_load_may_hit(level: CacheLevel, scope: Scope) -> bool {
        Self::DEGRADED.load_may_hit(level, scope)
    }

    /// [`ProtocolKind::may_fill`] under degraded (fail-in-place) mode:
    /// peer caches never fill a degraded address, so no stale copy can
    /// form after the conservative broadcast scrub.
    pub fn degraded_may_fill(level: CacheLevel, same_gpu_as_sys_home: bool) -> bool {
        Self::DEGRADED.may_fill(level, same_gpu_as_sys_home)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_mode_is_the_no_peer_caching_baseline() {
        // Degraded addresses follow the baseline's rules no matter what
        // protocol the rest of the run uses.
        for level in [
            CacheLevel::L1,
            CacheLevel::LocalL2NonHome,
            CacheLevel::GpuHomeL2,
            CacheLevel::SysHomeL2,
        ] {
            for scope in [Scope::Cta, Scope::Gpu, Scope::Sys] {
                assert_eq!(
                    ProtocolKind::degraded_load_may_hit(level, scope),
                    ProtocolKind::NoPeerCaching.load_may_hit(level, scope)
                );
            }
            for same in [false, true] {
                assert_eq!(
                    ProtocolKind::degraded_may_fill(level, same),
                    ProtocolKind::NoPeerCaching.may_fill(level, same)
                );
            }
        }
        // The rules that matter: peers never fill, only the system home
        // serves system-scoped loads.
        assert!(!ProtocolKind::degraded_may_fill(
            CacheLevel::LocalL2NonHome,
            false
        ));
        assert!(ProtocolKind::degraded_may_fill(
            CacheLevel::SysHomeL2,
            false
        ));
        assert!(!ProtocolKind::degraded_load_may_hit(
            CacheLevel::GpuHomeL2,
            Scope::Sys
        ));
        assert!(ProtocolKind::degraded_load_may_hit(
            CacheLevel::SysHomeL2,
            Scope::Sys
        ));
    }

    #[test]
    fn routing_classification() {
        assert!(!ProtocolKind::NoPeerCaching.hierarchical_routing());
        assert!(!ProtocolKind::SwNonHier.hierarchical_routing());
        assert!(!ProtocolKind::Nhcc.hierarchical_routing());
        assert!(ProtocolKind::SwHier.hierarchical_routing());
        assert!(ProtocolKind::Hmg.hierarchical_routing());
        assert!(ProtocolKind::Ideal.hierarchical_routing());
    }

    #[test]
    fn directory_classification() {
        for p in ProtocolKind::ALL {
            assert_eq!(
                p.has_hw_directory(),
                matches!(p, ProtocolKind::Nhcc | ProtocolKind::Hmg)
            );
            assert_eq!(p.has_broadcast_classifier(), p == ProtocolKind::CarveLike);
        }
    }

    #[test]
    fn carve_is_flat_hardware_like() {
        let p = ProtocolKind::CarveLike;
        assert!(!p.hierarchical_routing());
        assert!(!p.has_hw_directory());
        assert!(!p.is_software_coherent());
        assert!(p.caches_remote_gpu_data());
        assert_eq!(p.acquire_action(Scope::Sys), AcquireAction::L1);
        assert_eq!(p.release_domain(Scope::Gpu), FenceDomain::AllGpms);
    }

    #[test]
    fn cta_acquire_is_free_everywhere() {
        for p in ProtocolKind::ALL {
            assert_eq!(p.acquire_action(Scope::Cta), AcquireAction::None);
        }
    }

    #[test]
    fn hw_acquires_touch_only_l1() {
        for s in [Scope::Gpu, Scope::Sys] {
            assert_eq!(ProtocolKind::Nhcc.acquire_action(s), AcquireAction::L1);
            assert_eq!(ProtocolKind::Hmg.acquire_action(s), AcquireAction::L1);
        }
    }

    #[test]
    fn sw_nonhier_acquires_invalidate_local_l2_only() {
        // §VI: in the non-hierarchical protocol, .sys loads need not
        // invalidate L2s of other GPMs in the same GPU.
        for s in [Scope::Gpu, Scope::Sys] {
            assert_eq!(
                ProtocolKind::SwNonHier.acquire_action(s),
                AcquireAction::L1AndLocalL2
            );
        }
    }

    #[test]
    fn sw_hier_sys_acquire_invalidates_whole_gpu() {
        assert_eq!(
            ProtocolKind::SwHier.acquire_action(Scope::Gpu),
            AcquireAction::L1AndLocalL2
        );
        assert_eq!(
            ProtocolKind::SwHier.acquire_action(Scope::Sys),
            AcquireAction::L1AndAllGpuL2
        );
    }

    #[test]
    fn ideal_has_no_acquire_actions_but_pays_release_drains() {
        for s in Scope::ALL {
            assert_eq!(ProtocolKind::Ideal.acquire_action(s), AcquireAction::None);
        }
        assert_eq!(
            ProtocolKind::Ideal.release_domain(Scope::Gpu),
            FenceDomain::LocalGpu
        );
        assert_eq!(
            ProtocolKind::Ideal.release_domain(Scope::Sys),
            FenceDomain::AllGpms
        );
        assert!(ProtocolKind::Ideal.coherence_free());
    }

    #[test]
    fn hierarchical_gpu_release_stays_on_gpu() {
        // §V-B: a .gpu-scoped release need not cross the inter-GPU network.
        assert_eq!(
            ProtocolKind::Hmg.release_domain(Scope::Gpu),
            FenceDomain::LocalGpu
        );
        assert_eq!(
            ProtocolKind::Hmg.release_domain(Scope::Sys),
            FenceDomain::AllGpms
        );
        assert_eq!(
            ProtocolKind::Nhcc.release_domain(Scope::Gpu),
            FenceDomain::AllGpms
        );
    }

    #[test]
    fn scoped_loads_must_miss_below_their_home() {
        for p in [ProtocolKind::Nhcc, ProtocolKind::Hmg, ProtocolKind::SwHier] {
            assert!(p.load_may_hit(CacheLevel::L1, Scope::Cta));
            assert!(!p.load_may_hit(CacheLevel::L1, Scope::Gpu));
            assert!(!p.load_may_hit(CacheLevel::LocalL2NonHome, Scope::Sys));
            assert!(p.load_may_hit(CacheLevel::GpuHomeL2, Scope::Gpu));
            assert!(!p.load_may_hit(CacheLevel::GpuHomeL2, Scope::Sys));
            assert!(p.load_may_hit(CacheLevel::SysHomeL2, Scope::Sys));
        }
    }

    #[test]
    fn ideal_hits_anywhere() {
        for lvl in [
            CacheLevel::L1,
            CacheLevel::LocalL2NonHome,
            CacheLevel::GpuHomeL2,
            CacheLevel::SysHomeL2,
        ] {
            assert!(ProtocolKind::Ideal.load_may_hit(lvl, Scope::Sys));
        }
    }

    #[test]
    fn baseline_never_fills_remote_gpu_data() {
        let p = ProtocolKind::NoPeerCaching;
        assert!(!p.may_fill(CacheLevel::L1, false));
        assert!(!p.may_fill(CacheLevel::LocalL2NonHome, false));
        assert!(p.may_fill(CacheLevel::LocalL2NonHome, true));
        assert!(p.may_fill(CacheLevel::SysHomeL2, false));
        assert!(!p.caches_remote_gpu_data());
    }

    #[test]
    fn everyone_else_fills_freely() {
        for p in [
            ProtocolKind::SwNonHier,
            ProtocolKind::SwHier,
            ProtocolKind::Nhcc,
            ProtocolKind::Hmg,
            ProtocolKind::Ideal,
        ] {
            assert!(p.may_fill(CacheLevel::LocalL2NonHome, false));
            assert!(p.caches_remote_gpu_data());
        }
    }

    #[test]
    fn names_and_labels_are_unique_and_nonempty() {
        let mut names: Vec<_> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
        for p in ProtocolKind::ALL {
            assert!(!p.label().is_empty());
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn from_name_inverts_name() {
        for p in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_name(p.name()), Some(p));
        }
        assert_eq!(ProtocolKind::from_name("mesi"), None);
    }
}
