//! On-wire sizes of protocol messages.
//!
//! The paper notes that invalidation messages are "relatively small
//! compared to a GPU cache line" (§VII-A); these sizes make that concrete
//! so the fabric can charge serialization accurately and Fig. 11 can
//! report invalidation bandwidth in GB/s.

/// Byte sizes for every message the protocols exchange.
///
/// # Example
///
/// ```
/// use hmg_protocol::MsgSizes;
///
/// let m = MsgSizes::paper_default();
/// assert_eq!(m.load_resp, m.header + 128); // response carries a line
/// assert!(m.inv < 128 / 4, "invalidations are far smaller than lines");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgSizes {
    /// Request/response header: address, ids, opcode.
    pub header: u32,
    /// Load or atomic request.
    pub load_req: u32,
    /// Load response: header plus one cache line.
    pub load_resp: u32,
    /// Store write-through: header plus one cache line of data.
    pub store: u32,
    /// Atomic request: header plus operand.
    pub atomic_req: u32,
    /// Atomic response: header plus result word.
    pub atomic_resp: u32,
    /// Invalidation message (header only — no data, no ack).
    pub inv: u32,
    /// Release fence and its acknowledgment.
    pub fence: u32,
    /// Negative acknowledgment: a busy home rejects a request and the
    /// requester retries after a backoff (header only — it carries just
    /// the address and ids needed to re-issue).
    pub nack: u32,
}

impl MsgSizes {
    /// Bytes of the 16 B header reserved for the end-to-end message
    /// checksum (a CRC over header and payload, verified at the
    /// receiver before the message is acted on). The checksum lives
    /// *inside* the header rather than extending it, so enabling or
    /// disabling integrity protection never changes on-wire sizes or
    /// serialization timing — only whether a corrupted delivery is
    /// detected (and replayed) or consumed silently.
    pub const CHECKSUM_BYTES: u32 = 4;

    /// Sizes for 128-byte cache lines: 16 B headers, full-line store
    /// payloads, 16 B invalidations, 8 B fences/acks.
    pub fn paper_default() -> Self {
        MsgSizes::for_line_bytes(128)
    }

    /// Sizes scaled to a different cache-line size.
    pub fn for_line_bytes(line_bytes: u32) -> Self {
        let header = 16;
        MsgSizes {
            header,
            load_req: header,
            load_resp: header + line_bytes,
            store: header + line_bytes,
            atomic_req: header + 8,
            atomic_resp: header + 8,
            inv: header,
            fence: 8,
            nack: header,
        }
    }
}

impl Default for MsgSizes {
    fn default() -> Self {
        MsgSizes::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_sizes() {
        let m = MsgSizes::paper_default();
        assert_eq!(m.header, 16);
        assert_eq!(m.load_req, 16);
        assert_eq!(m.load_resp, 144);
        assert_eq!(m.store, 144);
        assert_eq!(m.inv, 16);
        assert_eq!(m.fence, 8);
        assert_eq!(m.nack, 16);
    }

    #[test]
    fn scales_with_line_size() {
        let m = MsgSizes::for_line_bytes(64);
        assert_eq!(m.load_resp, 80);
        assert_eq!(m.store, 80);
    }

    #[test]
    fn inv_much_smaller_than_data() {
        let m = MsgSizes::paper_default();
        assert!(m.inv * 4 < m.load_resp);
    }

    #[test]
    fn checksum_fits_inside_the_header() {
        // The checksum must never grow the header: integrity on/off
        // must be timing-neutral on the wire.
        let m = MsgSizes::paper_default();
        assert!(MsgSizes::CHECKSUM_BYTES < m.header);
    }
}
