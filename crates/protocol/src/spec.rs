//! Guarded-action protocol specification: Table I as first-class data.
//!
//! [`crate::table`] gives Table I as a pure *function*; this module
//! promotes it to a pure *description*: a flat list of guarded-action
//! rows `(state, event, guard) → (actions, next_state)` over a small
//! closed action vocabulary. The rows are `static` data — no allocation,
//! no I/O — and every other layer derives from them:
//!
//! * [`crate::table::try_transition`] compiles the matching row into the
//!   legacy [`crate::Outcome`] shape (so the engine's conformance
//!   replay, the audit graph checks, and the check oracle all read the
//!   same rows);
//! * the GPU engine's directory paths branch on [`SpecRow::actions`]
//!   instead of hand-coded per-event match arms;
//! * `hmg-audit`'s explicit-state model checker enumerates the rows to
//!   generate its transition relation, so a spec edit is re-proved safe
//!   (single-writer, conservation, no stuck states) before any cycle is
//!   simulated.
//!
//! Guards model *arbitration* at a busy directory home — the one place
//! the protocol's behavior is conditional on something other than
//! `(state, event)`. Two arbitration disciplines exist as spec-only
//! variants: classic NACK/retry (send a NACK, requester backs off and
//! re-issues) and phase-priority (defer the request locally and replay
//! it when the home drains, after Li & An's phase-priority directory
//! arbitration). Neither touches the directory entry, which is why both
//! are expressible as guarded rows with `next == state`.

use crate::table::{DirEvent, DirState};

/// Arbitration discipline a directory home applies to requests that
/// arrive while its ingress port is congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arbitration {
    /// Reject with a NACK message; the requester re-issues after an
    /// exponential backoff (the PR 7 flow-control behavior).
    #[default]
    NackRetry,
    /// Keep the request at the home and replay it after a fixed
    /// quantum, in arrival order (phase-priority arbitration). No NACK
    /// traffic, no requester-side backoff state.
    PhasePriority,
}

impl Arbitration {
    /// Both disciplines, NACK first (the default).
    pub const ALL: [Arbitration; 2] = [Arbitration::NackRetry, Arbitration::PhasePriority];

    /// Stable lower-case name used by CLI flags and tweak specs.
    pub fn name(self) -> &'static str {
        match self {
            Arbitration::NackRetry => "nack",
            Arbitration::PhasePriority => "phase",
        }
    }

    /// Inverse of [`Arbitration::name`].
    pub fn from_name(s: &str) -> Option<Arbitration> {
        Arbitration::ALL.into_iter().find(|a| a.name() == s)
    }
}

/// One protocol variant the spec describes: a base protocol (flat NHCC
/// or hierarchical HMG) crossed with an arbitration discipline.
///
/// This is deliberately *not* [`crate::ProtocolKind`]: the fig. 8 matrix
/// enumerates whole coherence configurations (software schemes, ideal,
/// etc.), while the spec only describes the two hardware-directory
/// protocols — arbitration is an orthogonal knob on top of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecVariant {
    /// Flat NHCC directory, NACK/retry arbitration.
    Nhcc,
    /// Hierarchical HMG directory, NACK/retry arbitration.
    Hmg,
    /// Flat NHCC directory, phase-priority arbitration.
    NhccPhase,
    /// Hierarchical HMG directory, phase-priority arbitration.
    HmgPhase,
}

impl SpecVariant {
    /// Every variant, in audit/report order.
    pub const ALL: [SpecVariant; 4] = [
        SpecVariant::Nhcc,
        SpecVariant::Hmg,
        SpecVariant::NhccPhase,
        SpecVariant::HmgPhase,
    ];

    /// Stable name used by `experiments audit --protocol` and reports.
    pub fn name(self) -> &'static str {
        match self {
            SpecVariant::Nhcc => "nhcc",
            SpecVariant::Hmg => "hmg",
            SpecVariant::NhccPhase => "nhcc-phase",
            SpecVariant::HmgPhase => "hmg-phase",
        }
    }

    /// Inverse of [`SpecVariant::name`].
    pub fn from_name(s: &str) -> Option<SpecVariant> {
        SpecVariant::ALL.into_iter().find(|v| v.name() == s)
    }

    /// Whether the variant defines the hierarchical `Invalidation`
    /// column (GPU home nodes forward system-home invalidations down).
    pub fn hmg(self) -> bool {
        matches!(self, SpecVariant::Hmg | SpecVariant::HmgPhase)
    }

    /// The arbitration discipline of this variant.
    pub fn arbitration(self) -> Arbitration {
        match self {
            SpecVariant::Nhcc | SpecVariant::Hmg => Arbitration::NackRetry,
            SpecVariant::NhccPhase | SpecVariant::HmgPhase => Arbitration::PhasePriority,
        }
    }

    /// The variant describing `(hmg, arbitration)`.
    pub fn of(hmg: bool, arb: Arbitration) -> SpecVariant {
        match (hmg, arb) {
            (false, Arbitration::NackRetry) => SpecVariant::Nhcc,
            (true, Arbitration::NackRetry) => SpecVariant::Hmg,
            (false, Arbitration::PhasePriority) => SpecVariant::NhccPhase,
            (true, Arbitration::PhasePriority) => SpecVariant::HmgPhase,
        }
    }
}

/// Row guard: the condition, beyond `(state, event)`, under which a row
/// fires. Rows are matched first-to-last, so a `HomeBusy` row shadows
/// the unconditional row for the same cell when the home is congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guard {
    /// Fires unconditionally.
    Always,
    /// Fires only when the home's ingress backlog exceeds the
    /// flow-control threshold (requests from other nodes only; a home
    /// never throttles itself).
    HomeBusy,
}

/// Evaluation context for [`Guard`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardCtx {
    /// Whether the home node's ingress backlog is over threshold.
    pub home_busy: bool,
}

impl GuardCtx {
    /// The uncongested context: only `Always` rows fire. This is what
    /// the table adapter and conformance replay use, since they check
    /// directory *transitions* (arbitration rows never transition).
    pub const FREE: GuardCtx = GuardCtx { home_busy: false };

    /// The congested context: `HomeBusy` rows shadow their cells.
    pub const BUSY: GuardCtx = GuardCtx { home_busy: true };
}

impl Guard {
    /// Whether the guard holds in `ctx`.
    pub fn eval(self, ctx: GuardCtx) -> bool {
        match self {
            Guard::Always => true,
            Guard::HomeBusy => ctx.home_busy,
        }
    }
}

/// The closed action vocabulary. Everything a directory home can do is
/// one of these; there is deliberately no "wait for ack" action — the
/// type system itself encodes the paper's ack-free, two-stable-state
/// claim (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Record the request sender as a sharer of the entry.
    AddSharer,
    /// Drop every tracked sharer (entry deallocation).
    RemoveAllSharers,
    /// Send an invalidation to every tracked sharer.
    InvAllSharers,
    /// Send an invalidation to every tracked sharer except the sender.
    InvOtherSharers,
    /// HMG only: forward a system-home invalidation to every local
    /// (GPM-level) sharer tracked by a GPU home node.
    ForwardInv,
    /// Flush any dirty local copy to memory (write-back policy only;
    /// a write-through configuration has nothing to flush).
    Writeback,
    /// Reject the request with a NACK message; the requester re-issues
    /// after exponential backoff.
    Nack,
    /// Hold the request at the home and replay it after a fixed quantum
    /// (phase-priority arbitration).
    Defer,
}

/// One guarded-action row: when `event` hits an entry in `state` and
/// `guard` holds, perform `actions` and move to `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecRow {
    /// Stable state the entry is in.
    pub state: DirState,
    /// Event observed.
    pub event: DirEvent,
    /// Condition beyond `(state, event)`.
    pub guard: Guard,
    /// Actions to perform, in order.
    pub actions: &'static [Action],
    /// Stable state the entry moves to.
    pub next: DirState,
    /// Whether the row exists only under hierarchical (HMG) variants.
    pub hmg_only: bool,
    /// Arbitration discipline the row belongs to, or `None` for rows
    /// shared by every discipline.
    pub arbitration: Option<Arbitration>,
}

impl SpecRow {
    /// Whether `actions` contains `a`.
    pub fn has(&self, a: Action) -> bool {
        self.actions.contains(&a)
    }

    /// Whether the row belongs to `variant`.
    pub fn in_variant(&self, variant: SpecVariant) -> bool {
        (!self.hmg_only || variant.hmg())
            && self
                .arbitration
                .is_none_or(|arb| arb == variant.arbitration())
    }
}

/// Shorthand for unconditional rows shared by every arbitration.
const fn row(
    state: DirState,
    event: DirEvent,
    actions: &'static [Action],
    next: DirState,
    hmg_only: bool,
) -> SpecRow {
    SpecRow {
        state,
        event,
        guard: Guard::Always,
        actions,
        next,
        hmg_only,
        arbitration: None,
    }
}

/// Guarded arbitration row: remote request at a busy home. Never
/// touches the entry (`next == state`, no sharer/invalidation action).
const fn busy_row(
    state: DirState,
    event: DirEvent,
    arb: Arbitration,
    action: &'static [Action],
) -> SpecRow {
    SpecRow {
        state,
        event,
        guard: Guard::HomeBusy,
        actions: action,
        next: state,
        hmg_only: false,
        arbitration: Some(arb),
    }
}

use DirEvent::*;
use DirState::*;

/// Every row of the spec, across all variants. Guarded (`HomeBusy`)
/// rows come first so first-match lookup gives them precedence; the
/// unconditional rows then transcribe Table I cell by cell. Cells
/// absent from this list — `(Invalid, Replace)` everywhere, and the
/// `Invalidation` column outside HMG — are *undefined*: reaching them
/// is a protocol bug, which is exactly what the audit layers check.
pub static ROWS: &[SpecRow] = &[
    // Arbitration at a congested home: only remote requests are
    // throttled (a home never NACKs or defers its own accesses).
    busy_row(Invalid, RemoteLoad, Arbitration::NackRetry, &[Action::Nack]),
    busy_row(
        Invalid,
        RemoteStore,
        Arbitration::NackRetry,
        &[Action::Nack],
    ),
    busy_row(Valid, RemoteLoad, Arbitration::NackRetry, &[Action::Nack]),
    busy_row(Valid, RemoteStore, Arbitration::NackRetry, &[Action::Nack]),
    busy_row(
        Invalid,
        RemoteLoad,
        Arbitration::PhasePriority,
        &[Action::Defer],
    ),
    busy_row(
        Invalid,
        RemoteStore,
        Arbitration::PhasePriority,
        &[Action::Defer],
    ),
    busy_row(
        Valid,
        RemoteLoad,
        Arbitration::PhasePriority,
        &[Action::Defer],
    ),
    busy_row(
        Valid,
        RemoteStore,
        Arbitration::PhasePriority,
        &[Action::Defer],
    ),
    // Table I, row I (entry absent).
    row(Invalid, LocalLoad, &[], Invalid, false),
    row(Invalid, LocalStore, &[], Invalid, false),
    row(Invalid, RemoteLoad, &[Action::AddSharer], Valid, false),
    row(Invalid, RemoteStore, &[Action::AddSharer], Valid, false),
    row(Invalid, Invalidation, &[], Invalid, true),
    // Table I, row V (entry present, sharer list meaningful).
    row(Valid, LocalLoad, &[], Valid, false),
    row(
        Valid,
        LocalStore,
        &[Action::InvAllSharers, Action::RemoveAllSharers],
        Invalid,
        false,
    ),
    row(Valid, RemoteLoad, &[Action::AddSharer], Valid, false),
    row(
        Valid,
        RemoteStore,
        &[Action::AddSharer, Action::InvOtherSharers],
        Valid,
        false,
    ),
    row(
        Valid,
        Replace,
        &[
            Action::InvAllSharers,
            Action::RemoveAllSharers,
            Action::Writeback,
        ],
        Invalid,
        false,
    ),
    row(
        Valid,
        Invalidation,
        &[Action::ForwardInv, Action::RemoveAllSharers],
        Invalid,
        true,
    ),
];

/// A protocol variant's view of the spec: the rows of [`ROWS`] that
/// belong to the variant, with first-match guarded lookup.
///
/// `Copy` and allocation-free: a `ProtocolSpec` is just the variant tag
/// plus an optional injected mutation, so it can sit on hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// The variant this view selects.
    pub variant: SpecVariant,
    /// Audit-injection hook: when set, the `(Valid, Invalidation)` row
    /// loses its `ForwardInv` action — the seeded model-checker
    /// violation (`spec-drop-forward`). Never set outside audits.
    drop_forward: bool,
}

/// The `(Valid, Invalidation)` row with `ForwardInv` removed, substituted
/// by [`ProtocolSpec::with_forward_dropped`] views.
static BROKEN_FORWARD_ROW: SpecRow = row(
    Valid,
    Invalidation,
    &[Action::RemoveAllSharers],
    Invalid,
    true,
);

impl ProtocolSpec {
    /// The spec restricted to `variant`.
    pub fn for_variant(variant: SpecVariant) -> ProtocolSpec {
        ProtocolSpec {
            variant,
            drop_forward: false,
        }
    }

    /// Convenience: the variant for `(hmg, arbitration)`.
    pub fn of(hmg: bool, arb: Arbitration) -> ProtocolSpec {
        ProtocolSpec::for_variant(SpecVariant::of(hmg, arb))
    }

    /// A deliberately broken copy of the spec: the HMG inv-forward
    /// action is dropped from `(Valid, Invalidation)`. Used by the
    /// `spec-drop-forward` audit injection to prove the model checker
    /// actually catches real protocol bugs.
    pub fn with_forward_dropped(self) -> ProtocolSpec {
        ProtocolSpec {
            drop_forward: true,
            ..self
        }
    }

    /// Resolves one row through the injection hook.
    fn resolve(self, r: &'static SpecRow) -> &'static SpecRow {
        if self.drop_forward && (r.state, r.event, r.guard) == (Valid, Invalidation, Guard::Always)
        {
            &BROKEN_FORWARD_ROW
        } else {
            r
        }
    }

    /// First row of the variant matching `(state, event)` whose guard
    /// holds in `ctx`, or `None` when the spec leaves the cell
    /// undefined.
    pub fn row(self, state: DirState, event: DirEvent, ctx: GuardCtx) -> Option<&'static SpecRow> {
        ROWS.iter()
            .find(|r| {
                r.in_variant(self.variant)
                    && r.state == state
                    && r.event == event
                    && r.guard.eval(ctx)
            })
            .map(|r| self.resolve(r))
    }

    /// Whether `(state, event)` has any row in this variant (under any
    /// guard): the cell is *legal*, i.e. reaching it is not a bug.
    pub fn legal(self, state: DirState, event: DirEvent) -> bool {
        ROWS.iter()
            .any(|r| r.in_variant(self.variant) && r.state == state && r.event == event)
    }

    /// All `(state, event)` cells that are legal in this variant, in
    /// dense [`crate::row_index`] order. This is the set conformance
    /// coverage and the check oracle consider "must be reachable".
    pub fn legal_rows(self) -> Vec<(DirState, DirEvent)> {
        (0..crate::table::NUM_ROWS)
            .map(crate::table::row_of)
            .filter(|&(s, e)| self.legal(s, e))
            .collect()
    }

    /// Every row of this variant, in spec order (guarded rows first).
    pub fn rows(self) -> impl Iterator<Item = &'static SpecRow> {
        let v = self.variant;
        ROWS.iter()
            .filter(move |r| r.in_variant(v))
            .map(move |r| self.resolve(r))
    }
}

/// Compiles the unconditional row for `(state, event)` into the legacy
/// [`crate::Outcome`] shape. This is what [`crate::try_transition`]
/// calls: the function form of Table I is now a *view* of the spec, so
/// the engine's conformance replay, the audit graph checks, and the
/// check oracle all answer from the same rows.
pub fn outcome_of(state: DirState, event: DirEvent, hmg: bool) -> Option<crate::Outcome> {
    let spec = ProtocolSpec::of(hmg, Arbitration::NackRetry);
    let r = spec.row(state, event, GuardCtx::FREE)?;
    Some(crate::Outcome {
        next: r.next,
        add_sharer: r.has(Action::AddSharer),
        inv_all_sharers: r.has(Action::InvAllSharers) || r.has(Action::ForwardInv),
        inv_other_sharers: r.has(Action::InvOtherSharers),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_round_trip() {
        for v in SpecVariant::ALL {
            assert_eq!(SpecVariant::from_name(v.name()), Some(v));
            assert_eq!(SpecVariant::of(v.hmg(), v.arbitration()), v);
        }
        for a in Arbitration::ALL {
            assert_eq!(Arbitration::from_name(a.name()), Some(a));
        }
        assert_eq!(SpecVariant::from_name("carve"), None);
        assert_eq!(Arbitration::from_name("defer"), None);
    }

    #[test]
    fn guarded_rows_shadow_only_when_busy() {
        for v in SpecVariant::ALL {
            let spec = ProtocolSpec::for_variant(v);
            let free = spec.row(Valid, RemoteStore, GuardCtx::FREE).unwrap();
            assert_eq!(free.guard, Guard::Always);
            assert!(free.has(Action::AddSharer));
            let busy = spec.row(Valid, RemoteStore, GuardCtx::BUSY).unwrap();
            assert_eq!(busy.guard, Guard::HomeBusy);
            assert_eq!(busy.next, Valid, "arbitration never transitions");
            match v.arbitration() {
                Arbitration::NackRetry => assert!(busy.has(Action::Nack)),
                Arbitration::PhasePriority => assert!(busy.has(Action::Defer)),
            }
        }
    }

    #[test]
    fn local_and_replace_cells_are_never_throttled() {
        let spec = ProtocolSpec::for_variant(SpecVariant::HmgPhase);
        for (s, e) in [
            (Invalid, LocalLoad),
            (Valid, LocalStore),
            (Valid, Replace),
            (Valid, Invalidation),
        ] {
            let r = spec.row(s, e, GuardCtx::BUSY).unwrap();
            assert_eq!(r.guard, Guard::Always, "{s:?}/{e:?}");
        }
    }

    #[test]
    fn legality_is_guard_independent_and_matches_the_table() {
        for v in SpecVariant::ALL {
            let spec = ProtocolSpec::for_variant(v);
            for s in DirState::ALL {
                for e in DirEvent::ALL {
                    assert_eq!(
                        spec.legal(s, e),
                        crate::try_transition(s, e, v.hmg()).is_some(),
                        "{s:?}/{e:?} {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn legal_rows_counts_match_the_variants() {
        // 9 legal cells flat, 11 under HMG (the Invalidation column).
        assert_eq!(
            ProtocolSpec::for_variant(SpecVariant::Nhcc)
                .legal_rows()
                .len(),
            9
        );
        assert_eq!(
            ProtocolSpec::for_variant(SpecVariant::Hmg)
                .legal_rows()
                .len(),
            11
        );
        // Arbitration adds guarded rows to existing cells, never new cells.
        assert_eq!(
            ProtocolSpec::for_variant(SpecVariant::Nhcc).legal_rows(),
            ProtocolSpec::for_variant(SpecVariant::NhccPhase).legal_rows()
        );
        assert_eq!(
            ProtocolSpec::for_variant(SpecVariant::Hmg).legal_rows(),
            ProtocolSpec::for_variant(SpecVariant::HmgPhase).legal_rows()
        );
    }

    #[test]
    fn rows_iterator_respects_variant_membership() {
        let nhcc: Vec<_> = ProtocolSpec::for_variant(SpecVariant::Nhcc)
            .rows()
            .collect();
        assert!(nhcc.iter().all(|r| !r.hmg_only));
        assert!(nhcc.iter().all(|r| !r.has(Action::Defer)));
        let hmg_phase: Vec<_> = ProtocolSpec::for_variant(SpecVariant::HmgPhase)
            .rows()
            .collect();
        assert!(hmg_phase.iter().any(|r| r.has(Action::ForwardInv)));
        assert!(hmg_phase.iter().any(|r| r.has(Action::Defer)));
        assert!(hmg_phase.iter().all(|r| !r.has(Action::Nack)));
    }

    #[test]
    fn dropped_forward_injection_only_affects_the_one_row() {
        let spec = ProtocolSpec::for_variant(SpecVariant::Hmg).with_forward_dropped();
        let r = spec.row(Valid, Invalidation, GuardCtx::FREE).unwrap();
        assert!(!r.has(Action::ForwardInv), "forward must be gone");
        assert!(r.has(Action::RemoveAllSharers), "deallocation survives");
        let clean = ProtocolSpec::for_variant(SpecVariant::Hmg);
        for s in DirState::ALL {
            for e in DirEvent::ALL {
                if (s, e) == (Valid, Invalidation) {
                    continue;
                }
                assert_eq!(
                    spec.row(s, e, GuardCtx::FREE),
                    clean.row(s, e, GuardCtx::FREE),
                    "{s:?}/{e:?}"
                );
            }
        }
    }

    #[test]
    fn no_row_carries_a_wait_or_ack() {
        // The vocabulary simply has no ack/wait action; document the
        // closed set so adding one is a conscious, reviewed act.
        for r in ROWS {
            for a in r.actions {
                assert!(matches!(
                    a,
                    Action::AddSharer
                        | Action::RemoveAllSharers
                        | Action::InvAllSharers
                        | Action::InvOtherSharers
                        | Action::ForwardInv
                        | Action::Writeback
                        | Action::Nack
                        | Action::Defer
                ));
            }
        }
    }

    #[test]
    fn deallocating_rows_always_remove_their_sharers() {
        // Any unconditional row that ends Invalid from Valid must drop
        // its sharers — a Valid→Invalid transition that leaks tracked
        // sharers would desynchronize the directory occupancy.
        for r in ROWS {
            if r.guard == Guard::Always && r.state == Valid && r.next == Invalid {
                assert!(r.has(Action::RemoveAllSharers), "{r:?}");
            }
        }
    }
}
