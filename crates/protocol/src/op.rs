//! Memory access kinds and scoped accesses.

use std::fmt;

use hmg_sim::Addr;

use crate::scope::Scope;

/// What an access does to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of one cache line.
    Load,
    /// A write (write-through in the evaluated configuration).
    Store,
    /// An atomic read-modify-write — always performed at the home node
    /// for its scope, and treated as a store by the directory (Table I).
    Atomic,
}

impl AccessKind {
    /// Whether the access writes memory (stores and atomics).
    #[inline]
    pub fn writes(self) -> bool {
        !matches!(self, AccessKind::Load)
    }

    /// Whether the access produces a response carrying data to the
    /// requester (loads and atomics).
    #[inline]
    pub fn wants_response(self) -> bool {
        !matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "ld",
            AccessKind::Store => "st",
            AccessKind::Atomic => "atom",
        };
        f.write_str(s)
    }
}

/// One warp-coalesced memory access: an address, a kind, and the scope
/// annotation (plain accesses carry `.cta`).
///
/// # Example
///
/// ```
/// use hmg_protocol::{Access, AccessKind, Scope};
/// use hmg_sim::Addr;
///
/// let a = Access::load(Addr(0x1000));
/// assert_eq!(a.kind, AccessKind::Load);
/// assert_eq!(a.scope, Scope::Cta);
/// let s = Access::new(Addr(0x2000), AccessKind::Store, Scope::Gpu);
/// assert!(s.kind.writes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address accessed.
    pub addr: Addr,
    /// Load, store, or atomic.
    pub kind: AccessKind,
    /// Visibility scope (plain accesses use `.cta`).
    pub scope: Scope,
}

impl Access {
    /// Creates an access.
    pub fn new(addr: Addr, kind: AccessKind, scope: Scope) -> Self {
        Access { addr, kind, scope }
    }

    /// A plain (`.cta`) load.
    pub fn load(addr: Addr) -> Self {
        Access::new(addr, AccessKind::Load, Scope::Cta)
    }

    /// A plain (`.cta`) store.
    pub fn store(addr: Addr) -> Self {
        Access::new(addr, AccessKind::Store, Scope::Cta)
    }

    /// An atomic at the given scope.
    pub fn atomic(addr: Addr, scope: Scope) -> Self {
        Access::new(addr, AccessKind::Atomic, scope)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} {}", self.kind, self.scope, self.addr)
    }
}

impl hmg_sim::SnapshotWrite for AccessKind {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u8(match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Atomic => 2,
        });
    }
}

impl hmg_sim::SnapshotRead for AccessKind {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        match r.get_u8()? {
            0 => Ok(AccessKind::Load),
            1 => Ok(AccessKind::Store),
            2 => Ok(AccessKind::Atomic),
            b => Err(hmg_sim::SnapError::Malformed(format!(
                "access-kind tag {b}"
            ))),
        }
    }
}

impl hmg_sim::SnapshotWrite for Access {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.addr.write_snap(w);
        self.kind.write_snap(w);
        self.scope.write_snap(w);
    }
}

impl hmg_sim::SnapshotRead for Access {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(Access {
            addr: Addr::read_snap(r)?,
            kind: AccessKind::read_snap(r)?,
            scope: Scope::read_snap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(!AccessKind::Load.writes());
        assert!(AccessKind::Store.writes());
        assert!(AccessKind::Atomic.writes());
        assert!(AccessKind::Load.wants_response());
        assert!(!AccessKind::Store.wants_response());
        assert!(AccessKind::Atomic.wants_response());
    }

    #[test]
    fn constructors_set_fields() {
        let l = Access::load(Addr(8));
        assert_eq!((l.kind, l.scope), (AccessKind::Load, Scope::Cta));
        let s = Access::store(Addr(8));
        assert_eq!(s.kind, AccessKind::Store);
        let a = Access::atomic(Addr(8), Scope::Sys);
        assert_eq!((a.kind, a.scope), (AccessKind::Atomic, Scope::Sys));
    }

    #[test]
    fn display_is_readable() {
        let a = Access::atomic(Addr(0x10), Scope::Gpu);
        assert_eq!(a.to_string(), "atom.gpu 0x10");
    }
}
