#![warn(missing_docs)]

//! Coherence protocols for hierarchical multi-GPU systems.
//!
//! This crate is the paper's primary contribution, expressed as data and
//! pure logic that the timing model in `hmg-gpu` executes:
//!
//! * [`scope`] — the scoped memory model's `.cta` / `.gpu` / `.sys`
//!   synchronization scopes (Section II-C).
//! * [`op`] — memory access kinds and scoped accesses.
//! * [`msg`] — protocol message types and their on-wire sizes.
//! * [`spec`] — Table I as a guarded-action protocol description: rows
//!   `(state, event, guard) → (actions, next_state)` over a closed
//!   action vocabulary. The single source of truth for the protocol.
//! * [`table`] — the NHCC/HMG coherence-directory transition table
//!   (Table I) as a pure function, exhaustively unit-tested per cell;
//!   since PR 10 a compiled view of [`spec`].
//! * [`conformance`] — runtime conformance/coverage tracking that checks
//!   every directory transition the engine executes against the table.
//! * [`policy`] — the six evaluated coherence configurations and their
//!   caching / invalidation / routing rules (Section VI).
//! * [`trace`] — the trace format the workload generators produce and
//!   the GPU engine replays.
//! * [`tracefile`] — on-disk (de)serialization of traces.

pub mod conformance;
pub mod msg;
pub mod op;
pub mod policy;
pub mod scope;
pub mod spec;
pub mod table;
pub mod trace;
pub mod tracefile;

// The crate root is the one canonical import path: every public type —
// table, spec, conformance, policy — re-exports here, so downstream
// crates never spell a module path (`table::` vs `conformance::`) and
// the PR 5 compat re-exports keep working.
pub use conformance::{Observed, TableConformance};
pub use msg::MsgSizes;
pub use op::{Access, AccessKind};
pub use policy::{AcquireAction, CacheLevel, FenceDomain, ProtocolKind};
pub use scope::Scope;
pub use spec::{Action, Arbitration, Guard, GuardCtx, ProtocolSpec, SpecRow, SpecVariant};
pub use table::{
    row_index, row_of, transition, try_transition, DirEvent, DirState, Outcome, NUM_ROWS,
};
pub use trace::{Cta, Kernel, TraceOp, WorkloadTrace};
