//! The trace format the workload generators produce and the GPU engine
//! replays.
//!
//! A workload is a sequence of kernels; each kernel is a grid of CTAs;
//! each CTA is a straight-line list of [`TraceOp`]s. Kernels launch in
//! dependency order (the inter-kernel communication pattern the emerging
//! workloads of Section II-B rely on); kernel boundaries carry the
//! implicit `.sys` acquire/release the memory model attaches to kernel
//! launch and completion (Section II-D).
//!
//! Fine-grained synchronization *within* a kernel is expressed with
//! counting flags ([`TraceOp::SetFlag`] / [`TraceOp::WaitFlag`]) plus
//! explicit scoped acquire/release ops — modeling the `.gpu`-scoped
//! synchronization that `cuSolver`, `namd2.10` and `mst` use (Section VI)
//! without simulating spin loops, which the paper's own simulator also
//! cannot model faithfully.

use crate::op::Access;
use crate::scope::Scope;

/// One step of a CTA's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A warp-coalesced memory access.
    Access(Access),
    /// Compute time between memory operations, in cycles.
    Delay(u32),
    /// A scoped acquire (invalidates caches per the protocol's rules).
    Acquire(Scope),
    /// A scoped release (drains writes/invalidations per the protocol).
    Release(Scope),
    /// Increments counting flag `flag` (visible to every CTA).
    SetFlag(u32),
    /// Blocks until flag `flag` has been set at least `count` times.
    WaitFlag {
        /// Flag identifier.
        flag: u32,
        /// Required count.
        count: u32,
    },
}

/// One CTA: a straight-line op list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cta {
    /// The operations, in program order.
    pub ops: Vec<TraceOp>,
}

impl Cta {
    /// Creates a CTA from its ops.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        Cta { ops }
    }

    /// Number of memory accesses in this CTA.
    pub fn num_accesses(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Access(_)))
            .count()
    }
}

/// One kernel launch: a grid of CTAs, executed between implicit `.sys`
/// synchronization points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Kernel {
    /// The CTAs of the grid; index is the CTA id used for scheduling.
    pub ctas: Vec<Cta>,
}

impl Kernel {
    /// Creates a kernel from its CTAs.
    pub fn new(ctas: Vec<Cta>) -> Self {
        Kernel { ctas }
    }

    /// Number of CTAs in the grid.
    pub fn num_ctas(&self) -> usize {
        self.ctas.len()
    }

    /// Total memory accesses across the grid.
    pub fn num_accesses(&self) -> usize {
        self.ctas.iter().map(Cta::num_accesses).sum()
    }
}

/// A complete workload trace.
///
/// # Example
///
/// ```
/// use hmg_protocol::{WorkloadTrace, Kernel, Cta, TraceOp, Access};
/// use hmg_sim::Addr;
///
/// let cta = Cta::new(vec![TraceOp::Access(Access::load(Addr(0)))]);
/// let trace = WorkloadTrace::new("demo", vec![Kernel::new(vec![cta])]);
/// assert_eq!(trace.num_kernels(), 1);
/// assert_eq!(trace.num_accesses(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Workload name (Table III abbreviation).
    pub name: String,
    /// Kernels in launch (dependency) order.
    pub kernels: Vec<Kernel>,
}

impl WorkloadTrace {
    /// Creates a trace.
    pub fn new(name: impl Into<String>, kernels: Vec<Kernel>) -> Self {
        WorkloadTrace {
            name: name.into(),
            kernels,
        }
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Total CTAs across all kernels.
    pub fn num_ctas(&self) -> usize {
        self.kernels.iter().map(Kernel::num_ctas).sum()
    }

    /// Total memory accesses across all kernels.
    pub fn num_accesses(&self) -> usize {
        self.kernels.iter().map(Kernel::num_accesses).sum()
    }

    /// The highest byte address referenced plus one — the trace's
    /// nominal footprint. Returns 0 for a trace with no accesses.
    pub fn footprint_bytes(&self) -> u64 {
        let mut max = None::<u64>;
        for k in &self.kernels {
            for c in &k.ctas {
                for op in &c.ops {
                    if let TraceOp::Access(a) = op {
                        max = Some(max.map_or(a.addr.0, |m| m.max(a.addr.0)));
                    }
                }
            }
        }
        max.map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::AccessKind;
    use hmg_sim::Addr;

    fn access(addr: u64) -> TraceOp {
        TraceOp::Access(Access::load(Addr(addr)))
    }

    #[test]
    fn counting_helpers() {
        let cta1 = Cta::new(vec![access(0), TraceOp::Delay(5), access(128)]);
        let cta2 = Cta::new(vec![access(256)]);
        let k1 = Kernel::new(vec![cta1, cta2]);
        let k2 = Kernel::new(vec![Cta::new(vec![TraceOp::Acquire(Scope::Gpu)])]);
        let t = WorkloadTrace::new("t", vec![k1, k2]);
        assert_eq!(t.num_kernels(), 2);
        assert_eq!(t.num_ctas(), 3);
        assert_eq!(t.num_accesses(), 3);
    }

    #[test]
    fn footprint_tracks_highest_address() {
        let t = WorkloadTrace::new(
            "t",
            vec![Kernel::new(vec![Cta::new(vec![access(100), access(5000)])])],
        );
        assert_eq!(t.footprint_bytes(), 5001);
        let empty = WorkloadTrace::new("e", vec![]);
        assert_eq!(empty.footprint_bytes(), 0);
    }

    #[test]
    fn trace_ops_model_all_sync_forms() {
        let ops = vec![
            TraceOp::Access(Access::new(Addr(0), AccessKind::Store, Scope::Cta)),
            TraceOp::Release(Scope::Gpu),
            TraceOp::SetFlag(3),
            TraceOp::WaitFlag { flag: 3, count: 2 },
            TraceOp::Acquire(Scope::Gpu),
        ];
        let cta = Cta::new(ops);
        assert_eq!(cta.num_accesses(), 1);
        assert_eq!(cta.ops.len(), 5);
    }
}
