//! Property-based tests on the protocol logic: the Table I FSM and the
//! policy predicates.

use proptest::prelude::*;

use hmg_protocol::policy::{AcquireAction, CacheLevel, FenceDomain};
use hmg_protocol::{transition, DirEvent, DirState, ProtocolKind, Scope};

fn any_state() -> impl Strategy<Value = DirState> {
    prop_oneof![Just(DirState::Invalid), Just(DirState::Valid)]
}

proptest! {
    /// Closure: from any state, any legal event yields a stable state —
    /// the "no transient states" property the paper's protocols are
    /// built around.
    #[test]
    fn fsm_is_closed_over_stable_states(
        state in any_state(),
        hmg in any::<bool>(),
        steps in 1usize..50,
        seed in any::<u64>(),
    ) {
        let mut rng = hmg_sim::Rng::new(seed);
        let mut s = state;
        for _ in 0..steps {
            // Sample a legal event by rejection.
            let ev = loop {
                let candidate = match rng.gen_range(0, 6) {
                    0 => DirEvent::LocalLoad,
                    1 => DirEvent::LocalStore,
                    2 => DirEvent::RemoteLoad,
                    3 => DirEvent::RemoteStore,
                    4 => DirEvent::Replace,
                    _ => DirEvent::Invalidation,
                };
                match candidate {
                    DirEvent::Replace if s == DirState::Invalid => continue,
                    DirEvent::Invalidation if !hmg => continue,
                    c => break c,
                }
            };
            let o = transition(s, ev, hmg);
            prop_assert!(matches!(o.next, DirState::Invalid | DirState::Valid));
            // Sharer bookkeeping never contradicts itself.
            prop_assert!(!(o.inv_all_sharers && o.inv_other_sharers));
            // A transition to Invalid never also records a new sharer.
            if o.next == DirState::Invalid {
                prop_assert!(!o.add_sharer, "I-state entries track nobody");
            }
            s = o.next;
        }
    }

    /// Remote events always track the sender; local events never do.
    #[test]
    fn sender_tracking_is_remote_only(state in any_state(), hmg in any::<bool>()) {
        for (ev, remote) in [
            (DirEvent::LocalLoad, false),
            (DirEvent::LocalStore, false),
            (DirEvent::RemoteLoad, true),
            (DirEvent::RemoteStore, true),
        ] {
            let o = transition(state, ev, hmg);
            prop_assert_eq!(o.add_sharer, remote, "{:?}/{:?}", state, ev);
        }
    }

    /// Acquire actions are monotone in scope: a wider scope never
    /// invalidates less.
    #[test]
    fn acquire_actions_monotone_in_scope(p in proptest::sample::select(ProtocolKind::ALL.to_vec())) {
        let rank = |a: AcquireAction| match a {
            AcquireAction::None => 0,
            AcquireAction::L1 => 1,
            AcquireAction::L1AndLocalL2 => 2,
            AcquireAction::L1AndAllGpuL2 => 3,
        };
        let mut prev = 0;
        for s in Scope::ALL {
            let r = rank(p.acquire_action(s));
            prop_assert!(r >= prev, "{p}: action rank regressed at {s}");
            prev = r;
        }
    }

    /// Release domains are monotone in scope.
    #[test]
    fn release_domains_monotone_in_scope(p in proptest::sample::select(ProtocolKind::ALL.to_vec())) {
        let rank = |d: FenceDomain| match d {
            FenceDomain::None => 0,
            FenceDomain::LocalGpu => 1,
            FenceDomain::AllGpms => 2,
        };
        let mut prev = 0;
        for s in Scope::ALL {
            let r = rank(p.release_domain(s));
            prop_assert!(r >= prev, "{p}: domain rank regressed at {s}");
            prev = r;
        }
    }

    /// Hit permission is monotone along the path to the home: if a load
    /// may hit at a level, it may also hit at every deeper level.
    #[test]
    fn hit_permission_monotone_in_depth(
        p in proptest::sample::select(ProtocolKind::ALL.to_vec()),
        s in proptest::sample::select(Scope::ALL.to_vec()),
    ) {
        let depth = [
            CacheLevel::L1,
            CacheLevel::LocalL2NonHome,
            CacheLevel::GpuHomeL2,
            CacheLevel::SysHomeL2,
        ];
        let mut allowed_before = true;
        for lvl in depth {
            let a = p.load_may_hit(lvl, s);
            // Once disallowed, permission may only return when reaching
            // the home side; check simple monotonicity: allowed set is a
            // suffix of the path.
            if !allowed_before {
                // deeper levels may become allowed; nothing to check
            }
            allowed_before = a;
        }
        // The system home always serves everyone.
        prop_assert!(p.load_may_hit(CacheLevel::SysHomeL2, s));
    }

    /// `.cta`-scoped loads may hit anywhere under every protocol.
    #[test]
    fn cta_loads_hit_everywhere(p in proptest::sample::select(ProtocolKind::ALL.to_vec())) {
        for lvl in [
            CacheLevel::L1,
            CacheLevel::LocalL2NonHome,
            CacheLevel::GpuHomeL2,
            CacheLevel::SysHomeL2,
        ] {
            prop_assert!(p.load_may_hit(lvl, Scope::Cta), "{p} at {lvl:?}");
        }
    }
}

mod tracefile_props {
    use super::*;
    use hmg_mem::Addr;
    use hmg_protocol::tracefile::{read_trace, write_trace};
    use hmg_protocol::{Access, AccessKind, Cta, Kernel, TraceOp, WorkloadTrace};

    fn arb_op() -> impl Strategy<Value = TraceOp> {
        prop_oneof![
            (any::<u64>(), 0u8..3, 0u8..3).prop_map(|(a, k, s)| {
                let kind = match k {
                    0 => AccessKind::Load,
                    1 => AccessKind::Store,
                    _ => AccessKind::Atomic,
                };
                let scope = match s {
                    0 => Scope::Cta,
                    1 => Scope::Gpu,
                    _ => Scope::Sys,
                };
                TraceOp::Access(Access::new(Addr(a), kind, scope))
            }),
            any::<u32>().prop_map(TraceOp::Delay),
            (0u8..3).prop_map(|s| TraceOp::Acquire(match s {
                0 => Scope::Cta,
                1 => Scope::Gpu,
                _ => Scope::Sys,
            })),
            (0u8..3).prop_map(|s| TraceOp::Release(match s {
                0 => Scope::Cta,
                1 => Scope::Gpu,
                _ => Scope::Sys,
            })),
            any::<u32>().prop_map(TraceOp::SetFlag),
            (any::<u32>(), any::<u32>())
                .prop_map(|(flag, count)| TraceOp::WaitFlag { flag, count }),
        ]
    }

    fn arb_trace() -> impl Strategy<Value = WorkloadTrace> {
        (
            "[a-zA-Z0-9_ .-]{0,40}",
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(arb_op(), 0..30).prop_map(Cta::new),
                    0..6,
                )
                .prop_map(Kernel::new),
                0..5,
            ),
        )
            .prop_map(|(name, kernels)| WorkloadTrace::new(name, kernels))
    }

    proptest! {
        /// Serialization round trips exactly for arbitrary traces.
        #[test]
        fn tracefile_roundtrip(trace in arb_trace()) {
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("write");
            let back = read_trace(buf.as_slice()).expect("read");
            prop_assert_eq!(trace, back);
        }

        /// Arbitrary junk input never panics the reader.
        #[test]
        fn tracefile_reader_is_total(junk in proptest::collection::vec(any::<u8>(), 0..400)) {
            let _ = read_trace(junk.as_slice());
        }

        /// Single-bit corruption of a valid file either still parses to
        /// *something* or errors — never panics.
        #[test]
        fn tracefile_tolerates_bitflips(trace in arb_trace(), pos_seed in any::<u64>()) {
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("write");
            if buf.is_empty() {
                return Ok(());
            }
            let pos = (pos_seed % buf.len() as u64) as usize;
            buf[pos] ^= 0x40;
            let _ = read_trace(buf.as_slice());
        }
    }
}
