//! Randomized property tests on the protocol logic: the Table I FSM and
//! the policy predicates. Driven by the in-repo SplitMix64 [`Rng`]
//! rather than an external property-testing crate so the workspace
//! builds offline.

use hmg_protocol::{
    transition, AcquireAction, CacheLevel, DirEvent, DirState, FenceDomain, ProtocolKind, Scope,
};
use hmg_sim::Rng;

const CASES: u64 = 64;

fn pick_state(r: &mut Rng) -> DirState {
    if r.gen_bool(0.5) {
        DirState::Invalid
    } else {
        DirState::Valid
    }
}

/// Closure: from any state, any legal event yields a stable state —
/// the "no transient states" property the paper's protocols are
/// built around.
#[test]
fn fsm_is_closed_over_stable_states() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xF5A0 + case);
        let hmg = rng.gen_bool(0.5);
        let steps = rng.gen_range(1, 50);
        let mut s = pick_state(&mut rng);
        for _ in 0..steps {
            // Sample a legal event by rejection.
            let ev = loop {
                let candidate = match rng.gen_range(0, 6) {
                    0 => DirEvent::LocalLoad,
                    1 => DirEvent::LocalStore,
                    2 => DirEvent::RemoteLoad,
                    3 => DirEvent::RemoteStore,
                    4 => DirEvent::Replace,
                    _ => DirEvent::Invalidation,
                };
                match candidate {
                    DirEvent::Replace if s == DirState::Invalid => continue,
                    DirEvent::Invalidation if !hmg => continue,
                    c => break c,
                }
            };
            let o = transition(s, ev, hmg);
            assert!(matches!(o.next, DirState::Invalid | DirState::Valid));
            // Sharer bookkeeping never contradicts itself.
            assert!(!(o.inv_all_sharers && o.inv_other_sharers));
            // A transition to Invalid never also records a new sharer.
            if o.next == DirState::Invalid {
                assert!(!o.add_sharer, "I-state entries track nobody");
            }
            s = o.next;
        }
    }
}

/// Remote events always track the sender; local events never do.
#[test]
fn sender_tracking_is_remote_only() {
    for state in [DirState::Invalid, DirState::Valid] {
        for hmg in [false, true] {
            for (ev, remote) in [
                (DirEvent::LocalLoad, false),
                (DirEvent::LocalStore, false),
                (DirEvent::RemoteLoad, true),
                (DirEvent::RemoteStore, true),
            ] {
                let o = transition(state, ev, hmg);
                assert_eq!(o.add_sharer, remote, "{:?}/{:?}", state, ev);
            }
        }
    }
}

/// Acquire actions are monotone in scope: a wider scope never
/// invalidates less.
#[test]
fn acquire_actions_monotone_in_scope() {
    for p in ProtocolKind::ALL {
        let rank = |a: AcquireAction| match a {
            AcquireAction::None => 0,
            AcquireAction::L1 => 1,
            AcquireAction::L1AndLocalL2 => 2,
            AcquireAction::L1AndAllGpuL2 => 3,
        };
        let mut prev = 0;
        for s in Scope::ALL {
            let r = rank(p.acquire_action(s));
            assert!(r >= prev, "{p}: action rank regressed at {s}");
            prev = r;
        }
    }
}

/// Release domains are monotone in scope.
#[test]
fn release_domains_monotone_in_scope() {
    for p in ProtocolKind::ALL {
        let rank = |d: FenceDomain| match d {
            FenceDomain::None => 0,
            FenceDomain::LocalGpu => 1,
            FenceDomain::AllGpms => 2,
        };
        let mut prev = 0;
        for s in Scope::ALL {
            let r = rank(p.release_domain(s));
            assert!(r >= prev, "{p}: domain rank regressed at {s}");
            prev = r;
        }
    }
}

/// Hit permission is monotone along the path to the home: if a load
/// may hit at a level, it may also hit at every deeper level.
#[test]
fn hit_permission_monotone_in_depth() {
    for p in ProtocolKind::ALL {
        for s in Scope::ALL {
            let depth = [
                CacheLevel::L1,
                CacheLevel::LocalL2NonHome,
                CacheLevel::GpuHomeL2,
                CacheLevel::SysHomeL2,
            ];
            let mut allowed_before = true;
            for lvl in depth {
                let a = p.load_may_hit(lvl, s);
                // Once disallowed, permission may only return when
                // reaching the home side; deeper levels may become
                // allowed again, so there is nothing stronger to check
                // mid-path.
                if !allowed_before {
                    // deeper levels may become allowed; nothing to check
                }
                allowed_before = a;
            }
            // The system home always serves everyone.
            assert!(p.load_may_hit(CacheLevel::SysHomeL2, s));
        }
    }
}

/// `.cta`-scoped loads may hit anywhere under every protocol.
#[test]
fn cta_loads_hit_everywhere() {
    for p in ProtocolKind::ALL {
        for lvl in [
            CacheLevel::L1,
            CacheLevel::LocalL2NonHome,
            CacheLevel::GpuHomeL2,
            CacheLevel::SysHomeL2,
        ] {
            assert!(p.load_may_hit(lvl, Scope::Cta), "{p} at {lvl:?}");
        }
    }
}

mod tracefile_props {
    use hmg_protocol::tracefile::{read_trace, write_trace};
    use hmg_protocol::{Access, AccessKind, Cta, Kernel, Scope, TraceOp, WorkloadTrace};
    use hmg_sim::Addr;
    use hmg_sim::Rng;

    const CASES: u64 = 64;

    fn pick_scope(r: &mut Rng) -> Scope {
        match r.gen_range(0, 3) {
            0 => Scope::Cta,
            1 => Scope::Gpu,
            _ => Scope::Sys,
        }
    }

    fn arb_op(r: &mut Rng) -> TraceOp {
        match r.gen_range(0, 6) {
            0 => {
                let kind = match r.gen_range(0, 3) {
                    0 => AccessKind::Load,
                    1 => AccessKind::Store,
                    _ => AccessKind::Atomic,
                };
                let scope = pick_scope(r);
                TraceOp::Access(Access::new(Addr(r.next_u64()), kind, scope))
            }
            1 => TraceOp::Delay(r.next_u64() as u32),
            2 => TraceOp::Acquire(pick_scope(r)),
            3 => TraceOp::Release(pick_scope(r)),
            4 => TraceOp::SetFlag(r.next_u64() as u32),
            _ => TraceOp::WaitFlag {
                flag: r.next_u64() as u32,
                count: r.next_u64() as u32,
            },
        }
    }

    fn arb_trace(r: &mut Rng) -> WorkloadTrace {
        const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789_ .-";
        let name_len = r.gen_range(0, 41) as usize;
        let name: String = (0..name_len)
            .map(|_| *r.choose(NAME_CHARS) as char)
            .collect();
        let n_kernels = r.gen_range(0, 5) as usize;
        let kernels: Vec<Kernel> = (0..n_kernels)
            .map(|_| {
                let n_ctas = r.gen_range(0, 6) as usize;
                let ctas: Vec<Cta> = (0..n_ctas)
                    .map(|_| {
                        let n_ops = r.gen_range(0, 30) as usize;
                        Cta::new((0..n_ops).map(|_| arb_op(r)).collect())
                    })
                    .collect();
                Kernel::new(ctas)
            })
            .collect();
        WorkloadTrace::new(name, kernels)
    }

    /// Serialization round trips exactly for arbitrary traces.
    #[test]
    fn tracefile_roundtrip() {
        for case in 0..CASES {
            let mut r = Rng::new(0x2007 + case);
            let trace = arb_trace(&mut r);
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("write");
            let back = read_trace(buf.as_slice()).expect("read");
            assert_eq!(trace, back);
        }
    }

    /// Arbitrary junk input never panics the reader.
    #[test]
    fn tracefile_reader_is_total() {
        for case in 0..CASES {
            let mut r = Rng::new(0x70AD + case);
            let n = r.gen_range(0, 400) as usize;
            let junk: Vec<u8> = (0..n).map(|_| r.next_u64() as u8).collect();
            let _ = read_trace(junk.as_slice());
        }
    }

    /// Single-bit corruption of a valid file either still parses to
    /// *something* or errors — never panics.
    #[test]
    fn tracefile_tolerates_bitflips() {
        for case in 0..CASES {
            let mut r = Rng::new(0xB17F + case);
            let trace = arb_trace(&mut r);
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("write");
            if buf.is_empty() {
                continue;
            }
            let pos = (r.next_u64() % buf.len() as u64) as usize;
            buf[pos] ^= 0x40;
            let _ = read_trace(buf.as_slice());
        }
    }
}
