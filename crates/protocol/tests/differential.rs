//! Differential test: the guarded-action spec vs an independently
//! hand-transcribed Table I.
//!
//! `spec.rs` is the single source of truth for the protocol, which
//! means a transcription error there propagates everywhere at once —
//! engine, oracle, model checker. This test pins the spec against a
//! *second, deliberately hand-coded* copy of Table I (plus the §V-A
//! hierarchical column and the two arbitration disciplines), written as
//! plain match arms from the paper, and sweeps the full
//! `(state, event, variant, guard)` domain. The two transcriptions were
//! produced independently; any disagreement is a bug in one of them.
//!
//! The reference lives in a `tests/` file on purpose: the `dir-match`
//! lint forbids shadow DirState/DirEvent transition tables in source
//! crates, and integration tests are exactly the carve-out where a
//! redundant copy is the point.

use hmg_protocol::spec::{Action, Arbitration, GuardCtx, ProtocolSpec, SpecVariant};
use hmg_protocol::{try_transition, DirEvent, DirState};

/// What the paper says one directory home does, reduced to the same
/// observable effects the spec's action vocabulary can express.
#[derive(Debug, PartialEq, Eq)]
struct Reference {
    next: DirState,
    add_sharer: bool,
    inv_all: bool,
    inv_other: bool,
    forwards: bool,
    throttled: Option<Arbitration>,
}

/// Table I (HPCA 2020, §IV) transcribed by hand, cell by cell, without
/// consulting `spec.rs`. Returns `None` for cells the paper leaves
/// undefined: `(Invalid, Replace)` everywhere and the `Invalidation`
/// column outside HMG.
fn reference(
    state: DirState,
    event: DirEvent,
    variant: SpecVariant,
    busy: bool,
) -> Option<Reference> {
    use DirEvent::*;
    use DirState::*;
    let quiet = |next: DirState| Reference {
        next,
        add_sharer: false,
        inv_all: false,
        inv_other: false,
        forwards: false,
        throttled: None,
    };
    // Arbitration: a congested home throttles *remote requests* only —
    // its own accesses, evictions, and inbound invalidations proceed.
    if busy && matches!(event, RemoteLoad | RemoteStore) {
        return Some(Reference {
            throttled: Some(variant.arbitration()),
            ..quiet(state)
        });
    }
    match (state, event) {
        // Row I: no entry. Local accesses need no tracking (the home's
        // own copy is coherent by construction); a remote access
        // allocates and records the requester.
        (Invalid, LocalLoad) | (Invalid, LocalStore) => Some(quiet(Invalid)),
        (Invalid, RemoteLoad) | (Invalid, RemoteStore) => Some(Reference {
            add_sharer: true,
            ..quiet(Valid)
        }),
        // An invalidation for an absent entry is only meaningful at an
        // HMG GPU home (the system home invalidated the whole GPU; no
        // GPM sharers are tracked, nothing to forward).
        (Invalid, Invalidation) if variant.hmg() => Some(quiet(Invalid)),
        (Invalid, Invalidation) => None,
        // An absent entry cannot be evicted.
        (Invalid, Replace) => None,
        // Row V: entry present.
        (Valid, LocalLoad) => Some(quiet(Valid)),
        (Valid, LocalStore) => Some(Reference {
            inv_all: true,
            ..quiet(Invalid)
        }),
        (Valid, RemoteLoad) => Some(Reference {
            add_sharer: true,
            ..quiet(Valid)
        }),
        (Valid, RemoteStore) => Some(Reference {
            add_sharer: true,
            inv_other: true,
            ..quiet(Valid)
        }),
        (Valid, Replace) => Some(Reference {
            inv_all: true,
            ..quiet(Invalid)
        }),
        // §V-A: the one transition hierarchy adds — a GPU home passes a
        // system-home invalidation down to its tracked GPMs and drops
        // its own entry.
        (Valid, Invalidation) if variant.hmg() => Some(Reference {
            forwards: true,
            ..quiet(Invalid)
        }),
        (Valid, Invalidation) => None,
    }
}

/// The spec's answer for the same cell, reduced to [`Reference`].
fn from_spec(
    state: DirState,
    event: DirEvent,
    variant: SpecVariant,
    busy: bool,
) -> Option<Reference> {
    let ctx = if busy { GuardCtx::BUSY } else { GuardCtx::FREE };
    let r = ProtocolSpec::for_variant(variant).row(state, event, ctx)?;
    let throttled = match (r.has(Action::Nack), r.has(Action::Defer)) {
        (true, false) => Some(Arbitration::NackRetry),
        (false, true) => Some(Arbitration::PhasePriority),
        (false, false) => None,
        (true, true) => panic!("a row cannot both NACK and defer: {r:?}"),
    };
    Some(Reference {
        next: r.next,
        add_sharer: r.has(Action::AddSharer),
        inv_all: r.has(Action::InvAllSharers),
        inv_other: r.has(Action::InvOtherSharers),
        forwards: r.has(Action::ForwardInv),
        throttled,
    })
}

#[test]
fn spec_agrees_with_the_hand_coded_table_over_the_whole_domain() {
    let mut cells = 0;
    for variant in SpecVariant::ALL {
        for state in DirState::ALL {
            for event in DirEvent::ALL {
                for busy in [false, true] {
                    cells += 1;
                    assert_eq!(
                        from_spec(state, event, variant, busy),
                        reference(state, event, variant, busy),
                        "{variant:?} {state:?} {event:?} busy={busy}"
                    );
                }
            }
        }
    }
    // 2 states x 6 events x 4 variants x 2 guard contexts.
    assert_eq!(cells, 96);
}

#[test]
fn compiled_table_agrees_with_the_reference_in_the_free_context() {
    // `try_transition` is the legacy function form the engine's
    // conformance replay consumes; it must match the reference too,
    // including the ForwardInv → inv_all_sharers flattening (at a GPU
    // home, "invalidate tracked sharers" and "forward downward" are the
    // same wire traffic).
    for variant in [SpecVariant::Nhcc, SpecVariant::Hmg] {
        for state in DirState::ALL {
            for event in DirEvent::ALL {
                let got = try_transition(state, event, variant.hmg());
                let want = reference(state, event, variant, false);
                match (got, want) {
                    (None, None) => {}
                    (Some(o), Some(w)) => {
                        assert_eq!(o.next, w.next, "{variant:?} {state:?} {event:?}");
                        assert_eq!(
                            o.add_sharer, w.add_sharer,
                            "{variant:?} {state:?} {event:?}"
                        );
                        assert_eq!(
                            o.inv_all_sharers,
                            w.inv_all || w.forwards,
                            "{variant:?} {state:?} {event:?}"
                        );
                        assert_eq!(
                            o.inv_other_sharers, w.inv_other,
                            "{variant:?} {state:?} {event:?}"
                        );
                    }
                    (got, want) => {
                        panic!(
                            "{variant:?} {state:?} {event:?}: spec {got:?} vs reference {want:?}"
                        )
                    }
                }
            }
        }
    }
}

#[test]
fn the_seeded_spec_bug_is_visible_to_the_differential_sweep() {
    // The spec-drop-forward injection must disagree with the reference
    // at exactly one cell — proof the sweep has the power to catch a
    // single dropped action.
    let broken = ProtocolSpec::for_variant(SpecVariant::Hmg).with_forward_dropped();
    let mut disagreements = Vec::new();
    for state in DirState::ALL {
        for event in DirEvent::ALL {
            let got = broken
                .row(state, event, GuardCtx::FREE)
                .map(|r| r.has(Action::ForwardInv));
            let want = reference(state, event, SpecVariant::Hmg, false).map(|w| w.forwards);
            if got != want {
                disagreements.push((state, event));
            }
        }
    }
    assert_eq!(
        disagreements,
        vec![(DirState::Valid, DirEvent::Invalidation)]
    );
}
