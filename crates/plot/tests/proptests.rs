//! Property-based tests for the SVG renderers: arbitrary data never
//! panics, output is structurally sound, and escaping is total.

use proptest::prelude::*;

use hmg_plot::{svg::escape, GroupedBars, LineChart, LogLogScatter};

proptest! {
    /// Escaping never leaves a raw XML special in the output.
    #[test]
    fn escape_is_total(s in ".{0,200}") {
        let e = escape(&s);
        // No unescaped specials: every '&' must start an entity.
        let mut chars = e.chars().peekable();
        while let Some(c) = chars.next() {
            prop_assert!(c != '<' && c != '>' && c != '"');
            if c == '&' {
                let rest: String = chars.clone().take(5).collect();
                prop_assert!(
                    rest.starts_with("amp;")
                        || rest.starts_with("lt;")
                        || rest.starts_with("gt;")
                        || rest.starts_with("quot;")
                        || rest.starts_with("apos;"),
                    "bare & in {e}"
                );
            }
        }
    }

    /// Grouped bars render for arbitrary positive data, names included
    /// verbatim-escaped, with one path per bar.
    #[test]
    fn bars_render_arbitrary_data(
        names in proptest::collection::vec("[a-zA-Z0-9 _.<>&-]{1,12}", 1..5),
        groups in proptest::collection::vec(
            ("[a-zA-Z0-9 _-]{1,10}", proptest::collection::vec(0.01f64..1e6, 1..5)),
            1..8,
        ),
    ) {
        let n = names.len();
        let mut chart = GroupedBars::new("prop").series(names.clone());
        let mut bars = 0;
        for (g, vals) in &groups {
            let mut v = vals.clone();
            v.resize(n, 1.0);
            bars += n;
            chart = chart.group(g.clone(), v);
        }
        let out = chart.to_svg();
        prop_assert!(out.starts_with("<svg"));
        prop_assert_eq!(out.matches("<path").count(), bars);
        prop_assert!(!out.contains("NaN"));
    }

    /// Line charts with converging/equal values still render with one
    /// end label per series and no NaNs.
    #[test]
    fn lines_render_arbitrary_data(
        xs in proptest::collection::vec("[a-z0-9]{1,6}", 1..6),
        series in proptest::collection::vec(
            ("[a-z]{1,8}", 0.01f64..100.0),
            1..6,
        ),
    ) {
        let mut chart = LineChart::new("prop").x_points(xs.clone());
        for (name, v) in &series {
            chart = chart.line(name.clone(), vec![*v; xs.len()]);
        }
        let out = chart.to_svg();
        prop_assert_eq!(out.matches("<polyline").count(), series.len());
        prop_assert!(!out.contains("NaN"));
    }

    /// The scatter accepts any positive magnitudes across many decades.
    #[test]
    fn scatter_renders_any_positive_points(
        pts in proptest::collection::vec((1e-3f64..1e12, 1e-3f64..1e12), 1..20),
    ) {
        let mut chart = LogLogScatter::new("prop", "x", "y");
        for (i, (x, y)) in pts.iter().enumerate() {
            chart = chart.point(format!("p{i}"), *x, *y);
        }
        let out = chart.to_svg();
        prop_assert_eq!(out.matches("<circle").count(), pts.len());
        prop_assert!(!out.contains("NaN") && !out.contains("inf"));
    }
}
