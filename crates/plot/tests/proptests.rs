//! Randomized property tests for the SVG renderers: arbitrary data
//! never panics, output is structurally sound, and escaping is total.
//! Uses a tiny local SplitMix64 so the dependency-free plot crate stays
//! dependency-free (the workspace must build offline).

use hmg_plot::{svg::escape, GroupedBars, LineChart, LogLogScatter};

const CASES: u64 = 64;

/// Minimal SplitMix64 — mirrors `hmg_sim::Rng` without pulling it in.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn string(&mut self, chars: &[u8], min: u64, max: u64) -> String {
        let n = self.range(min, max) as usize;
        (0..n)
            .map(|_| chars[self.range(0, chars.len() as u64) as usize] as char)
            .collect()
    }
}

/// Escaping never leaves a raw XML special in the output.
#[test]
fn escape_is_total() {
    for case in 0..CASES {
        let mut r = Mix(0xE5C0 + case);
        // Arbitrary unicode-ish text including the XML specials.
        const POOL: &[u8] = b"abcXYZ 0189<>&\"'\\/#;\t";
        let s = r.string(POOL, 0, 201);
        let e = escape(&s);
        // No unescaped specials: every '&' must start an entity.
        let mut chars = e.chars().peekable();
        while let Some(c) = chars.next() {
            assert!(c != '<' && c != '>' && c != '"');
            if c == '&' {
                let rest: String = chars.clone().take(5).collect();
                assert!(
                    rest.starts_with("amp;")
                        || rest.starts_with("lt;")
                        || rest.starts_with("gt;")
                        || rest.starts_with("quot;")
                        || rest.starts_with("apos;"),
                    "bare & in {e}"
                );
            }
        }
    }
}

/// Grouped bars render for arbitrary positive data, names included
/// verbatim-escaped, with one path per bar.
#[test]
fn bars_render_arbitrary_data() {
    const NAME_POOL: &[u8] = b"abcZ 019_.<>&-";
    const GROUP_POOL: &[u8] = b"abcZ 019_-";
    for case in 0..CASES {
        let mut r = Mix(0xBA25 + case);
        let n = r.range(1, 5) as usize;
        let names: Vec<String> = (0..n).map(|_| r.string(NAME_POOL, 1, 13)).collect();
        let n_groups = r.range(1, 8) as usize;
        let groups: Vec<(String, Vec<f64>)> = (0..n_groups)
            .map(|_| {
                let g = r.string(GROUP_POOL, 1, 11);
                let k = r.range(1, 5) as usize;
                let vals: Vec<f64> = (0..k).map(|_| 0.01 + r.f64() * 1e6).collect();
                (g, vals)
            })
            .collect();
        let mut chart = GroupedBars::new("prop").series(names.clone());
        let mut bars = 0;
        for (g, vals) in &groups {
            let mut v = vals.clone();
            v.resize(n, 1.0);
            bars += n;
            chart = chart.group(g.clone(), v);
        }
        let out = chart.to_svg();
        assert!(out.starts_with("<svg"));
        assert_eq!(out.matches("<path").count(), bars);
        assert!(!out.contains("NaN"));
    }
}

/// Line charts with converging/equal values still render with one
/// end label per series and no NaNs.
#[test]
fn lines_render_arbitrary_data() {
    const POOL: &[u8] = b"abcxyz0189";
    for case in 0..CASES {
        let mut r = Mix(0x11AE + case);
        let n_x = r.range(1, 6) as usize;
        let xs: Vec<String> = (0..n_x).map(|_| r.string(POOL, 1, 7)).collect();
        let n_series = r.range(1, 6) as usize;
        let series: Vec<(String, f64)> = (0..n_series)
            .map(|_| (r.string(POOL, 1, 9), 0.01 + r.f64() * 99.99))
            .collect();
        let mut chart = LineChart::new("prop").x_points(xs.clone());
        for (name, v) in &series {
            chart = chart.line(name.clone(), vec![*v; xs.len()]);
        }
        let out = chart.to_svg();
        assert_eq!(out.matches("<polyline").count(), series.len());
        assert!(!out.contains("NaN"));
    }
}

/// The scatter accepts any positive magnitudes across many decades.
#[test]
fn scatter_renders_any_positive_points() {
    for case in 0..CASES {
        let mut r = Mix(0x5CA7 + case);
        let n = r.range(1, 20) as usize;
        // Positive magnitudes spread across ~15 decades.
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let x = 1e-3 * 10f64.powf(r.f64() * 15.0);
                let y = 1e-3 * 10f64.powf(r.f64() * 15.0);
                (x, y)
            })
            .collect();
        let mut chart = LogLogScatter::new("prop", "x", "y");
        for (i, (x, y)) in pts.iter().enumerate() {
            chart = chart.point(format!("p{i}"), *x, *y);
        }
        let out = chart.to_svg();
        assert_eq!(out.matches("<circle").count(), pts.len());
        assert!(!out.contains("NaN") && !out.contains("inf"));
    }
}
