//! Visual constants: the validated light-mode palette and the fixed
//! mark specs.

/// Chart surface (light mode).
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink for titles and values.
pub const TEXT_PRIMARY: &str = "#0b0b0b";
/// Secondary ink for axis labels and legends.
pub const TEXT_SECONDARY: &str = "#52514e";
/// Recessive hairline for gridlines and axes.
pub const GRID: &str = "#e7e6e3";

/// Categorical series hues in fixed slot order (validated: worst
/// adjacent CVD ΔE 24.2 on the light surface). Identity follows the
/// slot, never the rank — a chart with fewer series uses a prefix.
pub const SERIES: [&str; 8] = [
    "#2a78d6", // blue
    "#1baf7a", // aqua (relief rule: needs labels or table view)
    "#eda100", // yellow (relief rule)
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
    "#e87ba4", // magenta
    "#eb6834", // orange
];

/// All color roles a chart needs, as one swappable set. Dark mode is a
/// *selected* restep of the same hues for the dark surface (validated as
/// a set), not an automatic inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theme {
    /// Chart surface color.
    pub surface: &'static str,
    /// Primary ink (titles, direct value labels).
    pub text_primary: &'static str,
    /// Secondary ink (axes, legends, tick labels).
    pub text_secondary: &'static str,
    /// Recessive hairline for gridlines.
    pub grid: &'static str,
    /// Categorical series hues in fixed slot order.
    pub series: [&'static str; 8],
}

impl Theme {
    /// The validated light theme (the default).
    pub fn light() -> Self {
        Theme {
            surface: SURFACE,
            text_primary: TEXT_PRIMARY,
            text_secondary: TEXT_SECONDARY,
            grid: GRID,
            series: SERIES,
        }
    }

    /// The validated dark theme: same eight hues restepped for the dark
    /// surface (worst adjacent CVD ΔE 10.3 — the floor band, so charts
    /// keep their direct labels and table views as secondary encoding).
    pub fn dark() -> Self {
        Theme {
            surface: "#1a1a19",
            text_primary: "#ffffff",
            text_secondary: "#c3c2b7",
            grid: "#2e2e2c",
            series: [
                "#3987e5", // blue
                "#199e70", // aqua
                "#c98500", // yellow
                "#008300", // green
                "#9085e9", // violet
                "#e66767", // red
                "#d55181", // magenta
                "#d95926", // orange
            ],
        }
    }
}

impl Default for Theme {
    fn default() -> Self {
        Theme::light()
    }
}

/// Maximum bar thickness in px.
pub const BAR_MAX: f64 = 24.0;
/// Radius of the rounded data-end of a bar.
pub const BAR_RADIUS: f64 = 4.0;
/// Gap between touching marks, in surface color.
pub const MARK_GAP: f64 = 2.0;
/// Line stroke width.
pub const LINE_WIDTH: f64 = 2.0;
/// Marker radius (≥ 4 so the dot is ≥ 8 px).
pub const MARKER_R: f64 = 4.5;
/// Base font stack.
pub const FONT: &str = "system-ui, -apple-system, 'Segoe UI', sans-serif";

/// Picks clean axis ticks covering `[0, max]`: returns (tick step,
/// scale top). Steps are 1/2/2.5/5 × 10^k.
///
/// # Panics
///
/// Panics if `max` is not finite and positive.
pub fn clean_ticks(max: f64) -> (f64, f64) {
    assert!(max.is_finite() && max > 0.0, "axis max must be positive");
    let raw = max / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| s >= raw)
        .unwrap_or(10.0 * mag);
    let top = (max / step).ceil() * step;
    (step, top)
}

/// Formats a tick value without trailing noise (1, 2.5, 1,000).
pub fn fmt_tick(v: f64) -> String {
    if v >= 1000.0 && v.fract() == 0.0 {
        let n = v as i64;
        let s = n.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else if (v * 10.0).fract().abs() < 1e-9 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_clean_and_cover() {
        for max in [0.7, 1.0, 3.3, 7.2, 42.0, 997.0] {
            let (step, top) = clean_ticks(max);
            assert!(top >= max, "top {top} must cover {max}");
            assert!(top / step <= 8.5, "too many ticks for {max}");
            assert!(step > 0.0);
        }
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(2.0), "2");
        assert_eq!(fmt_tick(2.5), "2.5");
        assert_eq!(fmt_tick(1000.0), "1,000");
        assert_eq!(fmt_tick(1234567.0), "1,234,567");
        assert_eq!(fmt_tick(0.25), "0.25");
    }

    #[test]
    fn themes_are_complete_and_distinct() {
        let l = Theme::light();
        let d = Theme::dark();
        assert_ne!(l.surface, d.surface);
        assert_eq!(l.series.len(), d.series.len());
        for hex in l.series.iter().chain(d.series.iter()) {
            assert!(hex.starts_with('#') && hex.len() == 7, "{hex}");
        }
        assert_eq!(Theme::default(), Theme::light());
    }

    #[test]
    fn palette_has_eight_fixed_slots() {
        assert_eq!(SERIES.len(), 8);
        let mut uniq: Vec<&str> = SERIES.to_vec();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        for hex in SERIES {
            assert!(hex.starts_with('#') && hex.len() == 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ticks_reject_nonpositive() {
        clean_ticks(0.0);
    }
}
