#![warn(missing_docs)]

//! Std-only SVG rendering of the paper's figures.
//!
//! Produces self-contained SVG files for the grouped-bar comparisons
//! (Figs. 2, 8), the sensitivity line charts (Figs. 12–14), the
//! percentage bars (Fig. 3), and the log-log correlation scatter
//! (Fig. 7). Marks follow a fixed spec — thin bars with rounded data
//! ends and square baselines, 2 px gaps, 2 px lines, ≥ 8 px markers,
//! hairline grids — and every mark carries a `<title>` element so
//! browsers show a native tooltip. Series hues are assigned in a fixed
//! validated order (worst adjacent CVD ΔE 24.2); two slots sit below
//! 3:1 contrast on the light surface, so charts ship direct labels on
//! the headline group and the experiment drivers always print the full
//! table alongside.
//!
//! # Example
//!
//! ```
//! use hmg_plot::GroupedBars;
//!
//! let chart = GroupedBars::new("Speedup over no-peer-caching")
//!     .group("bfs", vec![1.2, 2.5])
//!     .group("lstm", vec![1.1, 1.8])
//!     .series(vec!["NHCC".into(), "HMG".into()]);
//! let svg = chart.to_svg();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("bfs"));
//! ```

pub mod style;
pub mod svg;

mod bars;
mod lines;
mod scatter;

pub use bars::GroupedBars;
pub use lines::LineChart;
pub use scatter::LogLogScatter;
