//! A log-log scatter with the y = x diagonal — the Fig. 7 correlation
//! plot (predicted vs simulated cycles).

use crate::style::MARKER_R;
use crate::svg::{Anchor, Svg};

/// A log-log scatter of (x, y) points against the y = x diagonal.
#[derive(Debug, Clone)]
pub struct LogLogScatter {
    title: String,
    subtitle: Option<String>,
    x_label: String,
    y_label: String,
    points: Vec<(String, f64, f64)>,
    theme: crate::style::Theme,
}

impl LogLogScatter {
    /// Starts a chart with a title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LogLogScatter {
            title: title.into(),
            subtitle: None,
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
            theme: crate::style::Theme::light(),
        }
    }

    /// Renders with the given theme (light is the default; dark is the
    /// validated dark restep of the same hues).
    pub fn theme(mut self, theme: crate::style::Theme) -> Self {
        self.theme = theme;
        self
    }

    /// Adds a subtitle (e.g. the correlation coefficient).
    pub fn subtitle(mut self, s: impl Into<String>) -> Self {
        self.subtitle = Some(s.into());
        self
    }

    /// Adds one named point.
    ///
    /// # Panics
    ///
    /// Panics unless both coordinates are strictly positive (log scale).
    pub fn point(mut self, name: impl Into<String>, x: f64, y: f64) -> Self {
        assert!(x > 0.0 && y > 0.0, "log-log points must be positive");
        self.points.push((name.into(), x, y));
        self
    }

    /// Renders the chart.
    ///
    /// # Panics
    ///
    /// Panics if there are no points.
    pub fn to_svg(&self) -> String {
        assert!(!self.points.is_empty(), "scatter has no points");
        let margin_l = 70.0;
        let margin_r = 28.0;
        let margin_t = 48.0 + if self.subtitle.is_some() { 18.0 } else { 0.0 };
        let margin_b = 56.0;
        let plot = 300.0;
        let width = margin_l + plot + margin_r;
        let height = margin_t + plot + margin_b;

        // Shared log range covering both axes, expanded to whole decades.
        let min_v = self
            .points
            .iter()
            .flat_map(|&(_, x, y)| [x, y])
            .fold(f64::INFINITY, f64::min);
        let max_v = self
            .points
            .iter()
            .flat_map(|&(_, x, y)| [x, y])
            .fold(0.0f64, f64::max);
        let lo = min_v.log10().floor();
        let hi = max_v.log10().ceil().max(lo + 1.0);
        let pos = |v: f64| (v.log10() - lo) / (hi - lo) * plot;
        let x_of = |v: f64| margin_l + pos(v);
        let y_of = |v: f64| margin_t + plot - pos(v);

        let mut svg = Svg::new(width, height, self.theme.surface);
        svg.text(
            margin_l,
            24.0,
            &self.title,
            self.theme.text_primary,
            15.0,
            Anchor::Start,
        );
        if let Some(sub) = &self.subtitle {
            svg.text(
                margin_l,
                42.0,
                sub,
                self.theme.text_secondary,
                11.0,
                Anchor::Start,
            );
        }

        // Decade gridlines on both axes.
        let mut d = lo;
        while d <= hi + 1e-9 {
            let v = 10f64.powf(d);
            svg.line(
                x_of(v),
                margin_t,
                x_of(v),
                margin_t + plot,
                self.theme.grid,
                1.0,
            );
            svg.line(
                margin_l,
                y_of(v),
                margin_l + plot,
                y_of(v),
                self.theme.grid,
                1.0,
            );
            let tick = format!("1e{d:.0}");
            svg.text(
                x_of(v),
                margin_t + plot + 16.0,
                &tick,
                self.theme.text_secondary,
                10.0,
                Anchor::Middle,
            );
            svg.text(
                margin_l - 8.0,
                y_of(v) + 3.5,
                &tick,
                self.theme.text_secondary,
                10.0,
                Anchor::End,
            );
            d += 1.0;
        }
        svg.text(
            margin_l + plot / 2.0,
            margin_t + plot + 38.0,
            &self.x_label,
            self.theme.text_secondary,
            11.0,
            Anchor::Middle,
        );
        svg.text_rotated(
            18.0,
            margin_t + plot / 2.0,
            &self.y_label,
            self.theme.text_secondary,
            11.0,
            Anchor::Middle,
            -90.0,
        );

        // y = x diagonal.
        svg.line(
            x_of(10f64.powf(lo)),
            y_of(10f64.powf(lo)),
            x_of(10f64.powf(hi)),
            y_of(10f64.powf(hi)),
            self.theme.text_secondary,
            1.0,
        );

        // Points, all in slot 1 (one population, identity via tooltip).
        for (name, x, y) in &self.points {
            svg.marker(
                x_of(*x),
                y_of(*y),
                MARKER_R,
                self.theme.series[0],
                self.theme.surface,
                &format!("{name}: predicted {x:.0}, simulated {y:.0}"),
            );
        }
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_diagonal() {
        let out = LogLogScatter::new("Fig. 7", "predicted", "simulated")
            .subtitle("r = 0.998")
            .point("a", 1e4, 1.2e4)
            .point("b", 1e6, 0.9e6)
            .point("c", 1e8, 1e8)
            .to_svg();
        assert_eq!(out.matches("<circle").count(), 3);
        assert!(out.contains("r = 0.998"));
        assert!(out.contains("1e4"));
        assert!(out.contains("predicted 1000000"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_points() {
        let _ = LogLogScatter::new("t", "x", "y").point("bad", 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn rejects_empty() {
        LogLogScatter::new("t", "x", "y").to_svg();
    }
}
