//! Line charts for the sensitivity sweeps (Figs. 12–14): one line per
//! protocol over the swept parameter's points.

use crate::style::{clean_ticks, fmt_tick, LINE_WIDTH, MARKER_R};
use crate::svg::{Anchor, Svg};

/// A multi-series line chart over categorical x points.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    subtitle: Option<String>,
    x_points: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
    y_label: Option<String>,
    theme: crate::style::Theme,
}

impl LineChart {
    /// Starts a chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            subtitle: None,
            x_points: Vec::new(),
            series: Vec::new(),
            y_label: None,
            theme: crate::style::Theme::light(),
        }
    }

    /// Renders with the given theme (light is the default; dark is the
    /// validated dark restep of the same hues).
    pub fn theme(mut self, theme: crate::style::Theme) -> Self {
        self.theme = theme;
        self
    }

    /// Adds a subtitle.
    pub fn subtitle(mut self, s: impl Into<String>) -> Self {
        self.subtitle = Some(s.into());
        self
    }

    /// Sets the x-axis point labels (the sweep values).
    pub fn x_points(mut self, labels: Vec<String>) -> Self {
        self.x_points = labels;
        self
    }

    /// Adds one series with a value per x point.
    pub fn line(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.series.push((name.into(), values));
        self
    }

    /// Labels the y axis.
    pub fn y_label(mut self, s: impl Into<String>) -> Self {
        self.y_label = Some(s.into());
        self
    }

    /// Renders the chart.
    ///
    /// # Panics
    ///
    /// Panics on missing x points or arity mismatches.
    pub fn to_svg(&self) -> String {
        assert!(!self.x_points.is_empty(), "chart has no x points");
        assert!(!self.series.is_empty(), "chart has no series");
        for (name, vals) in &self.series {
            assert_eq!(vals.len(), self.x_points.len(), "series {name} arity");
        }

        let margin_l = 64.0;
        let margin_r = 110.0; // room for direct end labels
        let legend_h = if self.series.len() > 1 { 26.0 } else { 0.0 };
        let margin_t = 48.0 + if self.subtitle.is_some() { 18.0 } else { 0.0 } + legend_h;
        let margin_b = 44.0;
        let plot_w = (self.x_points.len() as f64 - 1.0).max(1.0) * 110.0;
        let plot_h = 240.0;
        let width = margin_l + plot_w + margin_r;
        let height = margin_t + plot_h + margin_b;

        let max_v = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max);
        let (step, top) = clean_ticks(max_v.max(1e-9));
        let y_of = |v: f64| margin_t + plot_h - (v / top) * plot_h;
        let x_of = |i: usize| {
            if self.x_points.len() == 1 {
                margin_l + plot_w / 2.0
            } else {
                margin_l + i as f64 * plot_w / (self.x_points.len() as f64 - 1.0)
            }
        };

        let mut svg = Svg::new(width, height, self.theme.surface);
        svg.text(
            margin_l,
            24.0,
            &self.title,
            self.theme.text_primary,
            15.0,
            Anchor::Start,
        );
        if let Some(sub) = &self.subtitle {
            svg.text(
                margin_l,
                42.0,
                sub,
                self.theme.text_secondary,
                11.0,
                Anchor::Start,
            );
        }
        if self.series.len() > 1 {
            let mut x = margin_l;
            let ly = margin_t - legend_h + 4.0;
            for (i, (name, _)) in self.series.iter().enumerate() {
                svg.swatch(x, ly, 10.0, self.theme.series[i % self.theme.series.len()]);
                svg.text(
                    x + 14.0,
                    ly + 9.0,
                    name,
                    self.theme.text_secondary,
                    11.0,
                    Anchor::Start,
                );
                x += 14.0 + 7.0 * name.len() as f64 + 18.0;
            }
        }

        let mut v = 0.0;
        while v <= top + 1e-9 {
            let y = y_of(v);
            svg.line(margin_l, y, margin_l + plot_w, y, self.theme.grid, 1.0);
            svg.text(
                margin_l - 8.0,
                y + 3.5,
                &fmt_tick(v),
                self.theme.text_secondary,
                10.0,
                Anchor::End,
            );
            v += step;
        }
        if let Some(label) = &self.y_label {
            svg.text_rotated(
                16.0,
                margin_t + plot_h / 2.0,
                label,
                self.theme.text_secondary,
                11.0,
                Anchor::Middle,
                -90.0,
            );
        }
        for (i, xl) in self.x_points.iter().enumerate() {
            svg.text(
                x_of(i),
                margin_t + plot_h + 18.0,
                xl,
                self.theme.text_secondary,
                10.5,
                Anchor::Middle,
            );
        }
        svg.line(
            margin_l,
            y_of(0.0),
            margin_l + plot_w,
            y_of(0.0),
            self.theme.text_secondary,
            1.0,
        );

        // Lines, markers, and direct end labels with collision nudging
        // replaced by leader-free spacing: end labels sort by final value
        // and spread at least 13 px apart.
        let mut ends: Vec<(usize, f64)> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (_, vals))| (i, *vals.last().expect("nonempty")))
            .collect();
        ends.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let mut label_ys: Vec<(usize, f64)> = Vec::new();
        let mut prev_y = f64::NEG_INFINITY;
        for &(si, val) in &ends {
            let mut y = y_of(val);
            if y - prev_y < 13.0 && prev_y.is_finite() {
                y = prev_y + 13.0;
            }
            label_ys.push((si, y));
            prev_y = y;
        }

        for (si, (name, vals)) in self.series.iter().enumerate() {
            let color = self.theme.series[si % self.theme.series.len()];
            let pts: Vec<(f64, f64)> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| (x_of(i), y_of(v)))
                .collect();
            svg.polyline(&pts, color, LINE_WIDTH);
            for (i, &v) in vals.iter().enumerate() {
                svg.marker(
                    x_of(i),
                    y_of(v),
                    MARKER_R,
                    color,
                    self.theme.surface,
                    &format!("{name} @ {}: {v:.2}", self.x_points[i]),
                );
            }
            let ly = label_ys
                .iter()
                .find(|(i, _)| *i == si)
                .map(|&(_, y)| y)
                .expect("every series labeled");
            svg.text(
                margin_l + plot_w + 10.0,
                ly + 3.5,
                name,
                self.theme.text_secondary,
                10.5,
                Anchor::Start,
            );
        }
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineChart {
        LineChart::new("Fig. 12")
            .subtitle("inter-GPU bandwidth")
            .x_points(vec!["100".into(), "200".into(), "300".into(), "400".into()])
            .line("nhcc", vec![1.0, 1.1, 1.15, 1.18])
            .line("hmg", vec![1.2, 1.3, 1.32, 1.33])
            .y_label("geomean speedup")
    }

    #[test]
    fn renders_lines_markers_labels() {
        let out = sample().to_svg();
        assert_eq!(out.matches("<polyline").count(), 2);
        assert_eq!(out.matches("<circle").count(), 8);
        assert!(out.contains("hmg @ 400: 1.33"));
        assert!(out.contains("Fig. 12"));
    }

    #[test]
    fn end_labels_never_collide() {
        // Two series converging to nearly identical values.
        let out = LineChart::new("converge")
            .x_points(vec!["a".into(), "b".into()])
            .line("one", vec![1.0, 2.0])
            .line("two", vec![1.5, 2.01])
            .to_svg();
        // Extract the y of the two end labels (last two text elements
        // anchored at start beyond the plot).
        // The *last* occurrence of each name is its end label (the
        // first is the legend entry).
        let ys: Vec<f64> = [">one<", ">two<"]
            .iter()
            .filter_map(|n| out.match_indices(n).last())
            .map(|(i, _)| {
                let prefix = &out[..i];
                let y_pos = prefix.rfind(" y=\"").expect("y attr") + 4;
                prefix[y_pos..]
                    .split('"')
                    .next()
                    .expect("value")
                    .parse()
                    .expect("float")
            })
            .collect();
        assert_eq!(ys.len(), 2);
        assert!((ys[0] - ys[1]).abs() >= 12.9, "labels too close: {ys:?}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        LineChart::new("bad")
            .x_points(vec!["a".into()])
            .line("s", vec![1.0, 2.0])
            .to_svg();
    }
}
