//! A minimal SVG document builder: just enough shapes and text for the
//! figure renderers, with XML escaping handled in one place.

use std::fmt::Write as _;

/// Escapes text for XML content/attributes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Horizontal text anchoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Left-aligned.
    Start,
    /// Centered.
    Middle,
    /// Right-aligned.
    End,
}

impl Anchor {
    fn as_str(self) -> &'static str {
        match self {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        }
    }
}

/// An SVG document under construction.
#[derive(Debug)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

impl Svg {
    /// Starts a document of the given pixel size with a surface-colored
    /// background.
    pub fn new(width: f64, height: f64, surface: &str) -> Self {
        let mut svg = Svg {
            width,
            height,
            body: String::new(),
        };
        let _ = write!(
            svg.body,
            r#"<rect x="0" y="0" width="{width}" height="{height}" fill="{surface}"/>"#
        );
        svg
    }

    /// A straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width}" stroke-linecap="round"/>"#
        );
    }

    /// A polyline through `points` (no fill).
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        let _ = write!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}" stroke-linejoin="round" stroke-linecap="round"/>"#,
            pts.join(" ")
        );
    }

    /// A filled circle with a surface-colored 2 px ring and a tooltip.
    pub fn marker(&mut self, x: f64, y: f64, r: f64, fill: &str, surface: &str, tip: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r}" fill="{fill}" stroke="{surface}" stroke-width="2"><title>{}</title></circle>"#,
            escape(tip)
        );
    }

    /// A vertical bar growing up from `base_y`, with a 4 px rounded data
    /// end, a square baseline, and a tooltip.
    #[allow(clippy::too_many_arguments)] // a geometry call, not a config
    pub fn bar_up(
        &mut self,
        x: f64,
        base_y: f64,
        w: f64,
        h: f64,
        radius: f64,
        fill: &str,
        tip: &str,
    ) {
        let r = radius.min(w / 2.0).min(h.max(0.0));
        let top = base_y - h;
        // Path: baseline-left up to rounded top corners, down to
        // baseline-right.
        let _ = write!(
            self.body,
            r#"<path d="M{x0:.1} {by:.1} L{x0:.1} {ty1:.1} Q{x0:.1} {ty:.1} {x1:.1} {ty:.1} L{x2:.1} {ty:.1} Q{x3:.1} {ty:.1} {x3:.1} {ty1:.1} L{x3:.1} {by:.1} Z" fill="{fill}"><title>{tip}</title></path>"#,
            x0 = x,
            by = base_y,
            ty = top,
            ty1 = top + r,
            x1 = x + r,
            x2 = x + w - r,
            x3 = x + w,
            tip = escape(tip),
        );
    }

    /// Text at `(x, y)` (baseline), in `fill`, `size` px, anchored.
    pub fn text(&mut self, x: f64, y: f64, s: &str, fill: &str, size: f64, anchor: Anchor) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" fill="{fill}" font-size="{size}" text-anchor="{}" font-family="{}">{}</text>"#,
            anchor.as_str(),
            crate::style::FONT,
            escape(s)
        );
    }

    /// Text rotated `deg` degrees around its anchor point.
    #[allow(clippy::too_many_arguments)] // a geometry call, not a config
    pub fn text_rotated(
        &mut self,
        x: f64,
        y: f64,
        s: &str,
        fill: &str,
        size: f64,
        anchor: Anchor,
        deg: f64,
    ) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" fill="{fill}" font-size="{size}" text-anchor="{}" font-family="{}" transform="rotate({deg:.0} {x:.1} {y:.1})">{}</text>"#,
            anchor.as_str(),
            crate::style::FONT,
            escape(s)
        );
    }

    /// A small filled square (legend swatch).
    pub fn swatch(&mut self, x: f64, y: f64, size: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{size}" height="{size}" rx="2" fill="{fill}"/>"#
        );
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">{body}</svg>"#,
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_xml_specials() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut s = Svg::new(100.0, 50.0, "#fff");
        s.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0);
        s.text(5.0, 5.0, "hi & bye", "#000", 10.0, Anchor::Middle);
        let out = s.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.ends_with("</svg>"));
        assert!(out.contains("hi &amp; bye"));
        assert!(out.contains(r#"viewBox="0 0 100 50""#));
    }

    #[test]
    fn bar_radius_clamps_to_geometry() {
        let mut s = Svg::new(100.0, 100.0, "#fff");
        // A bar shorter than the radius must not produce a negative
        // quadratic control point.
        s.bar_up(10.0, 90.0, 6.0, 2.0, 4.0, "#123456", "tip");
        let out = s.finish();
        assert!(out.contains("path"));
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn markers_carry_tooltips_and_rings() {
        let mut s = Svg::new(10.0, 10.0, "#fff");
        s.marker(5.0, 5.0, 4.5, "#123", "#fff", "series: 3 & 4");
        let out = s.finish();
        assert!(out.contains("<title>series: 3 &amp; 4</title>"));
        assert!(out.contains(r#"stroke-width="2""#));
    }
}
