//! Grouped bar charts — the Figs. 2/8-style protocol comparisons and
//! the single-series Fig. 3/9–11 profiles.

use crate::style::{clean_ticks, fmt_tick, BAR_MAX, BAR_RADIUS, MARK_GAP};
use crate::svg::{Anchor, Svg};

/// A grouped (or single-series) vertical bar chart.
///
/// Groups run along the x-axis (one per workload); each group holds one
/// bar per series (protocol), colored by fixed slot order and separated
/// by 2 px of surface. The final group may be marked as the headline
/// (e.g. GeoMean) and gets direct value labels — the "relief" channel
/// for the two low-contrast palette slots.
#[derive(Debug, Clone)]
pub struct GroupedBars {
    title: String,
    subtitle: Option<String>,
    series_names: Vec<String>,
    groups: Vec<(String, Vec<f64>)>,
    y_label: Option<String>,
    label_last_group: bool,
    reference_line: Option<f64>,
    theme: crate::style::Theme,
}

impl GroupedBars {
    /// Starts a chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        GroupedBars {
            title: title.into(),
            subtitle: None,
            series_names: Vec::new(),
            groups: Vec::new(),
            y_label: None,
            label_last_group: false,
            reference_line: None,
            theme: crate::style::Theme::light(),
        }
    }

    /// Renders with the given theme (light is the default; dark is the
    /// validated dark restep of the same hues).
    pub fn theme(mut self, theme: crate::style::Theme) -> Self {
        self.theme = theme;
        self
    }

    /// Adds a subtitle under the title.
    pub fn subtitle(mut self, s: impl Into<String>) -> Self {
        self.subtitle = Some(s.into());
        self
    }

    /// Names the series, in fixed slot order.
    pub fn series(mut self, names: Vec<String>) -> Self {
        self.series_names = names;
        self
    }

    /// Appends one x-axis group with one value per series.
    pub fn group(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.groups.push((name.into(), values));
        self
    }

    /// Labels the y axis.
    pub fn y_label(mut self, s: impl Into<String>) -> Self {
        self.y_label = Some(s.into());
        self
    }

    /// Direct-labels the values of the final group (the headline).
    pub fn label_last_group(mut self) -> Self {
        self.label_last_group = true;
        self
    }

    /// Draws a horizontal reference line (e.g. the 1.0 baseline).
    pub fn reference_line(mut self, y: f64) -> Self {
        self.reference_line = Some(y);
        self
    }

    /// Renders the chart.
    ///
    /// # Panics
    ///
    /// Panics if a group's value count disagrees with the series names,
    /// or the chart has no data.
    pub fn to_svg(&self) -> String {
        assert!(!self.groups.is_empty(), "chart has no groups");
        let n_series = self.series_names.len().max(1);
        for (g, vals) in &self.groups {
            assert_eq!(vals.len(), n_series, "group {g} has wrong arity");
        }

        let n_groups = self.groups.len();
        let bar_w = BAR_MAX.min(18.0).min(160.0 / n_series as f64);
        let group_w = (n_series as f64 * (bar_w + MARK_GAP) + 18.0).max(34.0);
        let margin_l = 64.0;
        let margin_r = 24.0;
        let legend_h = if n_series > 1 { 26.0 } else { 0.0 };
        let margin_t = 48.0 + if self.subtitle.is_some() { 18.0 } else { 0.0 } + legend_h;
        let margin_b = 74.0;
        let plot_w = group_w * n_groups as f64;
        let plot_h = 260.0;
        let width = margin_l + plot_w + margin_r;
        let height = margin_t + plot_h + margin_b;

        let max_v = self
            .groups
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(self.reference_line.unwrap_or(0.0));
        let (step, top) = clean_ticks(max_v.max(1e-9));
        let y_of = |v: f64| margin_t + plot_h - (v / top) * plot_h;

        let mut svg = Svg::new(width, height, self.theme.surface);

        // Title block.
        svg.text(
            margin_l,
            24.0,
            &self.title,
            self.theme.text_primary,
            15.0,
            Anchor::Start,
        );
        if let Some(sub) = &self.subtitle {
            svg.text(
                margin_l,
                42.0,
                sub,
                self.theme.text_secondary,
                11.0,
                Anchor::Start,
            );
        }
        // Legend (only with two or more series).
        if n_series > 1 {
            let mut x = margin_l;
            let ly = margin_t - legend_h + 4.0;
            for (i, name) in self.series_names.iter().enumerate() {
                svg.swatch(x, ly, 10.0, self.theme.series[i % self.theme.series.len()]);
                svg.text(
                    x + 14.0,
                    ly + 9.0,
                    name,
                    self.theme.text_secondary,
                    11.0,
                    Anchor::Start,
                );
                x += 14.0 + 7.0 * name.len() as f64 + 18.0;
            }
        }

        // Gridlines + y ticks.
        let mut v = 0.0;
        while v <= top + 1e-9 {
            let y = y_of(v);
            svg.line(margin_l, y, margin_l + plot_w, y, self.theme.grid, 1.0);
            svg.text(
                margin_l - 8.0,
                y + 3.5,
                &fmt_tick(v),
                self.theme.text_secondary,
                10.0,
                Anchor::End,
            );
            v += step;
        }
        if let Some(label) = &self.y_label {
            svg.text_rotated(
                16.0,
                margin_t + plot_h / 2.0,
                label,
                self.theme.text_secondary,
                11.0,
                Anchor::Middle,
                -90.0,
            );
        }

        // Bars.
        let base_y = y_of(0.0);
        for (gi, (gname, vals)) in self.groups.iter().enumerate() {
            let gx = margin_l + gi as f64 * group_w + 9.0;
            for (si, &val) in vals.iter().enumerate() {
                let x = gx + si as f64 * (bar_w + MARK_GAP);
                let h = (val.max(0.0) / top) * plot_h;
                let color = self.theme.series[si % self.theme.series.len()];
                let tip = if n_series > 1 {
                    format!("{gname} · {}: {val:.2}", self.series_names[si])
                } else {
                    format!("{gname}: {val:.2}")
                };
                svg.bar_up(x, base_y, bar_w, h, BAR_RADIUS, color, &tip);
                if self.label_last_group && gi == n_groups - 1 {
                    svg.text(
                        x + bar_w / 2.0,
                        y_of(val) - 5.0,
                        &format!("{val:.2}"),
                        self.theme.text_primary,
                        9.5,
                        Anchor::Middle,
                    );
                }
            }
            // X label, angled to avoid collisions.
            svg.text_rotated(
                gx + (n_series as f64 * (bar_w + MARK_GAP)) / 2.0,
                base_y + 14.0,
                gname,
                self.theme.text_secondary,
                10.0,
                Anchor::End,
                -35.0,
            );
        }

        // Reference line over the bars.
        if let Some(r) = self.reference_line {
            let y = y_of(r);
            svg.line(
                margin_l,
                y,
                margin_l + plot_w,
                y,
                self.theme.text_secondary,
                1.0,
            );
        }
        // Baseline axis.
        svg.line(
            margin_l,
            base_y,
            margin_l + plot_w,
            base_y,
            self.theme.text_secondary,
            1.0,
        );

        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupedBars {
        GroupedBars::new("Fig. 8")
            .subtitle("speedup over baseline")
            .series(vec!["sw".into(), "nhcc".into(), "hmg".into()])
            .group("bfs", vec![1.2, 2.2, 2.5])
            .group("lstm", vec![1.1, 1.2, 1.8])
            .group("GeoMean", vec![1.1, 1.5, 2.0])
            .y_label("speedup")
            .label_last_group()
            .reference_line(1.0)
    }

    #[test]
    fn renders_all_parts() {
        let out = sample().to_svg();
        assert!(out.starts_with("<svg"));
        for needle in ["Fig. 8", "speedup over baseline", "bfs", "GeoMean", "hmg"] {
            assert!(out.contains(needle), "missing {needle}");
        }
        // Three groups x three series = nine bars with tooltips.
        assert_eq!(out.matches("<path").count(), 9);
        assert_eq!(out.matches("<title>").count(), 9);
        // Headline labels on the last group only.
        assert!(out.contains(">2.00<"));
    }

    #[test]
    fn dark_theme_swaps_surface_and_series() {
        let light = sample().to_svg();
        let dark = sample().theme(crate::style::Theme::dark()).to_svg();
        assert!(light.contains("#fcfcfb"));
        assert!(dark.contains("#1a1a19"));
        assert!(dark.contains("#3987e5"), "dark blue step used");
        assert!(!dark.contains("#2a78d6"), "light blue step absent");
    }

    #[test]
    fn single_series_has_no_legend() {
        let out = GroupedBars::new("solo")
            .series(vec!["only".into()])
            .group("a", vec![1.0])
            .to_svg();
        // Exactly one rect: the background; no legend swatches.
        assert_eq!(out.matches("<rect").count(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn arity_mismatch_rejected() {
        GroupedBars::new("bad")
            .series(vec!["a".into(), "b".into()])
            .group("g", vec![1.0])
            .to_svg();
    }

    #[test]
    #[should_panic(expected = "no groups")]
    fn empty_chart_rejected() {
        GroupedBars::new("empty").to_svg();
    }
}
