//! Self-contained deterministic pseudo-random number generation.
//!
//! The workload generators and page-placement hashes must be bit-for-bit
//! reproducible across toolchain and dependency upgrades, so the simulator
//! carries its own SplitMix64 implementation instead of depending on an
//! external RNG crate (see DESIGN.md §5).

/// A SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period, and is trivially
/// seedable, which is all the workload generators need.
///
/// # Example
///
/// ```
/// use hmg_sim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let v = a.gen_range(10, 20);
/// assert!((10..20).contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.gen_range(0, slice.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples an approximately Zipf-distributed index in `[0, n)` with
    /// exponent `s`, via inverse-CDF on a power-law envelope.
    ///
    /// The graph workloads (bfs, mst) use this to model power-law vertex
    /// degree distributions, which the paper identifies as the source of
    /// their fine-grained conflicting accesses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        if n == 1 {
            return 0;
        }
        // Inverse-CDF of the continuous power-law on [1, n+1):
        //   x = ((n+1)^(1-s) - 1) * u + 1, then invert.
        let one_minus_s = 1.0 - s;
        let u = self.gen_f64();
        let x = if one_minus_s.abs() < 1e-9 {
            // s == 1: CDF is logarithmic.
            ((n + 1) as f64).powf(u)
        } else {
            let top = ((n + 1) as f64).powf(one_minus_s);
            ((top - 1.0) * u + 1.0).powf(1.0 / one_minus_s)
        };
        ((x as u64).saturating_sub(1)).min(n - 1)
    }
}

// `Rng::new(seed)` stores the seed verbatim, so serializing the current
// state and re-seeding from it resumes the stream at the exact position
// — the property the snapshot/restore subsystem relies on for every
// salted fault/scrub stream.
impl crate::snap::SnapshotWrite for Rng {
    fn write_snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.state);
    }
}

impl crate::snap::SnapshotRead for Rng {
    fn read_snap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Rng {
            state: r.get_u64()?,
        })
    }
}

/// A cheap stateless 64-bit mix function, used for address-to-home-node
/// hashing so that home assignment is uniform but deterministic.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5, 17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut r = Rng::new(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_in_bounds_and_skewed() {
        let mut r = Rng::new(13);
        let n = 1000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..100_000 {
            let v = r.gen_zipf(n, 0.9);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        // Head must be much hotter than the tail for a skewed distribution.
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[n as usize - 10..].iter().sum();
        assert!(head > tail * 5, "head={head} tail={tail}");
    }

    #[test]
    fn zipf_single_element_domain() {
        let mut r = Rng::new(1);
        assert_eq!(r.gen_zipf(1, 1.0), 0);
    }

    #[test]
    fn hash64_spreads_low_entropy_inputs() {
        let mut buckets = [0u32; 16];
        for i in 0..16_000u64 {
            buckets[(hash64(i) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::new(21);
        let xs = [1, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
