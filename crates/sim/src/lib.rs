#![warn(missing_docs)]

//! Discrete-event simulation kernel for the HMG reproduction.
//!
//! This crate contains the domain-independent pieces of the simulator:
//!
//! * [`addr`] — byte addresses and the cache-line / directory-block /
//!   page granularities, shared by every layer above.
//! * [`Cycle`] — the simulated clock, a newtype over `u64`.
//! * [`EventQueue`] — a deterministic time-ordered calendar event
//!   queue (with [`ReferenceEventQueue`] as its differential oracle).
//! * [`collect`] — flat deterministic hot-path collections
//!   ([`collect::FlatMap`], [`collect::FlatSet`], [`collect::VecPool`]).
//! * [`rng::Rng`] — a self-contained SplitMix64 PRNG so that every
//!   experiment is bit-for-bit reproducible from a seed.
//! * [`stats`] — counters and the small amount of statistics math the
//!   evaluation needs (means, geometric means, Pearson correlation).
//! * [`error::SimError`] — typed fatal errors with cycle/agent/address
//!   context, shared by every layer of the stack.
//! * [`fault::FaultPlan`] — deterministic fault-injection plans
//!   consumed by the interconnect and the GPU engine.
//! * [`watchdog::ProgressWatchdog`] — livelock detection for event
//!   loops.
//!
//! The memory-system model itself lives in the `hmg-mem`, `hmg-protocol`
//! and `hmg-gpu` crates; they drive this kernel.
//!
//! # Example
//!
//! ```
//! use hmg_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "b");
//! q.push(Cycle(5), "a");
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b")));
//! assert!(q.pop().is_none());
//! ```

pub mod addr;
pub mod collect;
pub mod error;
pub mod event;
pub mod fault;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod watchdog;

pub use addr::{Addr, BlockAddr, LineAddr, MemGeometry, PageId};
pub use error::{SimError, SimErrorKind};
pub use event::{EventQueue, ReferenceEventQueue};
pub use fault::{DirFlip, FaultPlan, GpmOffline, GpuOffline, LineFlip, LinkDown, MsgFlip};
pub use rng::Rng;
pub use snap::{
    SnapError, SnapReader, SnapWriter, Snapshot, SnapshotRead, SnapshotStore, SnapshotWrite,
};
pub use stats::{IntegrityStats, ReconfigStats};
pub use time::Cycle;
pub use watchdog::ProgressWatchdog;
