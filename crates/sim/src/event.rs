//! Deterministic time-ordered event queue.
//!
//! The production [`EventQueue`] is a *calendar queue*: a ring of
//! one-cycle buckets sized to cover every latency the timing model
//! schedules on the hot path (fabric hops at 90/360 cycles, DRAM,
//! kernel launch, scrub periods, transport timeouts with backoff), plus
//! a small overflow list for far-future timers such as watchdog
//! budgets. `push`/`pop` are O(1) amortized instead of the O(log n) of
//! a binary heap, and same-cycle FIFO order falls out of bucket append
//! order with no tie-breaking sequence numbers at all — see DESIGN.md
//! §13 for the bucket math and the determinism argument.
//!
//! [`ReferenceEventQueue`] retains the original heap implementation as
//! the oracle for the differential test (`tests/event_queue_diff.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap; // audit:allow(hot-path-struct): reference oracle only; the production queue below is the calendar ring.

use crate::time::Cycle;

/// log2 of the calendar ring size. 2^15 = 32768 one-cycle buckets
/// covers every periodic latency in the timing model — fabric hops
/// (90/360), DRAM (350), kernel launch (3000), scrub periods (5000),
/// and transport timeouts at maximum backoff (500 << 6 = 32000) — so
/// the overflow list only ever sees one-shot far-future timers.
/// (A smaller 2^13 ring was measured slower: deep-backoff retries then
/// overflow to the far list and its migrations cost more than the
/// extra 224 KB of bucket table.)
const RING_BITS: u32 = 15;
const RING_SLOTS: usize = 1 << RING_BITS;
const RING_MASK: usize = RING_SLOTS - 1;
/// Bitmap words covering the ring (one bit per bucket).
const OCC_WORDS: usize = RING_SLOTS / 64;
/// Second-level bitmap words (one bit per occupancy word).
const SUM_WORDS: usize = OCC_WORDS / 64;

/// Sentinel index terminating a bucket's chain.
const NIL: u32 = u32::MAX;

/// One slab-allocated event: the payload plus the index of the next
/// event in the same bucket. Freed nodes keep their slot (payload
/// `None`) and are recycled through the free list, so a steady-state
/// simulation performs no per-event allocation at all.
struct Node<E> {
    next: u32,
    payload: Option<E>,
}

/// A deterministic discrete-event queue (calendar/bucket queue).
///
/// Events are popped in nondecreasing time order; events scheduled for
/// the same cycle pop in the order they were pushed. This determinism
/// is what makes whole-system simulations reproducible from a seed.
///
/// # Example
///
/// ```
/// use hmg_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(7), 'x');
/// q.push(Cycle(7), 'y');
/// q.push(Cycle(3), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['z', 'x', 'y']);
/// assert_eq!(q.events_processed(), 3);
/// ```
pub struct EventQueue<E> {
    /// One FIFO bucket per cycle in the window
    /// `[win_base, win_base + RING_SLOTS)`, as `(head, tail)` indices
    /// into `nodes` (`NIL` when empty); bucket index is
    /// `cycle & RING_MASK`, so a bucket's cycle is recoverable from its
    /// circular distance to `win_base` and entries need no timestamps.
    slots: Vec<(u32, u32)>,
    /// Slab of chained events; `free` holds the recyclable indices.
    nodes: Vec<Node<E>>,
    free: Vec<u32>,
    /// Occupancy bitmap: bit `s` set iff `slots[s]` is non-empty.
    occ: Box<[u64; OCC_WORDS]>,
    /// Summary bitmap: bit `w` set iff `occ[w]` is non-zero.
    sum: Box<[u64; SUM_WORDS]>,
    /// Events currently in the ring.
    ring_len: usize,
    /// Base of the ring window. Equals `now` except transiently inside
    /// `pop` when the window jumps forward to the earliest far event.
    win_base: Cycle,
    /// Far-future overflow, in push (= FIFO) order.
    far: Vec<(Cycle, E)>,
    /// Scratch buffer for `migrate_far`, retained so migrations never
    /// reallocate.
    far_scratch: Vec<(Cycle, E)>,
    /// Earliest cycle in `far` (`u64::MAX` when empty).
    far_min: Cycle,
    popped: u64,
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `Cycle::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            slots: vec![(NIL, NIL); RING_SLOTS],
            nodes: Vec::new(),
            free: Vec::new(),
            occ: Box::new([0; OCC_WORDS]),
            sum: Box::new([0; SUM_WORDS]),
            ring_len: 0,
            win_base: Cycle::ZERO,
            far: Vec::new(),
            far_scratch: Vec::new(),
            far_min: Cycle(u64::MAX),
            popped: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past would silently corrupt causality.
    pub fn push(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        if at.0 - self.win_base.0 < RING_SLOTS as u64 {
            self.ring_insert(at, payload);
        } else {
            // Beyond the window: park on the overflow list. It is
            // migrated into the ring (in push order, preserving FIFO)
            // as soon as the window advances far enough.
            self.far_min = self.far_min.min(at);
            self.far.push((at, payload));
        }
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.ring_len == 0 {
            if self.far.is_empty() {
                return None;
            }
            // Ring drained with only far-future timers left: jump the
            // window to the earliest one and pull everything now due.
            self.win_base = self.far_min;
            self.migrate_far();
        }
        let start = self.win_base.0 as usize & RING_MASK;
        // Fast path: most pops drain the current bucket (same-cycle
        // FIFO chains and back-to-back cycles), so probe it directly
        // before paying for the two-level bitmap scan.
        let s = if self.slots[start].0 != NIL {
            start
        } else {
            self.next_occupied(start)
                // audit:allow(panic-path): ring_len > 0 here, and every
                // ring insert sets the occupancy bit for its bucket.
                .expect("ring_len > 0 implies an occupied bucket")
        };
        let dist = (s.wrapping_sub(start) & RING_MASK) as u64;
        let at = Cycle(self.win_base.0 + dist);
        let head = self.slots[s].0 as usize;
        let node = &mut self.nodes[head];
        // audit:allow(panic-path): the occupancy bit is cleared the
        // moment a bucket drains, so a scanned bucket's head node is
        // live (its payload is `Some` until this very take).
        let payload = node.payload.take().expect("occupied bucket is non-empty");
        let next = node.next;
        self.free.push(head as u32);
        self.slots[s].0 = next;
        if next == NIL {
            self.slots[s].1 = NIL;
            self.clear_bit(s);
        }
        self.ring_len -= 1;
        self.popped += 1;
        self.now = at;
        self.win_base = at;
        // The window just advanced; any far event that slid inside it
        // must enter the ring before the caller can push a same-cycle
        // successor behind it, or FIFO order would invert.
        if self.far_min.0 - at.0 < RING_SLOTS as u64 {
            self.migrate_far();
        }
        Some((at, payload))
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a simulation-size metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    fn ring_insert(&mut self, at: Cycle, payload: E) {
        let idx = match self.free.pop() {
            Some(i) => {
                let n = &mut self.nodes[i as usize];
                n.next = NIL;
                n.payload = Some(payload);
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node {
                    next: NIL,
                    payload: Some(payload),
                });
                i
            }
        };
        let s = at.0 as usize & RING_MASK;
        let (head, tail) = self.slots[s];
        if head == NIL {
            self.slots[s] = (idx, idx);
            self.set_bit(s);
        } else {
            self.nodes[tail as usize].next = idx;
            self.slots[s].1 = idx;
        }
        self.ring_len += 1;
    }

    /// Moves every far event inside the current window into the ring,
    /// preserving push order so same-cycle FIFO survives the migration.
    fn migrate_far(&mut self) {
        let limit = self.win_base.0.saturating_add(RING_SLOTS as u64);
        let mut min = Cycle(u64::MAX);
        let mut pending = std::mem::take(&mut self.far_scratch);
        std::mem::swap(&mut self.far, &mut pending);
        for (at, payload) in pending.drain(..) {
            if at.0 < limit {
                self.ring_insert(at, payload);
            } else {
                min = min.min(at);
                self.far.push((at, payload));
            }
        }
        self.far_scratch = pending;
        self.far_min = min;
    }

    fn set_bit(&mut self, s: usize) {
        let w = s >> 6;
        self.occ[w] |= 1 << (s & 63);
        self.sum[w >> 6] |= 1 << (w & 63);
    }

    fn clear_bit(&mut self, s: usize) {
        let w = s >> 6;
        self.occ[w] &= !(1 << (s & 63));
        if self.occ[w] == 0 {
            self.sum[w >> 6] &= !(1 << (w & 63));
        }
    }

    /// Nearest occupied bucket at or after `start` in circular order.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        self.scan(start, RING_SLOTS).or_else(|| self.scan(0, start))
    }

    /// Visits every pending event without disturbing the queue: ring
    /// events in nondecreasing time order (same-cycle events in FIFO
    /// order), then far-future events in push order. This is exactly
    /// the order [`EventQueue`] snapshots serialize, chosen so that
    /// re-`push`ing the visited sequence into a fresh queue positioned
    /// at [`EventQueue::now`] rebuilds an observably identical queue.
    pub fn for_each_pending(&self, mut f: impl FnMut(Cycle, &E)) {
        let start = self.win_base.0 as usize & RING_MASK;
        let mut seen = 0usize;
        let mut s = start;
        while seen < self.ring_len {
            let b = if self.slots[s].0 != NIL {
                s
            } else {
                self.next_occupied(s)
                    // audit:allow(panic-path): seen < ring_len, so an
                    // occupied bucket exists and its bit is set.
                    .expect("ring_len > seen implies an occupied bucket")
            };
            let dist = (b.wrapping_sub(start) & RING_MASK) as u64;
            let at = Cycle(self.win_base.0 + dist);
            let mut n = self.slots[b].0;
            while n != NIL {
                let node = &self.nodes[n as usize];
                // audit:allow(panic-path): chained nodes are live; the
                // payload is only taken when the node is unlinked.
                f(at, node.payload.as_ref().expect("occupied chain node"));
                seen += 1;
                n = node.next;
            }
            s = (b + 1) & RING_MASK;
        }
        for (at, e) in &self.far {
            f(*at, e);
        }
    }

    /// First occupied bucket in `[lo, hi)`, via the two-level bitmap.
    fn scan(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let mut w = lo >> 6;
        let mut word = self.occ[w] & (!0u64 << (lo & 63));
        loop {
            if word != 0 {
                let s = (w << 6) + word.trailing_zeros() as usize;
                return (s < hi).then_some(s);
            }
            // Hop to the next non-empty occupancy word via the summary.
            w += 1;
            let mut c = w >> 6;
            if c >= SUM_WORDS {
                return None;
            }
            let mut sw = self.sum[c] & (!0u64 << (w & 63));
            while sw == 0 {
                c += 1;
                if c >= SUM_WORDS {
                    return None;
                }
                sw = self.sum[c];
            }
            w = (c << 6) + sw.trailing_zeros() as usize;
            if (w << 6) >= hi {
                return None;
            }
            word = self.occ[w];
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

// Snapshots serialize the queue as (now, popped, ring events in
// time-then-FIFO order, far events in push order). Restoring re-pushes
// that sequence into a fresh queue positioned at `now`: ring buckets
// refill in the same FIFO chain order, the far list rebuilds verbatim
// (including `far_min`), and slab/free-list layout — the only thing
// that differs — is unobservable through the queue API. This is valid
// because snapshots are only taken at event boundaries, where
// `now == win_base` and every far event lies at or beyond
// `win_base + RING_SLOTS` (see `migrate_far`).
impl<E: crate::snap::SnapshotWrite> crate::snap::SnapshotWrite for EventQueue<E> {
    fn write_snap(&self, w: &mut crate::snap::SnapWriter) {
        assert!(
            self.now == self.win_base,
            "snapshot outside an event boundary"
        );
        w.put_u64(self.now.0);
        w.put_u64(self.popped);
        w.put_u64(self.ring_len as u64);
        let mut ring = 0usize;
        self.for_each_pending(|at, e| {
            if ring < self.ring_len {
                w.put_u64(at.0);
                e.write_snap(w);
            }
            ring += 1;
        });
        w.put_u64(self.far.len() as u64);
        let mut idx = 0usize;
        self.for_each_pending(|at, e| {
            if idx >= self.ring_len {
                w.put_u64(at.0);
                e.write_snap(w);
            }
            idx += 1;
        });
    }
}

impl<E: crate::snap::SnapshotRead> crate::snap::SnapshotRead for EventQueue<E> {
    fn read_snap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let now = Cycle(r.get_u64()?);
        let popped = r.get_u64()?;
        let mut q = EventQueue::new();
        q.now = now;
        q.win_base = now;
        q.popped = popped;
        let ring = r.get_len(9)?;
        let mut prev = now;
        for _ in 0..ring {
            let at = Cycle(r.get_u64()?);
            if at < prev || at.0 - now.0 >= RING_SLOTS as u64 {
                return Err(SnapError::Malformed(format!(
                    "ring event at {at} outside window of {now}"
                )));
            }
            prev = at;
            q.push(at, E::read_snap(r)?);
        }
        let far = r.get_len(9)?;
        for _ in 0..far {
            let at = Cycle(r.get_u64()?);
            if at.0.saturating_sub(now.0) < RING_SLOTS as u64 {
                return Err(SnapError::Malformed(format!(
                    "far event at {at} inside window of {now}"
                )));
            }
            q.push(at, E::read_snap(r)?);
        }
        Ok(q)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("now", &self.now)
            .field("processed", &self.popped)
            .finish()
    }
}

/// An entry in the reference queue: ordered by time, then by insertion
/// sequence so that same-cycle events pop in FIFO order regardless of
/// heap internals.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue, retained verbatim as the
/// differential-test oracle for [`EventQueue`]
/// (`tests/event_queue_diff.rs`): any push/pop sequence must produce
/// the identical pop order on both. Not used on the simulation hot
/// path.
pub struct ReferenceEventQueue<E> {
    // audit:allow(hot-path-struct): this *is* the retained reference
    // heap the differential test compares the calendar queue against.
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    now: Cycle,
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue positioned at `Cycle::ZERO`.
    pub fn new() -> Self {
        ReferenceEventQueue {
            // audit:allow(hot-path-struct): constructing the reference
            // oracle's heap; never on the simulation hot path.
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event.
    pub fn push(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.payload))
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        ReferenceEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle(8), ());
        q.pop();
        assert_eq!(q.now(), Cycle(8));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(5), ());
    }

    #[test]
    fn len_and_processed_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn events_processed_counts_every_pop() {
        // The checker's schedule-perturbation accounting relies on this
        // counter being a faithful pop count, never reset by drains.
        let mut q = EventQueue::new();
        assert_eq!(q.events_processed(), 0);
        for i in 0..5 {
            q.push(Cycle(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
        q.push(Cycle(9), 9);
        q.pop();
        assert_eq!(q.events_processed(), 6, "counter persists across drains");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Cycle(10), "b"); // same-cycle re-entry is legal
        q.push(Cycle(12), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn far_future_timers_survive_the_ring_window() {
        // Watchdog-style timers land beyond the 32768-cycle ring and
        // must migrate back in without losing order.
        let mut q = EventQueue::new();
        let far = RING_SLOTS as u64 * 3 + 17;
        q.push(Cycle(far), "watchdog");
        q.push(Cycle(far), "watchdog2"); // same-cycle far tie
        q.push(Cycle(90), "hop");
        assert_eq!(q.pop(), Some((Cycle(90), "hop")));
        assert_eq!(q.pop(), Some((Cycle(far), "watchdog")));
        assert_eq!(q.pop(), Some((Cycle(far), "watchdog2")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), Cycle(far));
    }

    #[test]
    fn migrated_far_event_keeps_fifo_against_later_ring_push() {
        // A far event migrates into the window as soon as the window
        // advances; a push to the same cycle issued *after* that
        // advance must pop behind it.
        let mut q = EventQueue::new();
        let t = RING_SLOTS as u64 + 100;
        q.push(Cycle(t), "early"); // far at push time
        q.push(Cycle(200), "step");
        assert_eq!(q.pop().unwrap().1, "step");
        q.push(Cycle(t), "late"); // now in-window: same slot, later seq
        assert_eq!(q.pop(), Some((Cycle(t), "early")));
        assert_eq!(q.pop(), Some((Cycle(t), "late")));
    }

    #[test]
    fn window_wraps_cleanly_across_ring_boundaries() {
        // March time across several full ring lengths with events that
        // straddle the wrap point of the bucket index.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for k in 0..5u64 {
            let base = k * (RING_SLOTS as u64 - 3);
            for d in [0u64, 1, 90, 360] {
                q.push(Cycle(base + d), (k, d));
                expect.push((Cycle(base + d), (k, d)));
            }
            // Drain this cluster before scheduling the next (keeps
            // every push legal: at >= now).
            expect.sort_by_key(|&(c, _)| c);
            for want in expect.drain(..) {
                assert_eq!(q.pop(), Some(want));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order_and_counters() {
        use crate::snap::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let mut q = EventQueue::new();
        let mut x = 0x9e37_79b9u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..3_000u64 {
            let now = q.now();
            let delta = match rng() % 6 {
                0 => 0,
                1 => 0, // stack same-cycle FIFO chains
                2 => 90,
                3 => 360,
                4 => rng() % 500,
                _ => RING_SLOTS as u64 + rng() % 10_000,
            };
            q.push(now + Cycle(delta), i);
            if rng() % 3 == 0 {
                q.pop();
            }
        }
        let mut w = SnapWriter::new();
        q.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q2 = EventQueue::<u64>::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(q2.now(), q.now());
        assert_eq!(q2.len(), q.len());
        assert_eq!(q2.events_processed(), q.events_processed());
        loop {
            let (a, b) = (q.pop(), q2.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q2.events_processed(), q.events_processed());
    }

    #[test]
    fn snapshot_refuses_events_outside_their_region() {
        use crate::snap::{SnapError, SnapReader, SnapWriter, SnapshotRead};
        // A "far" event inside the ring window is impossible at an
        // event boundary and must be refused, not silently re-routed.
        let mut w = SnapWriter::new();
        w.put_u64(100); // now
        w.put_u64(0); // popped
        w.put_u64(0); // ring count
        w.put_u64(1); // far count
        w.put_u64(150); // within the window: malformed
        w.put_u64(7);
        let bytes = w.into_bytes();
        assert!(matches!(
            EventQueue::<u64>::read_snap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn for_each_pending_visits_in_serialization_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "b");
        q.push(Cycle(5), "c");
        q.push(Cycle(1), "a");
        q.push(Cycle(RING_SLOTS as u64 + 9), "far2");
        q.push(Cycle(RING_SLOTS as u64 + 2), "far1");
        let mut seen = Vec::new();
        q.for_each_pending(|at, e| seen.push((at, *e)));
        assert_eq!(
            seen,
            vec![
                (Cycle(1), "a"),
                (Cycle(5), "b"),
                (Cycle(5), "c"),
                (Cycle(RING_SLOTS as u64 + 9), "far2"),
                (Cycle(RING_SLOTS as u64 + 2), "far1"),
            ]
        );
    }

    #[test]
    fn reference_queue_matches_on_a_mixed_sequence() {
        let mut a = EventQueue::new();
        let mut b = ReferenceEventQueue::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..2_000u64 {
            let now = a.now();
            let delta = match rng() % 5 {
                0 => 0,
                1 => 90,
                2 => 360,
                3 => rng() % 500,
                _ => RING_SLOTS as u64 + rng() % 10_000,
            };
            a.push(now + Cycle(delta), i);
            b.push(now + Cycle(delta), i);
            if rng() % 3 == 0 {
                assert_eq!(a.pop(), b.pop());
            }
        }
        loop {
            let (pa, pb) = (a.pop(), b.pop());
            assert_eq!(pa, pb);
            if pa.is_none() {
                break;
            }
        }
    }
}
