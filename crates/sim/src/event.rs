//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// that same-cycle events pop in FIFO order regardless of heap internals.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same cycle pop in the order they were pushed. This determinism is what
/// makes whole-system simulations reproducible from a seed.
///
/// # Example
///
/// ```
/// use hmg_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(7), 'x');
/// q.push(Cycle(7), 'y');
/// q.push(Cycle(3), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['z', 'x', 'y']);
/// assert_eq!(q.events_processed(), 3);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `Cycle::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past would silently corrupt causality.
    pub fn push(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.payload))
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a simulation-size metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle(8), ());
        q.pop();
        assert_eq!(q.now(), Cycle(8));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(5), ());
    }

    #[test]
    fn len_and_processed_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn events_processed_counts_every_pop() {
        // The checker's schedule-perturbation accounting relies on this
        // counter being a faithful pop count, never reset by drains.
        let mut q = EventQueue::new();
        assert_eq!(q.events_processed(), 0);
        for i in 0..5 {
            q.push(Cycle(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
        q.push(Cycle(9), 9);
        q.pop();
        assert_eq!(q.events_processed(), 6, "counter persists across drains");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Cycle(10), "b"); // same-cycle re-entry is legal
        q.push(Cycle(12), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
