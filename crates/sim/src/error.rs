//! Typed simulation errors.
//!
//! Every fatal condition the stack can hit — deadlock, livelock, bad
//! configuration, a protocol invariant violation, trace corruption —
//! is reported as a [`SimError`] carrying the *where* alongside the
//! *what*: the simulated cycle, the agent (SM / GPM / link) involved,
//! and the memory address in play, whenever those are known. Callers
//! that want the old fail-fast behavior can still `unwrap`; sweep
//! drivers can instead capture the error and keep going.

use std::fmt;

/// Broad classification of a fatal simulation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimErrorKind {
    /// The event queue drained while work was still outstanding: an
    /// un-signalled `WaitFlag`, a fence whose counters never reached
    /// zero, or an in-flight memory operation that lost its response.
    Deadlock,
    /// Events kept flowing but no memory access retired within the
    /// configured progress budget.
    Livelock,
    /// A configuration was internally inconsistent (bad cache geometry,
    /// zero bandwidth, an out-of-range fault probability, ...).
    Config,
    /// A coherence-protocol invariant was violated at run time (e.g. a
    /// message arrived at a node that can neither serve nor forward it).
    Protocol,
    /// A trace file or trace structure could not be decoded.
    Trace,
}

impl SimErrorKind {
    /// Stable lowercase name, used as the `Display` prefix.
    pub fn name(self) -> &'static str {
        match self {
            SimErrorKind::Deadlock => "deadlocked",
            SimErrorKind::Livelock => "livelocked",
            SimErrorKind::Config => "config error",
            SimErrorKind::Protocol => "protocol violation",
            SimErrorKind::Trace => "trace error",
        }
    }
}

/// A fatal simulation error with structured context.
///
/// `Display` renders kind, location context, the message, and (when
/// present) a multi-line diagnostic dump — so `unwrap()`-style callers
/// still see everything in the panic message.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    /// What class of failure this is.
    pub kind: SimErrorKind,
    /// One-line human-readable description.
    pub message: String,
    /// Simulated cycle at which the failure was detected.
    pub cycle: Option<u64>,
    /// The agent involved, e.g. `"gpu1/gpm3/sm0"` or `"workload bfs"`.
    pub agent: Option<String>,
    /// The memory address (line or block) implicated, if identifiable.
    pub addr: Option<u64>,
    /// Optional multi-line diagnostic dump (machine state at failure).
    pub dump: Option<String>,
}

impl SimError {
    /// A new error of `kind` with a one-line `message` and no context.
    pub fn new(kind: SimErrorKind, message: impl Into<String>) -> Self {
        SimError {
            kind,
            message: message.into(),
            cycle: None,
            agent: None,
            addr: None,
            dump: None,
        }
    }

    /// Shorthand for a [`SimErrorKind::Config`] error.
    pub fn config(message: impl Into<String>) -> Self {
        Self::new(SimErrorKind::Config, message)
    }

    /// Shorthand for a [`SimErrorKind::Protocol`] error.
    pub fn protocol(message: impl Into<String>) -> Self {
        Self::new(SimErrorKind::Protocol, message)
    }

    /// Shorthand for a [`SimErrorKind::Trace`] error.
    pub fn trace(message: impl Into<String>) -> Self {
        Self::new(SimErrorKind::Trace, message)
    }

    /// Attach the simulated cycle at which the failure was detected.
    pub fn at_cycle(mut self, cycle: u64) -> Self {
        self.cycle = Some(cycle);
        self
    }

    /// Attach the agent (SM, GPM, workload, file, ...) involved.
    pub fn with_agent(mut self, agent: impl Into<String>) -> Self {
        self.agent = Some(agent.into());
        self
    }

    /// Attach the memory address implicated in the failure.
    pub fn with_addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Attach a multi-line diagnostic dump of machine state.
    pub fn with_dump(mut self, dump: impl Into<String>) -> Self {
        self.dump = Some(dump.into());
        self
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation {}", self.kind.name())?;
        if let Some(c) = self.cycle {
            write!(f, " at cycle {c}")?;
        }
        if let Some(a) = &self.agent {
            write!(f, " [{a}]")?;
        }
        if let Some(addr) = self.addr {
            write!(f, " [addr {addr:#x}]")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(dump) = &self.dump {
            write!(f, "\n{dump}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_context_and_message() {
        let e = SimError::new(SimErrorKind::Deadlock, "flag 7 never reached count 1")
            .at_cycle(1234)
            .with_agent("gpu1/gpm2/sm0")
            .with_addr(0x80);
        let s = e.to_string();
        assert!(s.contains("deadlocked"), "{s}");
        assert!(s.contains("cycle 1234"), "{s}");
        assert!(s.contains("gpu1/gpm2/sm0"), "{s}");
        assert!(s.contains("0x80"), "{s}");
        assert!(s.contains("flag 7"), "{s}");
    }

    #[test]
    fn dump_is_appended_on_new_lines() {
        let e = SimError::new(SimErrorKind::Livelock, "no progress")
            .with_dump("  sm0: stalled\n  sm1: stalled");
        let s = e.to_string();
        assert!(s.contains("livelocked"), "{s}");
        assert!(s.lines().count() >= 3, "{s}");
    }

    #[test]
    fn kinds_have_distinct_names() {
        use SimErrorKind::*;
        let names: std::collections::HashSet<_> = [Deadlock, Livelock, Config, Protocol, Trace]
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(names.len(), 5);
    }
}
